#!/usr/bin/env python3
"""Quickstart: run one benchmark under the baseline and under RSEP.

Usage::

    python examples/quickstart.py [benchmark]

Shows the core public API: get the shared sweep engine, pick a
MechanismConfig, run cells, and read IPC/coverage/accuracy off the stats
object.  The engine is the same code path the figure benches use — its
simulator serves traces from the persistent on-disk trace store, so the
second invocation of this script skips interpretation entirely, and
identical cells are simulated only once per process.
"""

import sys

from repro import MechanismConfig
from repro.harness.sweep import shared_engine


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "dealII"
    engine = shared_engine()

    base = engine.run_cell(benchmark, MechanismConfig.baseline())
    rsep = engine.run_cell(benchmark, MechanismConfig.rsep_ideal())

    print(f"benchmark          : {benchmark}")
    print(f"baseline IPC       : {base.ipc:.3f}")
    print(f"RSEP IPC           : {rsep.ipc:.3f}")
    print(f"speedup            : {rsep.ipc / base.ipc - 1.0:+.1%}")
    stats = rsep.stats
    print(f"distance-predicted : {stats.dist_pred} commits "
          f"({stats.coverage_fraction(stats.dist_pred):.1%} of committed)")
    print(f"RSEP accuracy      : {stats.rsep_accuracy:.4f}")
    print(f"squashes (RSEP)    : {stats.squashes_rsep}")
    store = engine.simulator.trace_store
    if store is not None:
        print(f"trace store        : {store.root} "
              f"(hits {store.hits}, misses {store.misses})")


if __name__ == "__main__":
    main()
