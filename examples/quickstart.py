#!/usr/bin/env python3
"""Quickstart: one benchmark under the baseline and under RSEP.

Usage::

    python examples/quickstart.py [benchmark]

Shows the front-door API (DESIGN.md §10): describe the experiment as a
typed :class:`ExperimentSpec` (the environment overlays defaults exactly
once, at construction), run it through a :class:`Session`, and read
IPC/coverage/accuracy off the versioned :class:`RunResult` artifact.
The session shares the process-wide sweep engine — the same code path
the figure benches and the ``repro`` CLI use — so its simulator serves
traces from the persistent on-disk trace store, the second invocation of
this script skips interpretation entirely, and identical cells are
simulated only once per process.

The equivalent CLI invocation::

    repro sweep --benchmark dealII --mechanism baseline --mechanism rsep
"""

import sys

from repro.api import ExperimentSpec, Session
from repro.pipeline.config import MechanismConfig


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "dealII"
    spec = ExperimentSpec.from_env(
        benchmarks=[benchmark],
        mechanisms=[
            MechanismConfig.baseline(), MechanismConfig.rsep_ideal()
        ],
    )
    session = Session()
    result = session.run(spec)

    base = result.outcome(benchmark, "baseline")
    rsep = result.outcome(benchmark, "rsep")
    print(f"benchmark          : {benchmark}")
    print(f"spec fingerprint   : {result.fingerprint}")
    print(f"window             : warmup {spec.window.warmup}, "
          f"measure {spec.window.measure}")
    print(f"baseline IPC       : {base.ipc:.3f}")
    print(f"RSEP IPC           : {rsep.ipc:.3f}")
    print(f"speedup            : {result.speedup(benchmark, 'rsep'):+.1%}")
    stats = rsep.merged_stats[0]
    print(f"distance-predicted : {stats.dist_pred} commits "
          f"({stats.coverage_fraction(stats.dist_pred):.1%} of committed)")
    print(f"RSEP accuracy      : {stats.rsep_accuracy:.4f}")
    print(f"squashes (RSEP)    : {stats.squashes_rsep}")
    store = session.simulator.trace_store
    if store is not None:
        print(f"trace store        : {store.root} "
              f"(hits {store.hits}, misses {store.misses})")
    # The artifact round-trips through JSON with its fingerprint intact:
    # `repro report <file>` renders it, `repro inspect <file>` shows its
    # provenance.  (See `repro sweep --json`.)


if __name__ == "__main__":
    main()
