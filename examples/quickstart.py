#!/usr/bin/env python3
"""Quickstart: run one benchmark under the baseline and under RSEP.

Usage::

    python examples/quickstart.py [benchmark]

Shows the core public API: build a Simulator, pick a MechanismConfig, run,
and read IPC/coverage/accuracy off the stats object.
"""

import sys

from repro import MechanismConfig, Simulator


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "dealII"
    simulator = Simulator()

    base = simulator.run_benchmark(benchmark, MechanismConfig.baseline())
    rsep = simulator.run_benchmark(benchmark, MechanismConfig.rsep_ideal())

    print(f"benchmark          : {benchmark}")
    print(f"baseline IPC       : {base.ipc:.3f}")
    print(f"RSEP IPC           : {rsep.ipc:.3f}")
    print(f"speedup            : {rsep.ipc / base.ipc - 1.0:+.1%}")
    stats = rsep.stats
    print(f"distance-predicted : {stats.dist_pred} commits "
          f"({stats.coverage_fraction(stats.dist_pred):.1%} of committed)")
    print(f"RSEP accuracy      : {stats.rsep_accuracy:.4f}")
    print(f"squashes (RSEP)    : {stats.squashes_rsep}")


if __name__ == "__main__":
    main()
