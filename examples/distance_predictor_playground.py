#!/usr/bin/env python3
"""Drive the distance predictor and the FIFO history directly.

Demonstrates the commit-side machinery of §IV.B without the pipeline:
hashes pushed per committed producer, IDist computed against the history
(preferring the predicted distance), and TAGE-style confidence building —
including what hash false positives do and why validation catches them.
"""

from repro.common.bitops import fold_hash
from repro.common.history import GlobalHistory, PathHistory
from repro.common.rng import XorShift64
from repro.core.fifo_history import FifoHistory
from repro.predictors.distance import (
    DistancePredictor,
    DistancePredictorConfig,
)


def main() -> None:
    rng = XorShift64(7)
    predictor = DistancePredictor(
        DistancePredictorConfig.realistic(),
        GlobalHistory(), PathHistory(), rng,
    )
    history = FifoHistory(entries=128, hash_bits=14)

    print("Scenario: a value recomputed every 5 producers (stable IDist),")
    print("surrounded by 4 noise producers per group.\n")

    recurring_pc = 0x4000
    recurring_value = 0xDEAD_BEEF_F00D
    predictions_used = 0
    for step in range(400):
        # Four noise producers...
        for _ in range(4):
            history.push(fold_hash(rng.next_u64(), 14))
        # ...then the recurring instruction commits.
        prediction = predictor.predict(recurring_pc)
        value_hash = fold_hash(recurring_value, 14)
        observed = history.find(
            value_hash, max_distance=255,
            preferred_distance=prediction.distance or None,
        )
        predictor.train_from_pairing(prediction, observed)
        history.push(value_hash)
        if prediction.use_pred:
            predictions_used += 1
        if step in (10, 50, 150, 399):
            print(f"  step {step:3d}: distance={prediction.distance:3d} "
                  f"confidence={prediction.confidence_level} "
                  f"use_pred={prediction.use_pred}")

    final = predictor.predict(recurring_pc)
    print(f"\nfinal prediction : IDist {final.distance} "
          f"(expected 5), confident={final.use_pred}")
    print(f"confident lookups during training: {predictions_used}")
    print(f"history matches  : {history.matches} "
          f"(preferred-distance hits: {history.preferred_matches})")
    print(f"storage          : "
          f"{predictor.storage_report().total_kib:.1f} KB predictor + "
          f"{history.storage_report().total_bytes:.0f} B history")


if __name__ == "__main__":
    main()
