#!/usr/bin/env python3
"""Explore the validation design space of §IV.F (Fig. 6) on one benchmark.

Compares ideal validation, re-issue locked to the producing FU class, and
re-issue to any FU (non-load ports first), plus the sampling thresholds —
and reports how often validation µ-ops stole a load port in each mode.
"""

from repro.core.validation import ValidationMode
from repro.pipeline.config import MechanismConfig
from repro.pipeline.core import Pipeline
from repro.pipeline.simulator import Simulator
from repro.workloads.spec2006 import generate_trace

BENCHMARK = "mcf"


def main() -> None:
    warmup, measure = 8000, 20000
    trace = generate_trace(BENCHMARK, warmup + measure + 4096, seed=1)

    base = Pipeline(trace, mechanisms=MechanismConfig.baseline(), seed=1)
    base_stats = base.run(measure, warmup=warmup)
    print(f"{BENCHMARK} baseline IPC: {base_stats.ipc:.3f}\n")

    variants = [
        ("ideal", MechanismConfig.rsep_validation(ValidationMode.IDEAL)),
        ("lock-FU", MechanismConfig.rsep_validation(
            ValidationMode.REISSUE_LOCK_FU)),
        ("any-FU", MechanismConfig.rsep_validation(
            ValidationMode.REISSUE_ANY_FU)),
        ("any-FU + sampling(15)", MechanismConfig.rsep_validation(
            ValidationMode.REISSUE_ANY_FU, sampling=True,
            start_train_threshold=15)),
        ("any-FU + sampling(63)", MechanismConfig.rsep_validation(
            ValidationMode.REISSUE_ANY_FU, sampling=True,
            start_train_threshold=63)),
    ]
    for label, mechanisms in variants:
        pipeline = Pipeline(trace, mechanisms=mechanisms, seed=1)
        stats = pipeline.run(measure, warmup=warmup)
        speedup = stats.ipc / base_stats.ipc - 1.0
        on_load = pipeline.ports.validation_on_load_port
        issued = pipeline.ports.validation_issued
        print(f"{label:<22} IPC {stats.ipc:.3f} ({speedup:+.1%})  "
              f"validations issued {issued:5d}, on load ports {on_load}")

    print("\nLocking validation to the load ports fights the actual loads")
    print("for the two Ld/Str ports (§IV.F.b); routing compares through")
    print("any port via the global bypass network keeps load throughput.")


if __name__ == "__main__":
    main()
