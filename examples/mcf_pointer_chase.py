#!/usr/bin/env python3
"""The mcf story: equality prediction breaks serial pointer chases.

Builds a custom workload — a hot ring chase (serial loads whose values
recur at a stable distance) next to irregular noise — and shows why RSEP
captures it while a value predictor cannot: the load values are periodic,
not strided, so D-VTAGE never grows confident, while the IDist to the
previous lap is rock stable (§IV.H.2 and the mcf column of Figs. 4/5).
"""

from repro.common.rng import XorShift64
from repro.pipeline.config import MechanismConfig
from repro.pipeline.core import Pipeline
from repro.workloads import kernels as K
from repro.workloads.builder import ProgramBuilder
from repro.workloads.trace import Machine, execute


def build_workload():
    builder = ProgramBuilder("ring-chase-demo")
    rng = XorShift64(2024)
    kernels = [
        K.ring_chase(builder, rng, ring_nodes=8, reps=12, payload=False),
        K.lcg_noise(builder, rng, reps=3),
    ]
    entry = builder.fresh_label("main")
    builder.b(entry)
    builder.label(entry)
    for kernel in kernels:
        kernel.setup()
    loop = builder.label(builder.fresh_label("outer"))
    for kernel in kernels:
        kernel.body()
    builder.b(loop)
    builder.halt()
    return execute(builder.build(), 40000, Machine(dict(builder.data.image)))


def main() -> None:
    trace = build_workload()
    results = {}
    for label, mechanisms in (
        ("baseline", MechanismConfig.baseline()),
        ("rsep", MechanismConfig.rsep_ideal()),
        ("vpred", MechanismConfig.value_prediction()),
    ):
        pipeline = Pipeline(trace, mechanisms=mechanisms, seed=1)
        results[label] = pipeline.run(20000, warmup=10000)

    base_ipc = results["baseline"].ipc
    print(f"baseline IPC : {base_ipc:.3f} "
          f"(serial 4-cycle chase steps bound the loop)")
    for label in ("rsep", "vpred"):
        stats = results[label]
        print(f"{label:<9} IPC : {stats.ipc:.3f} "
              f"({stats.ipc / base_ipc - 1.0:+.1%}; "
              f"dist={stats.dist_pred}, vp={stats.value_pred})")
    print("\nRSEP collapses the chase: dependents of each chase load get")
    print("the physical register of the same node's previous lap, so the")
    print("next address no longer waits on the 4-cycle L1 hit.  D-VTAGE")
    print("sees a period-8 (non-strided) value sequence and stays quiet.")


if __name__ == "__main__":
    main()
