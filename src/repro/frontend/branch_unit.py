"""Front-end branch handling: TAGE + BTB + RAS behind one interface.

The timing model replays the committed path, so the question the front-end
answers for each branch is "*would* this fetch have been redirected
correctly?".  The unit performs real predictor lookups (which also train the
real tables) and classifies the outcome:

* correct — no penalty;
* ``decode_redirect`` — direction correct but target unknown at fetch
  (direct-branch BTB miss): short front-end bubble, target computed at
  decode;
* ``mispredicted`` — wrong direction or wrong indirect/return target:
  execute-time redirect, full minimum penalty (17 cycles, Table I).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.history import GlobalHistory, PathHistory
from repro.common.rng import XorShift64
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.ras import ReturnAddressStack
from repro.frontend.tage import BranchPrediction, TageBranchPredictor, TageConfig
from repro.isa.instruction import DynInst
from repro.isa.program import INSTR_BYTES


@dataclass(slots=True)
class FetchOutcome:
    """What fetching one branch did, kept with the in-flight instruction."""

    mispredicted: bool
    decode_redirect: bool
    tage: BranchPrediction | None
    ras_checkpoint: int
    #: Lazy checkpoint: the raw global-history bits alone.  Folded views
    #: are recomputed on restore (squash), which is far rarer than fetch.
    history_snapshot: int
    path_snapshot: int
    pc: int
    taken: bool
    target_pc: int


class BranchUnit:
    """Table I front-end: TAGE direction, 2-way 4K BTB, 32-entry RAS."""

    def __init__(
        self,
        history: GlobalHistory,
        path: PathHistory,
        rng: XorShift64,
        tage_config: TageConfig | None = None,
        btb_entries: int = 4096,
        ras_entries: int = 32,
    ) -> None:
        self.history = history
        self.path = path
        self.tage = TageBranchPredictor(
            tage_config or TageConfig(), history, path, rng
        )
        self.btb = BranchTargetBuffer(btb_entries)
        self.ras = ReturnAddressStack(ras_entries)
        self.conditional_branches = 0
        self.direction_mispredicts = 0
        self.target_mispredicts = 0
        self.decode_redirects = 0

    # ------------------------------------------------------------------

    def fetch_branch(self, op: DynInst) -> FetchOutcome:
        """Predict *op* at fetch time; speculatively updates history/RAS."""
        history_snapshot = self.history.snapshot_raw()
        path_snapshot = self.path.snapshot()
        ras_checkpoint = self.ras.checkpoint()

        mispredicted = False
        decode_redirect = False
        tage_prediction: BranchPrediction | None = None

        if op.is_conditional:
            self.conditional_branches += 1
            tage_prediction = self.tage.predict(op.pc)
            predicted_taken = tage_prediction.taken
            if predicted_taken != op.taken:
                mispredicted = True
                self.direction_mispredicts += 1
            elif op.taken and self.btb.lookup(op.pc) is None:
                decode_redirect = True
                self.decode_redirects += 1
            self.history.push(1 if op.taken else 0)
        elif op.is_return:
            predicted_target = self.ras.pop()
            if predicted_target != op.target_pc:
                mispredicted = True
                self.target_mispredicts += 1
        else:
            # Unconditional direct branch or call: direction is implicit,
            # only the target may be unknown until decode.
            if self.btb.lookup(op.pc) is None:
                decode_redirect = True
                self.decode_redirects += 1
            if op.is_call:
                self.ras.push(op.pc + INSTR_BYTES)

        if op.taken:
            self.path.push(op.pc)

        return FetchOutcome(
            mispredicted=mispredicted,
            decode_redirect=decode_redirect,
            tage=tage_prediction,
            ras_checkpoint=ras_checkpoint,
            history_snapshot=history_snapshot,
            path_snapshot=path_snapshot,
            pc=op.pc,
            taken=op.taken,
            target_pc=op.target_pc,
        )

    # ------------------------------------------------------------------

    def commit_branch(self, outcome: FetchOutcome) -> None:
        """Commit-time training for one branch."""
        if outcome.tage is not None:
            self.tage.update(outcome.tage, outcome.taken)
        if outcome.taken and outcome.target_pc >= 0:
            self.btb.update(outcome.pc, outcome.target_pc)

    def squash_to(self, outcome: FetchOutcome) -> None:
        """Restore front-end speculation state to just before *outcome*."""
        self.history.restore_raw(outcome.history_snapshot)
        self.path.restore(outcome.path_snapshot)
        self.ras.restore(outcome.ras_checkpoint)

    @property
    def mpki_numerator(self) -> int:
        return self.direction_mispredicts + self.target_mispredicts
