"""Return Address Stack: 32 entries (Table I), circular, checkpointable."""

from __future__ import annotations


class ReturnAddressStack:
    """Circular return-address stack.

    On a squash the top-of-stack pointer is restored from the checkpoint
    taken at prediction time (the usual low-cost recovery scheme; entry
    contents can still be clobbered by wrong-path pushes, which is a real
    and accepted source of RAS mispredictions).
    """

    def __init__(self, entries: int = 32) -> None:
        if entries <= 0:
            raise ValueError("RAS needs at least one entry")
        self._entries = entries
        self._stack = [0] * entries
        self._top = 0  # index of the next free slot

    def push(self, return_pc: int) -> None:
        self._stack[self._top % self._entries] = return_pc
        self._top += 1

    def pop(self) -> int:
        """Predict a return target (and pop)."""
        if self._top > 0:
            self._top -= 1
        return self._stack[self._top % self._entries]

    def peek(self) -> int:
        return self._stack[(self._top - 1) % self._entries]

    def checkpoint(self) -> int:
        """Capture the pointer for squash recovery."""
        return self._top

    def restore(self, checkpoint: int) -> None:
        self._top = checkpoint
