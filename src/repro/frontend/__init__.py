"""Front-end models: TAGE branch prediction, BTB, RAS."""

from repro.frontend.branch_unit import BranchUnit, FetchOutcome
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.ras import ReturnAddressStack
from repro.frontend.tage import BranchPrediction, TageBranchPredictor, TageConfig

__all__ = [
    "BranchPrediction",
    "BranchTargetBuffer",
    "BranchUnit",
    "FetchOutcome",
    "ReturnAddressStack",
    "TageBranchPredictor",
    "TageConfig",
]
