"""Branch Target Buffer: 2-way set-associative, 4K entries (Table I)."""

from __future__ import annotations

from repro.common.bitops import log2_exact


class BranchTargetBuffer:
    """Set-associative BTB with LRU replacement.

    Stores the most recent target per branch PC.  For direct branches a hit
    means the front-end can redirect without a bubble; for returns the RAS
    takes precedence; for other indirects the stored target is the
    prediction.
    """

    def __init__(self, entries: int = 4096, ways: int = 2) -> None:
        if entries % ways:
            raise ValueError("entries must be a multiple of ways")
        self._ways = ways
        self._sets = entries // ways
        log2_exact(self._sets)  # must be a power of two
        self._set_mask = self._sets - 1
        # Per set: list of (tag, target) ordered most-recent-first.
        self._storage: list[list[tuple[int, int]]] = [
            [] for _ in range(self._sets)
        ]
        self.hits = 0
        self.misses = 0

    def _locate(self, pc: int) -> tuple[int, int]:
        word = pc >> 2
        return word & self._set_mask, word >> (self._set_mask.bit_length())

    def lookup(self, pc: int) -> int | None:
        """Return the predicted target for *pc*, or None on a miss."""
        set_index, tag = self._locate(pc)
        ways = self._storage[set_index]
        for position, (entry_tag, target) in enumerate(ways):
            if entry_tag == tag:
                if position:
                    ways.insert(0, ways.pop(position))
                self.hits += 1
                return target
        self.misses += 1
        return None

    def update(self, pc: int, target: int) -> None:
        """Install or refresh the target for *pc*."""
        set_index, tag = self._locate(pc)
        ways = self._storage[set_index]
        for position, (entry_tag, _) in enumerate(ways):
            if entry_tag == tag:
                ways.pop(position)
                break
        ways.insert(0, (tag, target))
        if len(ways) > self._ways:
            ways.pop()
