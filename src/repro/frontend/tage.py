"""TAGE conditional branch predictor (Table I: 1 + 12 components, ~15K entries).

A faithful software TAGE in the spirit of Seznec & Michaud [31]: a bimodal
base table plus 12 partially tagged components with geometrically growing
history lengths, usefulness counters, provider/altpred update and randomised
allocation on mispredictions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.history import GlobalHistory, PathHistory
from repro.common.rng import XorShift64
from repro.common.storage import StorageReport
from repro.predictors.tagged_table import (
    ComponentGeometry,
    GeometricIndexer,
    Lookup,
    UsefulnessMonitor,
    geometric_history_lengths,
)


@dataclass(frozen=True)
class TageConfig:
    """Branch-TAGE geometry; defaults follow Table I."""

    base_log2_entries: int = 12          # 4K-entry bimodal base
    tagged_components: int = 12
    tagged_log2_entries: int = 10        # 1K entries each -> ~16K total
    min_history: int = 4
    max_history: int = 640
    min_tag_bits: int = 8
    max_tag_bits: int = 14
    counter_bits: int = 3
    useful_bits: int = 2

    def geometries(self) -> list[ComponentGeometry]:
        lengths = geometric_history_lengths(
            self.min_history, self.max_history, self.tagged_components
        )
        tags = [
            self.min_tag_bits
            + round(
                (self.max_tag_bits - self.min_tag_bits)
                * index
                / max(1, self.tagged_components - 1)
            )
            for index in range(self.tagged_components)
        ]
        return [
            ComponentGeometry(self.tagged_log2_entries, tag, length)
            for tag, length in zip(tags, lengths)
        ]


@dataclass(slots=True)
class BranchPrediction:
    """Everything commit needs to train the entries that predicted."""

    taken: bool
    lookup: Lookup
    provider: int          # component index, -1 = base
    provider_pred: bool
    alt_pred: bool
    base_index: int


class TageBranchPredictor:
    """The Table I conditional-branch predictor."""

    def __init__(
        self,
        config: TageConfig,
        history: GlobalHistory,
        path: PathHistory,
        rng: XorShift64,
    ) -> None:
        self.config = config
        self._geometries = config.geometries()
        self._indexer = GeometricIndexer(self._geometries, history, path)
        self._rng = rng
        base_entries = 1 << config.base_log2_entries
        self._base = [2] * base_entries  # weakly taken
        self._base_mask = base_entries - 1
        # Parallel arrays per tagged component: tag, counter, useful.
        self._tags = [[0] * g.entries for g in self._geometries]
        self._ctrs = [[4] * g.entries for g in self._geometries]
        self._useful = [[0] * g.entries for g in self._geometries]
        self._ctr_max = (1 << config.counter_bits) - 1
        self._ctr_taken = 1 << (config.counter_bits - 1)
        self._useful_max = (1 << config.useful_bits) - 1
        self._monitor = UsefulnessMonitor()

    # ------------------------------------------------------------------

    def predict(self, pc: int) -> BranchPrediction:
        """Predict the direction of the conditional branch at *pc*."""
        lookup = self._indexer.lookup(pc)
        base_index = (pc >> 2) & self._base_mask
        base_pred = self._base[base_index] >= 2

        provider = -1
        alt = -1
        for component in range(len(self._geometries) - 1, -1, -1):
            if self._tags[component][lookup.indices[component]] == lookup.tags[
                component
            ]:
                if provider < 0:
                    provider = component
                else:
                    alt = component
                    break

        if provider >= 0:
            provider_pred = (
                self._ctrs[provider][lookup.indices[provider]]
                >= self._ctr_taken
            )
        else:
            provider_pred = base_pred
        if alt >= 0:
            alt_pred = self._ctrs[alt][lookup.indices[alt]] >= self._ctr_taken
        else:
            alt_pred = base_pred

        return BranchPrediction(
            taken=provider_pred,
            lookup=lookup,
            provider=provider,
            provider_pred=provider_pred,
            alt_pred=alt_pred,
            base_index=base_index,
        )

    # ------------------------------------------------------------------

    def update(self, prediction: BranchPrediction, taken: bool) -> None:
        """Commit-time training with the actual outcome."""
        mispredicted = prediction.taken != taken
        provider = prediction.provider
        lookup = prediction.lookup

        if provider >= 0:
            index = lookup.indices[provider]
            self._bump_counter(self._ctrs[provider], index, taken)
            if prediction.provider_pred != prediction.alt_pred:
                useful = self._useful[provider]
                if prediction.provider_pred == taken:
                    if useful[index] < self._useful_max:
                        useful[index] += 1
                elif useful[index] > 0:
                    useful[index] -= 1
            # The bimodal base trains when it was the alternative.
            if provider == 0 or prediction.alt_pred == (
                self._base[prediction.base_index] >= 2
            ):
                self._bump_base(prediction.base_index, taken)
        else:
            self._bump_base(prediction.base_index, taken)

        if mispredicted and provider < len(self._geometries) - 1:
            self._allocate(lookup, provider, taken)

    def _bump_counter(self, counters: list[int], index: int, taken: bool) -> None:
        value = counters[index]
        if taken:
            if value < self._ctr_max:
                counters[index] = value + 1
        elif value > 0:
            counters[index] = value - 1

    def _bump_base(self, index: int, taken: bool) -> None:
        value = self._base[index]
        if taken:
            if value < 3:
                self._base[index] = value + 1
        elif value > 0:
            self._base[index] = value - 1

    def _allocate(self, lookup: Lookup, provider: int, taken: bool) -> None:
        """Allocate a new entry in a longer-history component ([31])."""
        candidates = [
            component
            for component in range(provider + 1, len(self._geometries))
            if self._useful[component][lookup.indices[component]] == 0
        ]
        if not candidates:
            # Allocation failure: age the blocking entries.
            for component in range(provider + 1, len(self._geometries)):
                index = lookup.indices[component]
                if self._useful[component][index] > 0:
                    self._useful[component][index] -= 1
            if self._monitor.on_allocation_failure():
                self._age_all_useful()
            return
        # Prefer the shorter-history candidate with probability 2/3.
        if len(candidates) > 1 and not self._rng.chance(2 / 3):
            chosen = self._rng.choice(candidates[1:])
        else:
            chosen = candidates[0]
        index = lookup.indices[chosen]
        self._tags[chosen][index] = lookup.tags[chosen]
        self._ctrs[chosen][index] = (
            self._ctr_taken if taken else self._ctr_taken - 1
        )
        self._useful[chosen][index] = 0

    def _age_all_useful(self) -> None:
        for useful in self._useful:
            for index, value in enumerate(useful):
                if value > 0:
                    useful[index] = value - 1

    # ------------------------------------------------------------------

    def storage_report(self) -> StorageReport:
        report = StorageReport("TAGE branch predictor")
        report.add_entries(
            "base bimodal", 1 << self.config.base_log2_entries, 2
        )
        for number, geometry in enumerate(self._geometries, start=1):
            bits = (
                geometry.tag_bits
                + self.config.counter_bits
                + self.config.useful_bits
            )
            report.add_entries(
                f"tagged component {number} (hist {geometry.history_bits})",
                geometry.entries,
                bits,
            )
        return report
