"""Simulator-throughput measurement: simulated KIPS per mechanism config.

The unit is **simulated kilo-instructions per second** (KIPS): how many
thousand committed-path instructions the timing model replays per second
of wall clock.  Throughput is what caps measurement windows (see
DESIGN.md §4) — the figure benches all funnel through ``Pipeline.run``,
so KIPS directly bounds how many checkpoints and how large a window every
experiment can afford.

Protocol:

* the functional trace is built (and timed) once per benchmark, outside
  the timed region — KIPS measures the *timing model* only;
* each (benchmark, mechanism) cell runs ``repeats`` times on a fresh
  :class:`Pipeline` and keeps the fastest run (the standard robust
  estimator under scheduler noise);
* the aggregate per mechanism is total simulated instructions over total
  (best) wall time across benchmarks, which weights slow benchmarks
  honestly.

Run as a CLI::

    python -m repro.harness.perf --benchmark mcf --mechanism rsep-realistic
    python -m repro.harness.perf --json perf.json --repeats 3
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import asdict, dataclass, field

from repro.api import env as api_env
from repro.api.spec import default_mechanisms
from repro.pipeline.config import (
    MECHANISM_PRESETS,
    CoreConfig,
    MechanismConfig,
)
from repro.pipeline.core import Pipeline
from repro.pipeline.simulator import (
    _TRACE_SLACK,  # match Simulator.run_benchmark's trace sizing exactly
)
from repro.sampling import SampledRun, SamplingConfig

#: Benchmarks the throughput bench exercises by default: a spread of
#: memory-bound (mcf, astar, omnetpp), branchy-integer (bzip2,
#: xalancbmk, hmmer) and wide-FP (gamess, lbm) behaviour.
DEFAULT_BENCHMARKS: tuple[str, ...] = (
    "mcf", "astar", "omnetpp", "bzip2",
    "xalancbmk", "gamess", "lbm", "hmmer",
)


def mechanism_by_name(name: str) -> MechanismConfig:
    """Resolve a CLI mechanism name to its preset config."""
    return MechanismConfig.preset(name)


@dataclass
class PerfSample:
    """Throughput of one (benchmark, mechanism) cell."""

    benchmark: str
    mechanism: str
    seed: int
    warmup: int
    measure: int
    wall_seconds: float        # best-of-repeats pipeline wall time
    kips: float                # (warmup + measure) / wall / 1000
    ipc: float
    cycles: int
    trace_build_seconds: float


@dataclass
class PerfReport:
    """All samples of one measurement session plus per-mechanism KIPS."""

    warmup: int
    measure: int
    repeats: int
    samples: list[PerfSample] = field(default_factory=list)
    #: mechanism name -> aggregate KIPS (total instructions / total wall).
    aggregate_kips: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "unit": "simulated kilo-instructions per second (KIPS)",
            "warmup": self.warmup,
            "measure": self.measure,
            "repeats": self.repeats,
            "aggregate_kips": {
                name: round(value, 2)
                for name, value in self.aggregate_kips.items()
            },
            "samples": [asdict(sample) for sample in self.samples],
        }


def measure_throughput(
    benchmarks=DEFAULT_BENCHMARKS,
    mechanisms: list[MechanismConfig] | None = None,
    warmup: int | None = None,
    measure: int | None = None,
    seed: int = 1,
    repeats: int = 3,
    core_config: CoreConfig | None = None,
    sampling: SamplingConfig | None = None,
) -> PerfReport:
    """Measure simulated KIPS for every benchmark × mechanism cell.

    With an *active* ``sampling`` configuration each timed run is a
    sampled one (functionally warmed warm-up, interval sampling over the
    window; no checkpoints — every repeat starts cold), and KIPS counts
    the *covered window* per wall second — detailed plus warmed
    instructions — which is the subsystem's effective throughput.
    """
    if mechanisms is None:
        mechanisms = list(default_mechanisms())
    if warmup is None or measure is None:
        default_warmup, default_measure = api_env.window_from_env()
        warmup = default_warmup if warmup is None else warmup
        measure = default_measure if measure is None else measure
    if repeats <= 0:
        raise ValueError("repeats must be positive")

    # Traces come from the shared sweep engine's simulator: in-memory
    # across this process's cells, persistent (trace store) across
    # sessions — the timed region stays the pipeline alone either way.
    from repro.harness.sweep import shared_engine

    simulator = shared_engine(core_config).simulator
    instructions = warmup + measure
    report = PerfReport(warmup=warmup, measure=measure, repeats=repeats)

    for mechanism in mechanisms:
        total_wall = 0.0
        total_instructions = 0
        for benchmark in benchmarks:
            build_start = time.perf_counter()
            trace = simulator.trace_for(
                benchmark, seed, instructions + _TRACE_SLACK
            )
            trace_build = time.perf_counter() - build_start

            best_wall = None
            stats = None
            simulated = instructions
            sampled_active = sampling is not None and sampling.active
            for _ in range(repeats):
                pipeline = Pipeline(
                    trace, simulator.core_config, mechanism, seed
                )
                if sampled_active:
                    run = SampledRun(pipeline, sampling)
                    start = time.perf_counter()
                    warmed_up = run.warm_up(warmup)
                    stats = run.measure(measure)
                    wall = time.perf_counter() - start
                    # Effective throughput: the covered window (warm-up
                    # actually warmed + sampled measurement span) —
                    # both can fall short when the trace halts early.
                    simulated = warmed_up + stats.sampled_window
                else:
                    start = time.perf_counter()
                    stats = pipeline.run(measure, warmup)
                    wall = time.perf_counter() - start
                    # The run can end early if the trace halts before the
                    # window fills; count what was actually simulated.
                    simulated = pipeline.total_committed
                if best_wall is None or wall < best_wall:
                    best_wall = wall
            report.samples.append(PerfSample(
                benchmark=benchmark,
                mechanism=mechanism.name,
                seed=seed,
                warmup=warmup,
                measure=measure,
                wall_seconds=round(best_wall, 4),
                kips=round(simulated / best_wall / 1000.0, 2),
                ipc=round(stats.ipc, 4),
                cycles=stats.cycles,
                trace_build_seconds=round(trace_build, 4),
            ))
            total_wall += best_wall
            total_instructions += simulated
        report.aggregate_kips[mechanism.name] = (
            total_instructions / total_wall / 1000.0
        )
    return report


def render_report(report: PerfReport) -> str:
    """Human-readable table of one report."""
    lines = [
        f"simulated-throughput (warmup {report.warmup}, "
        f"measure {report.measure}, best of {report.repeats})",
        f"{'benchmark':<12} {'mechanism':<16} {'KIPS':>9} "
        f"{'IPC':>7} {'wall s':>8}",
    ]
    for sample in report.samples:
        lines.append(
            f"{sample.benchmark:<12} {sample.mechanism:<16} "
            f"{sample.kips:>9.1f} {sample.ipc:>7.3f} "
            f"{sample.wall_seconds:>8.3f}"
        )
    for name, kips in report.aggregate_kips.items():
        lines.append(f"aggregate    {name:<16} {kips:>9.1f}")
    return "\n".join(lines)


#: CI fails when smoke KIPS drops below this fraction of the recorded
#: reference (>30% regression).  Single source of truth for the gate —
#: the recorded ``smoke.tolerance`` in BENCH_perf.json overrides it.
SMOKE_TOLERANCE = 0.70


def throughput_smoke(json_path, repeats: int = 3) -> int:
    """CI regression gate: re-measure the recorded smoke cell.

    Reads the ``smoke`` section of a committed ``BENCH_perf.json``
    (written by ``benchmarks/bench_perf_throughput.py``), re-measures
    that cell and fails (non-zero) when any mechanism's aggregate KIPS
    drops below ``tolerance`` of the recorded reference.  Lives here —
    not in the bench script — so the installed ``repro perf --smoke``
    entry point can run it without the repository checkout layout.
    """
    from pathlib import Path

    json_path = Path(json_path)
    if not json_path.exists():
        print(f"no {json_path}: run benchmarks/bench_perf_throughput.py "
              "once to record the smoke reference", file=sys.stderr)
        return 2
    recorded = json.loads(json_path.read_text(encoding="utf-8"))
    smoke_ref = recorded.get("smoke")
    if not smoke_ref:
        print(f"{json_path} has no smoke section; re-run the full "
              "throughput bench", file=sys.stderr)
        return 2

    report = measure_throughput(
        benchmarks=(smoke_ref["benchmark"],),
        mechanisms=list(default_mechanisms()),
        warmup=smoke_ref["warmup"],
        measure=smoke_ref["measure"],
        repeats=repeats,
    )
    print(render_report(report))
    tolerance = smoke_ref.get("tolerance", SMOKE_TOLERANCE)
    failed = False
    for name, reference in smoke_ref["aggregate_kips"].items():
        current = report.aggregate_kips.get(name)
        if current is None:
            continue
        floor = reference * tolerance
        verdict = "ok" if current >= floor else "REGRESSION"
        print(f"smoke {name}: {current:.1f} KIPS vs recorded "
              f"{reference:.1f} (floor {floor:.1f}) -> {verdict}")
        if current < floor:
            failed = True
    if failed:
        print("smoke throughput regressed more than "
              f"{(1 - tolerance) * 100:.0f}% — failing", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.perf",
        description="Measure simulated KIPS for benchmark/mechanism cells.",
    )
    parser.add_argument(
        "--benchmark", action="append", dest="benchmarks", metavar="NAME",
        help="benchmark to measure (repeatable; default: a representative "
        f"mix of {len(DEFAULT_BENCHMARKS)})",
    )
    parser.add_argument(
        "--mechanism", action="append", dest="mechanisms", metavar="NAME",
        choices=sorted(MECHANISM_PRESETS),
        help="mechanism preset (repeatable; default: baseline and "
        "rsep-realistic)",
    )
    parser.add_argument("--warmup", type=int, default=None,
                        help="warm-up instructions (default: REPRO_WARMUP)")
    parser.add_argument("--measure", type=int, default=None,
                        help="measured instructions (default: REPRO_MEASURE)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per cell; best is kept")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the report as JSON to PATH "
                        "('-' for stdout)")
    parser.add_argument("--sampled", action="store_true",
                        help="time interval-sampled runs (KIPS then counts "
                        "the covered window: detailed + warmed)")
    parser.add_argument("--interval", type=int, default=None,
                        help="with --sampled: instructions per interval "
                        "(default: REPRO_INTERVAL)")
    parser.add_argument("--detail-ratio", type=float, default=None,
                        help="with --sampled: measured fraction per "
                        "interval (default: REPRO_DETAIL_RATIO)")
    args = parser.parse_args(argv)

    sampling = None
    if args.sampled:
        from dataclasses import replace

        sampling = replace(
            api_env.sampling_from_env(), enabled=True,
        )
        if args.interval is not None:
            sampling = replace(sampling, interval=args.interval)
        if args.detail_ratio is not None:
            sampling = replace(sampling, detail_ratio=args.detail_ratio)
    mechanisms = None
    if args.mechanisms:
        mechanisms = [mechanism_by_name(name) for name in args.mechanisms]
    report = measure_throughput(
        benchmarks=tuple(args.benchmarks) if args.benchmarks
        else DEFAULT_BENCHMARKS,
        mechanisms=mechanisms,
        warmup=args.warmup,
        measure=args.measure,
        seed=args.seed,
        repeats=args.repeats,
        sampling=sampling,
    )
    print(render_report(report))
    if args.json == "-":
        json.dump(report.to_dict(), sys.stdout, indent=1)
        print()
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=1)
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
