"""Experiment harness: runners, redundancy analysis, reporting."""

from repro.harness.redundancy import (
    LivePrfModel,
    RedundancyProfile,
    analyze_benchmark,
    analyze_trace,
)
from repro.harness.reporting import (
    Table,
    format_percent,
    geometric_mean,
    harmonic_mean,
)
from repro.harness.runner import (
    BenchmarkOutcome,
    ExperimentRunner,
    default_seeds,
)

__all__ = [
    "BenchmarkOutcome",
    "ExperimentRunner",
    "LivePrfModel",
    "RedundancyProfile",
    "Table",
    "analyze_benchmark",
    "analyze_trace",
    "default_seeds",
    "format_percent",
    "geometric_mean",
    "harmonic_mean",
]
