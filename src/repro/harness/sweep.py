"""Shared sweep engine: interpret once, simulate each unique cell once.

Every figure bench, ablation, example and CI gate ultimately runs the
same kind of sweep — benchmark × mechanism × seed cells over a common
window.  Before this module each script owned a private
:class:`~repro.harness.runner.ExperimentRunner`, so the same functional
trace was re-interpreted per script and the same cell (fig. 4's baseline
is also fig. 6's, fig. 7's and Table I's) was re-simulated per script.
The sweep engine removes both redundancies:

* **Traces** come from the engine's :class:`Simulator`, which memoises in
  memory and persists through the on-disk
  :class:`~repro.workloads.store.TraceStore` — each trace is interpreted
  at most once per machine, ever (build-once / run-many, in the style of
  artifact-caching experiment infrastructures).
* **Cells** are memoised on a content fingerprint of everything that
  determines the result — benchmark, seed, resolved window and the full
  mechanism configuration *minus its display name* — so two presets with
  different names but identical settings share one simulation.  Each
  simulation runs on a fresh ``Pipeline``, so a memoised result is
  bit-identical to a rerun (the same determinism guarantee the golden
  tests pin down).

Sweeps fan out over worker processes when ``workers > 1`` (or
``REPRO_WORKERS`` is set); chunking and the deterministic merge follow
the original parallel runner.  Workers share the on-disk trace store, so
even a cold parallel sweep interprets each trace once.

``python -m repro.harness.sweep --smoke`` is the CI gate: it runs a tiny
sweep cold, re-runs it through the memo and through a fresh engine on
the warmed store, and fails if any path disagrees.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing

from repro.api import env as api_env
from repro.obs.runtime import obs_tracer
from repro.pipeline.config import CoreConfig, MechanismConfig
from repro.pipeline.simulator import SimulationResult, Simulator
from repro.pipeline.stats import Stats
from repro.sampling import SamplingConfig
from repro.workloads.store import CELL_FORMAT, workload_code_version

#: Cell key: (benchmark, seed, warmup, measure, mechanism fingerprint,
#: sampling fingerprint, core-config fingerprint).  The core fingerprint
#: makes the memo sound for any core configuration — two cores can
#: never collide on a key — which is also what lets engines with
#: different cores share one cell table (see :meth:`SweepEngine.variant`)
#: and what makes a persistent result lake keyed the same way safe.
CellKey = tuple[str, int, int, int, str, str, str]

#: The exact Stats schema this build writes/reads in lake cells.  A lake
#: entry whose stats keys differ (written by an older/newer build under
#: the same CELL_FORMAT) is a miss, never a misread.
_STATS_FIELDS = frozenset(f.name for f in dataclasses.fields(Stats))


def mechanism_fingerprint(mechanism: MechanismConfig) -> str:
    """Content fingerprint of a mechanism configuration.

    The display name is excluded: it labels the experiment, not the
    machine being simulated.  Everything else is a tree of frozen
    dataclasses, enums and scalars with deterministic ``repr``.
    """
    return mechanism.fingerprint()


def default_workers() -> int:
    """Deprecated: use :func:`repro.api.env.workers_from_env` (or better,
    :class:`repro.api.ExperimentSpec`'s ``workers`` field)."""
    api_env.deprecated(
        "repro.harness.sweep.default_workers",
        "repro.api.env.workers_from_env",
    )
    return api_env.workers_from_env()


def _copy_result(
    result: SimulationResult, benchmark: str, name: str, seed: int
) -> SimulationResult:
    """A fresh result view (own ``Stats``) labelled for the caller."""
    stats = dataclasses.replace(result.stats, extra=dict(result.stats.extra))
    return SimulationResult(benchmark, name, seed, stats)


def _run_cells_task(payload):
    """Worker entry point: simulate one benchmark's missing cells.

    Chunked per benchmark so the worker interprets (or, warm, loads) each
    trace once and reuses it across mechanisms.  Workers use the parent
    engine's trace store (its root travels in the payload; ``None`` means
    the parent disabled persistence), so the shared on-disk store makes
    interpretation once-per-machine even across workers.  The lake gate
    travels as a resolved bool — workers consult and populate the shared
    result lake exactly like the parent would, never the environment —
    and the worker's (simulated, lake-hit) counts travel back so the
    parent's counters stay exact.
    """
    from repro.workloads.store import TraceStore

    (
        core_config, store_root, benchmark, cells, warmup, measure, sampling,
        result_lake,
    ) = payload
    store = TraceStore(store_root) if store_root is not None else None
    engine = SweepEngine(
        simulator=Simulator(core_config, trace_store=store),
        result_lake=result_lake,
    )
    results = [
        engine.run_cell(
            benchmark, mechanism, seed=seed, warmup=warmup, measure=measure,
            sampling=sampling,
        )
        for mechanism, seed in cells
    ]
    return results, engine.cell_misses, engine.lake_hits


class SweepEngine:
    """Memoising sweep executor shared by benches, examples and tests."""

    def __init__(
        self,
        core_config: CoreConfig | None = None,
        simulator: Simulator | None = None,
        sampling: SamplingConfig | None = None,
        result_lake: bool | None = None,
    ) -> None:
        self.simulator = simulator or Simulator(core_config)
        self.core_config = self.simulator.core_config
        self._core_fp = self.core_config.fingerprint()
        #: Engine-wide sampling default; ``None`` follows the environment
        #: (``REPRO_SAMPLING`` and friends) at each call.
        self.sampling = sampling
        #: Result-lake gate (DESIGN.md §14): ``None`` follows the
        #: environment (``REPRO_RESULT_LAKE``) at each call; an explicit
        #: bool (a :class:`~repro.api.spec.StoreSpec` threading through
        #: :class:`~repro.api.session.Session`) pins it.  The lake lives
        #: in the simulator's trace store, so no store means no lake.
        self.result_lake = result_lake
        self._cells: dict[CellKey, SimulationResult] = {}
        self._variants: dict[str, SweepEngine] = {}
        self.cell_hits = 0
        self.cell_misses = 0
        self.lake_hits = 0
        self.lake_misses = 0
        self.lake_writes = 0

    # ------------------------------------------------------------------

    def variant(self, core_config: CoreConfig | None) -> "SweepEngine":
        """An engine simulating *core_config* that shares this engine's
        caches.

        The variant reuses the same on-disk trace store, the same
        in-memory trace cache (traces are core-independent), the same
        cell memo (sound: cell keys cover the core fingerprint) and the
        same result-lake gate.  Repeated requests for one core config
        return the same object, so its hit/miss counters accumulate
        across callers — unlike the pre-lake behaviour where every
        non-default core got a throwaway private engine that
        re-simulated everything.
        """
        if core_config is None:
            return self
        fingerprint = core_config.fingerprint()
        if fingerprint == self._core_fp:
            return self
        engine = self._variants.get(fingerprint)
        if engine is None:
            engine = SweepEngine(
                simulator=Simulator(
                    core_config,
                    trace_store=self.simulator.trace_store,
                    columnar=self.simulator.columnar,
                ),
                sampling=self.sampling,
                result_lake=self.result_lake,
            )
            engine._cells = self._cells
            engine.simulator._trace_cache = self.simulator._trace_cache
            self._variants[fingerprint] = engine
        return engine

    def lake_enabled(self) -> bool:
        """Whether cell lookups consult (and misses populate) the lake."""
        if self.simulator.trace_store is None:
            return False
        if self.result_lake is not None:
            return self.result_lake
        return api_env.result_lake_from_env()

    # ------------------------------------------------------------------

    def _resolve_sampling(
        self, sampling: SamplingConfig | None
    ) -> SamplingConfig:
        if sampling is not None:
            return sampling
        if self.sampling is not None:
            return self.sampling
        return api_env.sampling_from_env()

    def _key(
        self, benchmark: str, mechanism: MechanismConfig, seed: int,
        warmup: int | None, measure: int | None,
        sampling: SamplingConfig,
    ) -> CellKey:
        if warmup is None or measure is None:
            default_warmup, default_measure = api_env.window_from_env()
            warmup = default_warmup if warmup is None else warmup
            measure = default_measure if measure is None else measure
        return (
            benchmark, seed, warmup, measure,
            mechanism_fingerprint(mechanism),
            sampling.fingerprint(),
            self._core_fp,
        )

    def cell_token(
        self, mechanism: MechanismConfig, warmup: int, measure: int,
        sampling: SamplingConfig,
    ) -> str:
        """Everything beyond (benchmark, seed) a lake cell depends on.

        The complete fingerprint the ISSUE of unsound sharing demands:
        resolved window, sampling fingerprint, mechanism fingerprint
        (name-free), core-config fingerprint, workload-code version and
        the cell format — a cell written under any other configuration
        hashes to a different file name and can never be served.

        Public because the cluster coordinator recomputes tokens locally
        to verify lake entries a remote host published (a host cannot
        make the coordinator file a cell under a key of the host's
        choosing).
        """
        return "\x00".join((
            str(warmup), str(measure), sampling.fingerprint(),
            mechanism.fingerprint(), self._core_fp,
            workload_code_version(), f"cell{CELL_FORMAT}",
        ))

    def _cell_meta(
        self, mechanism: MechanismConfig, warmup: int, measure: int,
        sampling: SamplingConfig,
    ) -> dict:
        """The informational meta block lake cells carry (queryable by
        ``repro report --lake``; never part of the self-digest)."""
        return {
            "mechanism": mechanism.name,
            "warmup": warmup,
            "measure": measure,
            "sampling": sampling.fingerprint(),
            "core": hashlib.sha256(
                self._core_fp.encode()
            ).hexdigest()[:12],
            "workload_version": workload_code_version(),
        }

    def lake_entry(
        self, result: SimulationResult, mechanism: MechanismConfig,
        warmup: int, measure: int, sampling: SamplingConfig,
    ) -> dict:
        """One cell as a portable lake-entry payload.

        What a cluster host ships back beside its shard artifact so the
        coordinator's lake goes warm: the exact (benchmark, seed, token,
        stats, meta) tuple :meth:`_lake_store` would write locally.  The
        coordinator re-verifies token and stats against the
        digest-verified shard result before filing it.
        """
        return {
            "benchmark": result.benchmark,
            "seed": result.seed,
            "token": self.cell_token(mechanism, warmup, measure, sampling),
            "stats": dataclasses.asdict(result.stats),
            "meta": self._cell_meta(mechanism, warmup, measure, sampling),
        }

    def _lake_load(
        self, benchmark: str, mechanism: MechanismConfig, seed: int,
        token: str,
    ) -> SimulationResult | None:
        """One cell from the lake, or ``None`` on any miss.

        The store validates payload shape and self-digest; the stats
        schema is checked here against this build's ``Stats`` fields, so
        an entry from a build with a different schema is a miss that the
        fresh simulation overwrites.
        """
        payload = self.simulator.trace_store.load_cell(
            benchmark, seed, token, fields=_STATS_FIELDS
        )
        if payload is None:
            return None
        stats = Stats(**payload["stats"])
        stats.extra = dict(stats.extra)
        return SimulationResult(benchmark, mechanism.name, seed, stats)

    def run_cell(
        self,
        benchmark: str,
        mechanism: MechanismConfig,
        seed: int = 1,
        warmup: int | None = None,
        measure: int | None = None,
        sampling: SamplingConfig | None = None,
    ) -> SimulationResult:
        """Simulate (or recall) one cell; returns a private result copy.

        Lookup order: in-memory memo, then (when the lake is enabled)
        the on-disk result lake, then simulation — which also populates
        the lake, so any process that has ever run this cell serves it
        from disk from then on.
        """
        sampling = self._resolve_sampling(sampling)
        if warmup is None or measure is None:
            default_warmup, default_measure = api_env.window_from_env()
            warmup = default_warmup if warmup is None else warmup
            measure = default_measure if measure is None else measure
        key = self._key(benchmark, mechanism, seed, warmup, measure, sampling)
        cached = self._cells.get(key)
        if cached is not None:
            self.cell_hits += 1
            obs_tracer().event(
                "sweep.cell.memo", benchmark=benchmark,
                mechanism=mechanism.name, seed=seed,
            )
            return _copy_result(cached, benchmark, mechanism.name, seed)
        lake = self.lake_enabled()
        token = ""
        if lake:
            token = self.cell_token(mechanism, warmup, measure, sampling)
            result = self._lake_load(benchmark, mechanism, seed, token)
            if result is not None:
                self.lake_hits += 1
                obs_tracer().event(
                    "sweep.cell.lake", benchmark=benchmark,
                    mechanism=mechanism.name, seed=seed,
                )
                self._cells[key] = result
                return _copy_result(result, benchmark, mechanism.name, seed)
            self.lake_misses += 1
        self.cell_misses += 1
        with obs_tracer().span(
            "sweep.cell", benchmark=benchmark, mechanism=mechanism.name,
            seed=seed,
        ):
            result = self.simulator.run_benchmark(
                benchmark, mechanism, warmup=warmup, measure=measure,
                seed=seed, sampling=sampling,
            )
        self._cells[key] = result
        if lake:
            self._lake_store(
                result, benchmark, mechanism, seed, warmup, measure,
                sampling, token,
            )
        return _copy_result(result, benchmark, mechanism.name, seed)

    def _lake_store(
        self, result: SimulationResult, benchmark: str,
        mechanism: MechanismConfig, seed: int, warmup: int, measure: int,
        sampling: SamplingConfig, token: str,
    ) -> None:
        """Write one freshly simulated cell into the lake (best-effort)."""
        written = self.simulator.trace_store.save_cell(
            dataclasses.asdict(result.stats), benchmark, seed, token,
            meta=self._cell_meta(mechanism, warmup, measure, sampling),
        )
        if written is not None:
            self.lake_writes += 1
            obs_tracer().event(
                "sweep.cell.lake_write", benchmark=benchmark,
                mechanism=mechanism.name, seed=seed,
            )

    def sweep(
        self,
        benchmarks: list[str],
        mechanisms: list[MechanismConfig],
        seeds: list[int] | None = None,
        warmup: int | None = None,
        measure: int | None = None,
        workers: int | None = None,
        sampling: SamplingConfig | None = None,
    ) -> dict[tuple[str, str], list[SimulationResult]]:
        """Run every benchmark × mechanism × seed cell.

        Returns ``{(benchmark, mechanism name): [result per seed]}``.
        Memoised cells are recalled; the rest run sequentially or fan out
        over ``workers`` processes with a deterministic task-order merge,
        so the outcome is byte-identical either way.
        """
        seeds = seeds or [1]
        if workers is None:
            workers = api_env.workers_from_env()
        sampling = self._resolve_sampling(sampling)
        prefilled: set[CellKey] = set()
        if workers > 1:
            prefilled = self._prefill_parallel(
                benchmarks, mechanisms, seeds, warmup, measure, workers,
                sampling,
            )
        out: dict[tuple[str, str], list[SimulationResult]] = {}
        for benchmark in benchmarks:
            for mechanism in mechanisms:
                results = []
                for seed in seeds:
                    key = self._key(
                        benchmark, mechanism, seed, warmup, measure, sampling
                    )
                    cached = self._cells.get(key)
                    if cached is None:
                        results.append(self.run_cell(
                            benchmark, mechanism, seed, warmup, measure,
                            sampling,
                        ))
                        continue
                    if key in prefilled:
                        # First collection of a cell this very sweep
                        # computed: already counted as a miss, not a
                        # memo hit.
                        prefilled.discard(key)
                    else:
                        self.cell_hits += 1
                    results.append(_copy_result(
                        cached, benchmark, mechanism.name, seed
                    ))
                out[(benchmark, mechanism.name)] = results
        return out

    def _prefill_parallel(
        self, benchmarks, mechanisms, seeds, warmup, measure, workers,
        sampling,
    ) -> set[CellKey]:
        """Fan missing cells out over a process pool, merge in task order.

        Tasks carry only the (mechanism, seed) cells actually missing
        from the memo, at seed granularity, so no cached cell is ever
        re-simulated and the hit/miss counters stay exact.  Returns the
        keys filled, so the caller can tell a first collection from a
        genuine memo hit.

        Collection is *bounded*: each task's result is awaited with a
        per-task deadline (``REPRO_SHARD_TIMEOUT``), so a hung pool
        worker — or one the OS killed, whose ``AsyncResult`` would
        otherwise never resolve — can no longer stall the sweep forever.
        A task that times out or errors is re-dispatched in-process (the
        pool's teardown kills any stuck worker), so the merged cell
        table is identical to an all-healthy run.
        """
        lake = self.lake_enabled()
        tasks = []
        task_plan = []
        for benchmark in benchmarks:
            todo = [
                (mechanism, seed)
                for mechanism in mechanisms
                for seed in seeds
                if self._key(
                    benchmark, mechanism, seed, warmup, measure, sampling
                )
                not in self._cells
            ]
            if not todo:
                continue
            task_plan.append((benchmark, todo))
            store = self.simulator.trace_store
            tasks.append((
                self.core_config, str(store.root) if store else None,
                benchmark, todo, warmup, measure, sampling, lake,
            ))
        filled: set[CellKey] = set()
        if not tasks:
            return filled
        deadline = api_env.shard_timeout_from_env()
        with multiprocessing.Pool(processes=min(workers, len(tasks))) as pool:
            pending = [
                pool.apply_async(_run_cells_task, (task,)) for task in tasks
            ]
            per_task = []
            for handle in pending:
                try:
                    per_task.append(handle.get(timeout=deadline))
                except Exception:  # noqa: BLE001 - timeout, worker death,
                    # or a worker-raised error; all re-dispatched below,
                    # where a genuine simulation bug re-raises in-parent.
                    per_task.append(None)
        for (benchmark, todo), outcome in zip(task_plan, per_task):
            if outcome is None:
                # Re-dispatch the lost task in-process, deterministically;
                # run_cell counts misses and lake traffic exactly as the
                # worker would have (and may even serve cells a worker
                # lake-wrote before dying).
                for mechanism, seed in todo:
                    self.run_cell(
                        benchmark, mechanism, seed, warmup, measure, sampling
                    )
                    filled.add(self._key(
                        benchmark, mechanism, seed, warmup, measure, sampling
                    ))
                continue
            results, simulated, lake_hits = outcome
            # The worker's exact counts: `simulated` cells were actually
            # run (each a lake miss when the lake is on), the rest were
            # served from the shared lake.
            self.cell_misses += simulated
            self.lake_hits += lake_hits
            if lake:
                self.lake_misses += simulated
            for (mechanism, seed), result in zip(todo, results):
                key = self._key(
                    benchmark, mechanism, seed, warmup, measure, sampling
                )
                self._cells[key] = result
                filled.add(key)
        return filled


# ---------------------------------------------------------------------------
# Shared default engine
# ---------------------------------------------------------------------------

_shared: SweepEngine | None = None


def shared_engine(core_config: CoreConfig | None = None) -> SweepEngine:
    """The process-wide engine for sweeps of any core configuration.

    Scripts running in one process (e.g. every figure bench of a pytest
    session) share its trace and cell memos.  Cell keys cover the
    core-config fingerprint, so a non-default core no longer gets a
    throwaway private engine that re-simulates everything: it gets the
    shared engine's :meth:`~SweepEngine.variant`, sharing the trace
    store, the in-memory trace cache and the (now sound) cell memo.
    """
    global _shared
    if _shared is None:
        _shared = SweepEngine()
    return _shared.variant(core_config)


def reset_shared_engine() -> None:
    """Drop the process-wide engine (tests use this for isolation)."""
    global _shared
    _shared = None


# ---------------------------------------------------------------------------
# CI smoke gate
# ---------------------------------------------------------------------------


def _smoke_sampled(benchmarks, mechanisms, kwargs) -> int:
    """Sampled-mode gates, run against a private temporary store.

    Checks, in order: the degenerate 100%-duty configuration shares the
    plain cell (bit-identical by construction, fingerprint-folded); an
    active sampled sweep is deterministic cold == memoised == restored
    from its own µarch checkpoints; its fields are populated; and its
    IPC lands within a loose sanity band of the full-detail result.
    """
    import tempfile

    from repro.workloads.store import TraceStore

    degenerate = SamplingConfig(enabled=True, detail_ratio=1.0)
    active = SamplingConfig(
        enabled=True, interval=1000, detail_ratio=0.25, detail_warmup=128
    )
    with tempfile.TemporaryDirectory(prefix="repro-smoke-sampled-") as root:
        engine = SweepEngine(simulator=Simulator(trace_store=TraceStore(root)))
        full = engine.sweep(benchmarks, mechanisms, **kwargs)
        degen = engine.sweep(
            benchmarks, mechanisms, sampling=degenerate, **kwargs
        )
        for key in full:
            for a, b in zip(full[key], degen[key]):
                if dataclasses.asdict(a.stats) != dataclasses.asdict(b.stats):
                    print(f"sampled smoke: degenerate diverged for {key}")
                    return 1
        cold = engine.sweep(benchmarks, mechanisms, sampling=active, **kwargs)
        memo = engine.sweep(benchmarks, mechanisms, sampling=active, **kwargs)
        # A fresh engine on the same store restores the µarch checkpoints
        # the cold sweep captured; results must not change.
        warm_engine = SweepEngine(
            simulator=Simulator(trace_store=TraceStore(root))
        )
        warm = warm_engine.sweep(
            benchmarks, mechanisms, sampling=active, **kwargs
        )
        if warm_engine.simulator.trace_store.checkpoint_hits == 0:
            print("sampled smoke: no checkpoint was restored")
            return 1
        for key in cold:
            for a, b, c in zip(cold[key], memo[key], warm[key]):
                if not (
                    dataclasses.asdict(a.stats)
                    == dataclasses.asdict(b.stats)
                    == dataclasses.asdict(c.stats)
                ):
                    print(f"sampled smoke: stats diverged for {key}")
                    return 1
                stats = a.stats
                if not (stats.warmed > 0 and stats.intervals > 0
                        and stats.sampled_window > 0):
                    print(f"sampled smoke: sampling fields unset for {key}")
                    return 1
                reference = full[key][0].ipc
                if reference > 0 and abs(
                    stats.ipc - reference
                ) / reference > 0.35:
                    print(
                        f"sampled smoke: IPC off by more than 35% for {key} "
                        f"(sampled {stats.ipc:.3f} vs full {reference:.3f})"
                    )
                    return 1
    print("sampled smoke: degenerate bit-identical, sampled cold == "
          f"memoised == checkpoint-restored ({len(cold)} cells)")
    return 0


def _smoke(sampled: bool = False) -> int:
    """Fail (non-zero) unless memoised and store-warmed sweeps agree."""
    import tempfile

    from repro.workloads.store import TraceStore

    benchmarks = ["mcf", "dealII"]
    mechanisms = [
        MechanismConfig.baseline(), MechanismConfig.rsep_realistic()
    ]
    # workers=1: the gate checks memo/store identity via in-process
    # counters, so it runs sequentially regardless of REPRO_WORKERS
    # (parallel equivalence has its own test coverage).
    kwargs = dict(seeds=[1], warmup=512, measure=2000, workers=1)

    with tempfile.TemporaryDirectory(prefix="repro-smoke-store-") as root:
        store = TraceStore(root)
        cold_engine = SweepEngine(simulator=Simulator(trace_store=store))
        cold = cold_engine.sweep(benchmarks, mechanisms, **kwargs)
        memo = cold_engine.sweep(benchmarks, mechanisms, **kwargs)
        if cold_engine.cell_misses != len(benchmarks) * len(mechanisms):
            print("smoke: unexpected cell miss count "
                  f"({cold_engine.cell_misses})")
            return 1
        # Persistence is judged by the artifacts on disk, not the
        # parent's counters: under REPRO_WORKERS the writes happen in
        # worker processes.
        stored = list(store.root.glob("*.trace"))
        if len(stored) != len(benchmarks):
            print(f"smoke: store did not persist ({len(stored)} artifacts "
                  f"for {len(benchmarks)} benchmarks)")
            return 1

        warm_store = TraceStore(root)
        warm_engine = SweepEngine(simulator=Simulator(trace_store=warm_store))
        warm = warm_engine.sweep(benchmarks, mechanisms, **kwargs)
        if warm_store.hits != len(benchmarks):
            print(f"smoke: warm store missed (hits={warm_store.hits}, "
                  f"expected {len(benchmarks)})")
            return 1

        for key in cold:
            for a, b, c in zip(cold[key], memo[key], warm[key]):
                if not (
                    dataclasses.asdict(a.stats)
                    == dataclasses.asdict(b.stats)
                    == dataclasses.asdict(c.stats)
                ):
                    print(f"smoke: stats diverged for {key}")
                    return 1
    print("sweep smoke: cold == memoised == warm-store "
          f"({len(cold)} cells over {benchmarks})")
    if sampled:
        return _smoke_sampled(benchmarks, mechanisms, kwargs)
    return 0


def _lake_child(root: str, lake_flag: str) -> int:
    """Hidden entry point for the ``--lake`` gate.

    Runs the smoke grid in *this* process against the store at *root*
    with the result lake pinned on or off, then prints one
    machine-readable line (``digest=... simulated=... lake_hits=...
    lake_writes=...``) the parent gate compares across processes.
    """
    import json

    from repro.workloads.store import TraceStore

    benchmarks = ["mcf", "dealII"]
    mechanisms = [
        MechanismConfig.baseline(), MechanismConfig.rsep_realistic()
    ]
    engine = SweepEngine(
        simulator=Simulator(trace_store=TraceStore(root)),
        result_lake=(lake_flag == "on"),
    )
    results = engine.sweep(
        benchmarks, mechanisms, seeds=[1], warmup=512, measure=2000,
        workers=1,
    )
    payload = {
        "|".join(key): [dataclasses.asdict(r.stats) for r in cell]
        for key, cell in sorted(results.items())
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()[:16]
    print(
        f"digest={digest} simulated={engine.cell_misses} "
        f"lake_hits={engine.lake_hits} lake_writes={engine.lake_writes}"
    )
    return 0


def _smoke_lake() -> int:
    """Incremental-sweep gate (ISSUE 9 / DESIGN.md §14).

    A cold child process populates the lake; a *fresh* child on the warm
    lake must simulate zero cells and produce a digest-identical
    artifact; a lake-off child on the same store must never touch the
    lake yet stay digest-identical — the `REPRO_RESULT_LAKE` off =
    today's behaviour guarantee.
    """
    import os
    import subprocess
    import sys
    import tempfile
    from pathlib import Path

    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    def child(root: str, flag: str) -> dict | None:
        proc = subprocess.run(
            [sys.executable, "-m", "repro.harness.sweep",
             "--lake-child", root, flag],
            capture_output=True, text=True, env=env,
        )
        if proc.returncode != 0 or not proc.stdout.strip():
            print(f"lake smoke: child ({flag}) failed:\n"
                  f"{proc.stdout}{proc.stderr}")
            return None
        line = proc.stdout.strip().splitlines()[-1]
        return dict(part.split("=", 1) for part in line.split())

    with tempfile.TemporaryDirectory(prefix="repro-smoke-lake-") as root:
        cold = child(root, "on")
        if cold is None:
            return 1
        if int(cold["simulated"]) == 0:
            print("lake smoke: cold run simulated nothing")
            return 1
        if int(cold["lake_writes"]) != int(cold["simulated"]):
            print("lake smoke: cold run did not lake every simulation "
                  f"(simulated={cold['simulated']}, "
                  f"writes={cold['lake_writes']})")
            return 1
        warm = child(root, "on")
        if warm is None:
            return 1
        if int(warm["simulated"]) != 0:
            print("lake smoke: warm fresh-process run re-simulated "
                  f"{warm['simulated']} cells")
            return 1
        if warm["digest"] != cold["digest"]:
            print("lake smoke: warm digest diverged "
                  f"({warm['digest']} != {cold['digest']})")
            return 1
        off = child(root, "off")
        if off is None:
            return 1
        if int(off["lake_hits"]) != 0 or int(off["lake_writes"]) != 0:
            print("lake smoke: lake-off run touched the lake "
                  f"(hits={off['lake_hits']}, writes={off['lake_writes']})")
            return 1
        if off["digest"] != cold["digest"]:
            print("lake smoke: lake-off digest diverged "
                  f"({off['digest']} != {cold['digest']})")
            return 1
    print("lake smoke: warm fresh-process re-run simulated 0 cells "
          f"(lake_hits={warm['lake_hits']}), digest-identical cold == "
          f"warm == lake-off ({cold['digest']})")
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.sweep",
        description="Shared sweep engine utilities.",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI gate: verify memoised and warm-store sweeps are "
        "bit-identical to a cold sweep",
    )
    parser.add_argument(
        "--sampled", action="store_true",
        help="with --smoke: additionally gate the sampled-simulation "
        "subsystem (degenerate bit-identity, sampled determinism, "
        "checkpoint restore)",
    )
    parser.add_argument(
        "--lake", action="store_true",
        help="with --smoke: incremental-sweep gate — a fresh process on "
        "a warm result lake must simulate zero cells and emit a "
        "digest-identical artifact",
    )
    parser.add_argument(
        "--lake-child", nargs=2, metavar=("ROOT", "ON|OFF"),
        help=argparse.SUPPRESS,
    )
    args = parser.parse_args(argv)
    if args.lake_child:
        return _lake_child(args.lake_child[0], args.lake_child[1])
    if args.smoke:
        status = _smoke(sampled=args.sampled)
        if status == 0 and args.lake:
            status = _smoke_lake()
        return status
    parser.print_help()
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
