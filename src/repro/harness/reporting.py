"""Report rendering: the ASCII tables and series the benches print.

The paper reports per-benchmark IPC as the harmonic mean over checkpoints
(§V) and figures as per-benchmark bar groups; these helpers render the
same rows in plain text.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean, the paper's per-benchmark IPC aggregation (§V)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return len(values) / sum(1.0 / v for v in values)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, used for cross-benchmark speedup summaries."""
    values = list(values)
    if not values:
        return 0.0
    return math.exp(sum(math.log(max(v, 1e-12)) for v in values) / len(values))


def format_percent(value: float, digits: int = 1) -> str:
    return f"{100.0 * value:+.{digits}f}%"


def format_ipc(stats, digits: int = 3) -> str:
    """IPC, with its ± confidence half-width when interval-sampled.

    Full-detail windows render as before (``1.234``); sampled windows
    carry the estimate's confidence interval (``1.234 ±0.012``), per the
    aggregation of DESIGN.md §8.
    """
    value = f"{stats.ipc:.{digits}f}"
    if getattr(stats, "warmed", 0):
        return f"{value} ±{stats.ipc_ci:.{digits}f}"
    return value


class Table:
    """A fixed-column ASCII table."""

    def __init__(self, headers: Sequence[str],
                 widths: Sequence[int] | None = None) -> None:
        self.headers = list(headers)
        self.rows: list[list[str]] = []
        self._widths = list(widths) if widths else None

    def add_row(self, *cells) -> None:
        row = [
            f"{cell:.3f}" if isinstance(cell, float) else str(cell)
            for cell in cells
        ]
        if len(row) != len(self.headers):
            raise ValueError("row width does not match headers")
        self.rows.append(row)

    def render(self) -> str:
        widths = self._widths or [
            max(len(self.headers[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        def line(cells):
            return "  ".join(
                str(cell).ljust(width) if index == 0 else
                str(cell).rjust(width)
                for index, (cell, width) in enumerate(zip(cells, widths))
            )
        out = [line(self.headers)]
        out.append("  ".join("-" * w for w in widths))
        out.extend(line(row) for row in self.rows)
        return "\n".join(out)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
