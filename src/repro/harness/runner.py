"""Experiment runner: benchmark × mechanism × seed sweeps with aggregation.

Follows the paper's methodology (§V): several checkpoints (seeds) per
benchmark, per-benchmark IPC as the harmonic mean across checkpoints, and
speedups against the matching baseline runs.

Execution is delegated to the shared
:class:`~repro.harness.sweep.SweepEngine`: runners constructed with the
default core configuration share one process-wide engine, so traces are
interpreted at most once per machine (via the persistent trace store) and
identical cells — the same benchmark, window, seed and mechanism
*settings*, regardless of preset name — are simulated exactly once per
process no matter how many runners ask for them.  Cells are deterministic
and run on fresh pipelines, so memoised results are bit-identical to
reruns.

Sweeps can still fan out over worker processes (``run(..., workers=N)``):
cells are distributed at benchmark granularity and merged back in task
order, so results are byte-identical to a sequential sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import env as api_env
from repro.harness.reporting import harmonic_mean
from repro.harness.sweep import SweepEngine, shared_engine
from repro.pipeline.config import CoreConfig, MechanismConfig
from repro.pipeline.simulator import SimulationResult
from repro.pipeline.stats import Stats
from repro.sampling import SamplingConfig
from repro.workloads.spec2006 import benchmark_names


def default_seeds() -> list[int]:
    """Deprecated: use :func:`repro.api.env.seeds_from_env` (or better,
    :class:`repro.api.ExperimentSpec`'s ``seeds`` field)."""
    api_env.deprecated(
        "repro.harness.runner.default_seeds",
        "repro.api.env.seeds_from_env",
    )
    return api_env.seeds_from_env()


@dataclass
class BenchmarkOutcome:
    """All runs of one (benchmark, mechanism) cell."""

    benchmark: str
    mechanism: str
    results: list[SimulationResult] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        return harmonic_mean(result.ipc for result in self.results)

    def stat_sum(self, name: str) -> int:
        return sum(getattr(result.stats, name) for result in self.results)

    def stat_fraction(self, name: str) -> float:
        committed = self.stat_sum("committed")
        return self.stat_sum(name) / committed if committed else 0.0

    @property
    def merged_stats(self) -> list[Stats]:
        return [result.stats for result in self.results]


class ExperimentRunner:
    """Runs mechanism sweeps and answers speedup queries."""

    def __init__(
        self,
        core_config: CoreConfig | None = None,
        benchmarks: list[str] | None = None,
        seeds: list[int] | None = None,
        warmup: int | None = None,
        measure: int | None = None,
        engine: SweepEngine | None = None,
        sampling: SamplingConfig | None = None,
    ) -> None:
        if engine is not None:
            # Cell keys cover the core fingerprint, so an engine can
            # serve any core config soundly: a differing core gets the
            # engine's cache-sharing variant instead of an error.
            self.engine = engine.variant(core_config)
        else:
            self.engine = shared_engine(core_config)
        self.simulator = self.engine.simulator
        self.benchmarks = benchmarks or benchmark_names()
        self.seeds = seeds or api_env.seeds_from_env()
        # Environment defaults resolve HERE, once: a runner constructed
        # with warmup/measure/sampling of None used to re-read the
        # environment at every run() call, so a mid-process env change
        # could silently split one experiment across two windows.  The
        # resolved values are pinned for the runner's lifetime (the new
        # spec API records them in the result artifact).
        default_warmup, default_measure = api_env.window_from_env()
        self.warmup = default_warmup if warmup is None else warmup
        self.measure = default_measure if measure is None else measure
        self.sampling = (
            api_env.sampling_from_env() if sampling is None else sampling
        )
        self._cells: dict[tuple[str, str], BenchmarkOutcome] = {}

    # ------------------------------------------------------------------

    def run(
        self,
        mechanisms: list[MechanismConfig],
        workers: int | None = None,
    ) -> None:
        """Execute every (benchmark, mechanism, seed) combination.

        With ``workers`` > 1 missing cells fan out over that many
        processes; results are merged deterministically (task order), so
        the cell table is identical to a sequential run.
        """
        swept = self.engine.sweep(
            self.benchmarks, mechanisms,
            seeds=self.seeds, warmup=self.warmup, measure=self.measure,
            workers=workers, sampling=self.sampling,
        )
        for (benchmark, name), results in swept.items():
            if (benchmark, name) in self._cells:
                continue
            self._cells[(benchmark, name)] = BenchmarkOutcome(
                benchmark, name, list(results)
            )

    def run_cell(
        self, benchmark: str, mechanism: MechanismConfig
    ) -> BenchmarkOutcome:
        """Execute (and memoise) one benchmark/mechanism cell."""
        key = (benchmark, mechanism.name)
        cell = self._cells.get(key)
        if cell is not None:
            return cell
        cell = BenchmarkOutcome(benchmark, mechanism.name)
        for seed in self.seeds:
            cell.results.append(
                self.engine.run_cell(
                    benchmark, mechanism,
                    seed=seed, warmup=self.warmup, measure=self.measure,
                    sampling=self.sampling,
                )
            )
        self._cells[key] = cell
        return cell

    # ------------------------------------------------------------------

    def outcome(self, benchmark: str, mechanism_name: str) -> BenchmarkOutcome:
        return self._cells[(benchmark, mechanism_name)]

    def speedup(
        self,
        benchmark: str,
        mechanism_name: str,
        baseline_name: str = "baseline",
    ) -> float:
        """Relative speedup of *mechanism_name* over *baseline_name*."""
        base = self.outcome(benchmark, baseline_name).ipc
        if base <= 0:
            return 0.0
        return self.outcome(benchmark, mechanism_name).ipc / base - 1.0
