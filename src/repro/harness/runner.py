"""Experiment runner: benchmark × mechanism × seed sweeps with aggregation.

Follows the paper's methodology (§V): several checkpoints (seeds) per
benchmark, per-benchmark IPC as the harmonic mean across checkpoints, and
speedups against the matching baseline runs.

Sweeps can optionally fan out over worker processes (``run(...,
workers=N)``): cells are distributed at (benchmark, mechanism)
granularity and merged back in task order, so results are byte-identical
to a sequential sweep — each cell's simulation is deterministic and
independent (workers rebuild their own traces; the functional interpreter
is deterministic, so a trace built in any process is identical).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field

from repro.harness.reporting import harmonic_mean
from repro.pipeline.config import CoreConfig, MechanismConfig
from repro.pipeline.simulator import SimulationResult, Simulator
from repro.pipeline.stats import Stats
from repro.workloads.spec2006 import benchmark_names


def _run_benchmark_task(payload) -> list[list[SimulationResult]]:
    """Worker entry point: run every (mechanism, seed) of one benchmark.

    Top-level function so it pickles under every multiprocessing start
    method.  Tasks are chunked per benchmark so the worker's private
    Simulator builds each (benchmark, seed) trace once and reuses it
    across all mechanisms — matching the sequential path's trace cache.
    """
    core_config, benchmark, mechanisms, seeds, warmup, measure = payload
    simulator = Simulator(core_config)
    return [
        [
            simulator.run_benchmark(
                benchmark, mechanism,
                warmup=warmup, measure=measure, seed=seed,
            )
            for seed in seeds
        ]
        for mechanism in mechanisms
    ]


def default_seeds() -> list[int]:
    """Checkpoint seeds (paper: 10 checkpoints; default here: 1, scalable
    through the REPRO_SEEDS environment variable)."""
    return list(range(1, int(os.environ.get("REPRO_SEEDS", "1")) + 1))


@dataclass
class BenchmarkOutcome:
    """All runs of one (benchmark, mechanism) cell."""

    benchmark: str
    mechanism: str
    results: list[SimulationResult] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        return harmonic_mean(result.ipc for result in self.results)

    def stat_sum(self, name: str) -> int:
        return sum(getattr(result.stats, name) for result in self.results)

    def stat_fraction(self, name: str) -> float:
        committed = self.stat_sum("committed")
        return self.stat_sum(name) / committed if committed else 0.0

    @property
    def merged_stats(self) -> list[Stats]:
        return [result.stats for result in self.results]


class ExperimentRunner:
    """Runs mechanism sweeps and answers speedup queries."""

    def __init__(
        self,
        core_config: CoreConfig | None = None,
        benchmarks: list[str] | None = None,
        seeds: list[int] | None = None,
        warmup: int | None = None,
        measure: int | None = None,
    ) -> None:
        self.simulator = Simulator(core_config)
        self.benchmarks = benchmarks or benchmark_names()
        self.seeds = seeds or default_seeds()
        self.warmup = warmup
        self.measure = measure
        self._cells: dict[tuple[str, str], BenchmarkOutcome] = {}

    # ------------------------------------------------------------------

    def run(
        self,
        mechanisms: list[MechanismConfig],
        workers: int | None = None,
    ) -> None:
        """Execute every (benchmark, mechanism, seed) combination.

        With ``workers`` > 1 the sweep fans out over that many processes;
        results are merged deterministically (task order), so the cell
        table is identical to a sequential run.
        """
        if workers is not None and workers > 1:
            self._run_parallel(mechanisms, workers)
            return
        for benchmark in self.benchmarks:
            for mechanism in mechanisms:
                self.run_cell(benchmark, mechanism)

    def _run_parallel(
        self, mechanisms: list[MechanismConfig], workers: int
    ) -> None:
        """Fan the un-memoised cells out over a process pool.

        Chunked per benchmark: one task covers every requested mechanism
        of that benchmark, so each worker interprets a benchmark's trace
        once rather than once per mechanism.
        """
        tasks = []
        task_mechanisms = []
        core_config = self.simulator.core_config
        for benchmark in self.benchmarks:
            todo = [
                mechanism for mechanism in mechanisms
                if (benchmark, mechanism.name) not in self._cells
            ]
            if not todo:
                continue
            task_mechanisms.append((benchmark, todo))
            tasks.append((
                core_config, benchmark, todo,
                list(self.seeds), self.warmup, self.measure,
            ))
        if not tasks:
            return
        with multiprocessing.Pool(processes=min(workers, len(tasks))) as pool:
            benchmark_results = pool.map(_run_benchmark_task, tasks)
        # pool.map preserves task order: the merge is deterministic.
        for (benchmark, todo), per_mechanism in zip(
                task_mechanisms, benchmark_results):
            for mechanism, results in zip(todo, per_mechanism):
                cell = BenchmarkOutcome(benchmark, mechanism.name)
                cell.results.extend(results)
                self._cells[(benchmark, mechanism.name)] = cell

    def run_cell(
        self, benchmark: str, mechanism: MechanismConfig
    ) -> BenchmarkOutcome:
        """Execute (and memoise) one benchmark/mechanism cell."""
        key = (benchmark, mechanism.name)
        cell = self._cells.get(key)
        if cell is not None:
            return cell
        cell = BenchmarkOutcome(benchmark, mechanism.name)
        for seed in self.seeds:
            cell.results.append(
                self.simulator.run_benchmark(
                    benchmark,
                    mechanism,
                    warmup=self.warmup,
                    measure=self.measure,
                    seed=seed,
                )
            )
        self._cells[key] = cell
        return cell

    # ------------------------------------------------------------------

    def outcome(self, benchmark: str, mechanism_name: str) -> BenchmarkOutcome:
        return self._cells[(benchmark, mechanism_name)]

    def speedup(
        self,
        benchmark: str,
        mechanism_name: str,
        baseline_name: str = "baseline",
    ) -> float:
        """Relative speedup of *mechanism_name* over *baseline_name*."""
        base = self.outcome(benchmark, baseline_name).ipc
        if base <= 0:
            return 0.0
        return self.outcome(benchmark, mechanism_name).ipc / base - 1.0
