"""Experiment runner: benchmark × mechanism × seed sweeps with aggregation.

Follows the paper's methodology (§V): several checkpoints (seeds) per
benchmark, per-benchmark IPC as the harmonic mean across checkpoints, and
speedups against the matching baseline runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.harness.reporting import harmonic_mean
from repro.pipeline.config import CoreConfig, MechanismConfig
from repro.pipeline.simulator import SimulationResult, Simulator
from repro.pipeline.stats import Stats
from repro.workloads.spec2006 import benchmark_names


def default_seeds() -> list[int]:
    """Checkpoint seeds (paper: 10 checkpoints; default here: 1, scalable
    through the REPRO_SEEDS environment variable)."""
    return list(range(1, int(os.environ.get("REPRO_SEEDS", "1")) + 1))


@dataclass
class BenchmarkOutcome:
    """All runs of one (benchmark, mechanism) cell."""

    benchmark: str
    mechanism: str
    results: list[SimulationResult] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        return harmonic_mean(result.ipc for result in self.results)

    def stat_sum(self, name: str) -> int:
        return sum(getattr(result.stats, name) for result in self.results)

    def stat_fraction(self, name: str) -> float:
        committed = self.stat_sum("committed")
        return self.stat_sum(name) / committed if committed else 0.0

    @property
    def merged_stats(self) -> list[Stats]:
        return [result.stats for result in self.results]


class ExperimentRunner:
    """Runs mechanism sweeps and answers speedup queries."""

    def __init__(
        self,
        core_config: CoreConfig | None = None,
        benchmarks: list[str] | None = None,
        seeds: list[int] | None = None,
        warmup: int | None = None,
        measure: int | None = None,
    ) -> None:
        self.simulator = Simulator(core_config)
        self.benchmarks = benchmarks or benchmark_names()
        self.seeds = seeds or default_seeds()
        self.warmup = warmup
        self.measure = measure
        self._cells: dict[tuple[str, str], BenchmarkOutcome] = {}

    # ------------------------------------------------------------------

    def run(self, mechanisms: list[MechanismConfig]) -> None:
        """Execute every (benchmark, mechanism, seed) combination."""
        for benchmark in self.benchmarks:
            for mechanism in mechanisms:
                self.run_cell(benchmark, mechanism)

    def run_cell(
        self, benchmark: str, mechanism: MechanismConfig
    ) -> BenchmarkOutcome:
        """Execute (and memoise) one benchmark/mechanism cell."""
        key = (benchmark, mechanism.name)
        cell = self._cells.get(key)
        if cell is not None:
            return cell
        cell = BenchmarkOutcome(benchmark, mechanism.name)
        for seed in self.seeds:
            cell.results.append(
                self.simulator.run_benchmark(
                    benchmark,
                    mechanism,
                    warmup=self.warmup,
                    measure=self.measure,
                    seed=seed,
                )
            )
        self._cells[key] = cell
        return cell

    # ------------------------------------------------------------------

    def outcome(self, benchmark: str, mechanism_name: str) -> BenchmarkOutcome:
        return self._cells[(benchmark, mechanism_name)]

    def speedup(
        self,
        benchmark: str,
        mechanism_name: str,
        baseline_name: str = "baseline",
    ) -> float:
        """Relative speedup of *mechanism_name* over *baseline_name*."""
        base = self.outcome(benchmark, baseline_name).ipc
        if base <= 0:
            return 0.0
        return self.outcome(benchmark, mechanism_name).ipc / base - 1.0
