"""Commit-time redundancy analysis — the measurements behind Fig. 1.

For each committed instruction the paper asks two questions (§III/§IV):

* is the result zero (and the instruction not a decode-visible zero idiom)?
* is the result *already in the physical register file* at commit time?

This is a purely functional analysis over the trace.  PRF occupancy is
modelled as the architectural values plus the results of the most recent
``inflight_window`` committed producers — the registers a 192-entry-ROB
machine with 235+235 physical registers would still hold live.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.isa.instruction import DynInst
from repro.isa.registers import NUM_ARCH_REGS
from repro.workloads.trace import Trace


@dataclass
class RedundancyProfile:
    """Fig. 1's four bar segments for one benchmark, plus denominators."""

    benchmark: str
    committed: int = 0
    producers: int = 0
    zero_load: int = 0
    zero_other: int = 0
    in_prf_load: int = 0
    in_prf_other: int = 0
    zero_idioms: int = 0
    extra: dict = field(default_factory=dict)

    def fraction(self, count: int) -> float:
        return count / self.committed if self.committed else 0.0

    @property
    def zero_fraction(self) -> float:
        return self.fraction(self.zero_load + self.zero_other)

    @property
    def in_prf_fraction(self) -> float:
        return self.fraction(self.in_prf_load + self.in_prf_other)

    @property
    def total_redundant_fraction(self) -> float:
        return self.fraction(
            self.zero_load + self.zero_other
            + self.in_prf_load + self.in_prf_other
        )


class LivePrfModel:
    """Multiset of values the PRF would hold at commit time."""

    def __init__(self, inflight_window: int = 140) -> None:
        self._arch_values = [0] * NUM_ARCH_REGS
        self._window: deque[int] = deque()
        self._window_limit = inflight_window
        self._counts: dict[int, int] = {0: NUM_ARCH_REGS}

    def _add(self, value: int) -> None:
        self._counts[value] = self._counts.get(value, 0) + 1

    def _remove(self, value: int) -> None:
        remaining = self._counts[value] - 1
        if remaining:
            self._counts[value] = remaining
        else:
            del self._counts[value]

    def contains(self, value: int) -> bool:
        return value in self._counts

    def commit(self, dest: int, value: int) -> None:
        """Record one committed result."""
        self._window.append(value)
        self._add(value)
        if len(self._window) > self._window_limit:
            self._remove(self._window.popleft())
        self._remove(self._arch_values[dest])
        self._arch_values[dest] = value
        self._add(value)


def analyze_trace(trace: Trace, inflight_window: int = 140) -> RedundancyProfile:
    """Compute the Fig. 1 profile for one trace."""
    profile = RedundancyProfile(trace.name)
    prf = LivePrfModel(inflight_window)
    for instruction in trace:
        profile.committed += 1
        if not instruction.produces_result():
            continue
        profile.producers += 1
        if instruction.zero_idiom:
            profile.zero_idioms += 1
            prf.commit(instruction.dest, instruction.result)
            continue
        value = instruction.result
        if value == 0:
            if instruction.is_load:
                profile.zero_load += 1
            else:
                profile.zero_other += 1
        elif prf.contains(value):
            if instruction.is_load:
                profile.in_prf_load += 1
            else:
                profile.in_prf_other += 1
        prf.commit(instruction.dest, instruction.result)
    return profile


def analyze_benchmark(
    name: str,
    instructions: int = 30000,
    seed: int = 1,
    inflight_window: int = 140,
) -> RedundancyProfile:
    """Generate a trace for *name* and analyse it."""
    from repro.workloads.spec2006 import generate_trace

    return analyze_trace(
        generate_trace(name, instructions, seed), inflight_window
    )
