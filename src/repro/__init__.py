"""repro — reproduction of "Register Sharing for Equality Prediction".

Perais, Endo, Seznec — MICRO 2016.

The package implements the paper's contribution (RSEP: distance-predicted
register-equality speculation through rename-stage physical register
sharing) together with every substrate it is evaluated on: an 8-wide
out-of-order timing model per Table I, a TAGE front end, a three-level
cache hierarchy with prefetchers and DRAM, register renaming with ISRB
reference counting, D-VTAGE value prediction, and synthetic SPEC CPU2006
stand-in workloads.

Quick start::

    from repro import Simulator, MechanismConfig

    sim = Simulator()
    base = sim.run_benchmark("mcf", MechanismConfig.baseline())
    rsep = sim.run_benchmark("mcf", MechanismConfig.rsep_ideal())
    print(f"speedup: {rsep.ipc / base.ipc - 1.0:+.1%}")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.core.rsep import RsepConfig, RsepUnit
from repro.core.validation import ValidationMode
from repro.core.vp_engine import VpConfig, VpEngine
from repro.harness.sweep import SweepEngine, shared_engine
from repro.pipeline.config import CoreConfig, MechanismConfig
from repro.pipeline.core import Pipeline
from repro.pipeline.simulator import SimulationResult, Simulator
from repro.pipeline.stats import Stats
from repro.predictors.distance import (
    DistancePredictor,
    DistancePredictorConfig,
)
from repro.predictors.dvtage import DVtageConfig, DVtagePredictor
from repro.sampling import SampledRun, SamplingConfig
from repro.workloads.spec2006 import benchmark_names, generate_trace

# The typed front door (DESIGN.md §10).  Imported last: repro.api builds
# on the harness/pipeline modules above.
from repro.api import (  # noqa: E402
    ExperimentSpec,
    RunResult,
    Session,
    StoreSpec,
    WindowSpec,
)

__version__ = "1.1.0"

__all__ = [
    "CoreConfig",
    "DVtageConfig",
    "DVtagePredictor",
    "DistancePredictor",
    "DistancePredictorConfig",
    "ExperimentSpec",
    "MechanismConfig",
    "Pipeline",
    "RsepConfig",
    "RsepUnit",
    "RunResult",
    "SampledRun",
    "SamplingConfig",
    "Session",
    "SimulationResult",
    "Simulator",
    "Stats",
    "StoreSpec",
    "SweepEngine",
    "ValidationMode",
    "VpConfig",
    "VpEngine",
    "WindowSpec",
    "__version__",
    "benchmark_names",
    "generate_trace",
    "shared_engine",
]
