"""TAGE-like Instruction Distance (IDist) predictor (paper §IV.C).

Predicts, for a static instruction, how many result-producing instructions
back in commit order the most recent producer of the *same result* sits.
Organisation follows the paper exactly:

* a PC-indexed untagged base table (distance + confidence);
* six partially tagged components indexed by PC ⊕ global branch history
  ⊕ path history, each entry holding a distance, a 3-bit probabilistic
  confidence counter, a useful bit and a partial tag;
* prediction only when confidence is saturated (``use_pred``), plus the
  lower ``start_train`` threshold that marks *likely candidates* for the
  sampling scheme of §IV.B.3.

The two paper configurations are provided as presets:
``ideal()`` — 16K-entry base + 6×1K tagged, tags 13..18 bits = 42.6KB;
``realistic()`` — 2K-entry base + 6×512 tagged, tags 5..10 bits = 10.1KB.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.common.history import GlobalHistory, PathHistory
from repro.common.rng import XorShift64
from repro.common.storage import StorageReport
from repro.predictors.confidence import ConfidenceScale, SCALED
from repro.predictors.tagged_table import (
    ComponentGeometry,
    GeometricIndexer,
    UsefulnessMonitor,
    emit_indexing_lines,
    geometric_history_lengths,
)

#: Sentinel stored in distance fields holding no prediction yet.
NO_DISTANCE = 0

#: Process-global table-version source for the fast-predict memo.  Every
#: table write takes a fresh value, so a memoised prediction is reusable
#: iff its (history bits, path bits, table version) tag still matches.
#: Global monotonicity makes versions unique across predictor instances
#: and across checkpoint restores (a restored snapshot can write an old
#: version back; re-stamping with a fresh value makes staleness safe).
_next_table_version = itertools.count(1).__next__


@dataclass(frozen=True)
class DistancePredictorConfig:
    """Geometry and thresholds of the distance predictor."""

    base_log2_entries: int = 14
    tagged_components: int = 6
    tagged_log2_entries: int = 10
    min_tag_bits: int = 13
    max_tag_bits: int = 18
    distance_bits: int = 8
    min_history: int = 2
    max_history: int = 64
    use_pred_threshold: int = 255    # paper scale (0..255)
    start_train_threshold: int = 63  # paper scale; Fig. 6 varies 15/63
    confidence_bits: int = 3

    @classmethod
    def ideal(cls) -> "DistancePredictorConfig":
        """The 42.6KB configuration of §IV.C."""
        return cls()

    @classmethod
    def realistic(cls) -> "DistancePredictorConfig":
        """The 10.1KB configuration of §VI.B."""
        return cls(
            base_log2_entries=11,
            tagged_log2_entries=9,
            min_tag_bits=5,
            max_tag_bits=10,
        )

    @property
    def max_distance(self) -> int:
        return (1 << self.distance_bits) - 1

    def geometries(self) -> list[ComponentGeometry]:
        lengths = geometric_history_lengths(
            self.min_history, self.max_history, self.tagged_components
        )
        tags = [
            self.min_tag_bits
            + round(
                (self.max_tag_bits - self.min_tag_bits)
                * index
                / max(1, self.tagged_components - 1)
            )
            for index in range(self.tagged_components)
        ]
        return [
            ComponentGeometry(self.tagged_log2_entries, tag, length)
            for tag, length in zip(tags, lengths)
        ]


@dataclass(slots=True)
class DistancePrediction:
    """One lookup outcome, retained for commit-time training.

    ``indices``/``tags`` carry the per-component lookup result directly
    (the ``Lookup`` indirection object was flattened away on the hot
    path; real TAGE checkpoints the same data).
    """

    pc: int
    distance: int
    use_pred: bool          # confident enough to speculate
    likely_candidate: bool  # confident enough to train via validation
    provider: int           # component index, -1 = base
    indices: tuple
    tags: tuple
    base_index: int
    confidence_level: int = 0

    def predicted(self) -> bool:
        return self.use_pred and self.distance != NO_DISTANCE


class DistancePredictor:
    """The TAGE-like IDist predictor."""

    def __init__(
        self,
        config: DistancePredictorConfig,
        history: GlobalHistory,
        path: PathHistory,
        rng: XorShift64,
        scale: ConfidenceScale = SCALED,
    ) -> None:
        self.config = config
        self.scale = scale
        self._rng = rng
        self._geometries = config.geometries()
        self._indexer = GeometricIndexer(self._geometries, history, path)
        base_entries = 1 << config.base_log2_entries
        self._base_mask = base_entries - 1
        self._base_distance = [NO_DISTANCE] * base_entries
        self._base_conf = [0] * base_entries
        self._tags = [[-1] * g.entries for g in self._geometries]
        self._distances = [
            [NO_DISTANCE] * g.entries for g in self._geometries
        ]
        self._confs = [[0] * g.entries for g in self._geometries]
        self._useful = [[0] * g.entries for g in self._geometries]
        self._monitor = UsefulnessMonitor()
        self._use_level = scale.level_for_paper_threshold(
            config.use_pred_threshold
        )
        self._train_level = scale.level_for_paper_threshold(
            config.start_train_threshold
        )
        # Statistics.
        self.lookups = 0
        self.confident_predictions = 0
        self._table_version = _next_table_version()
        # Specialised predict: the component loop is unrolled once at
        # construction with all geometry constants and table references
        # embedded (see _build_fast_predict).  `predict` is rebound to it;
        # `predict_reference` keeps the generic path for cross-checking.
        self.predict = self._build_fast_predict()

    # ------------------------------------------------------------------

    def _build_fast_predict(self):
        """Generate an unrolled predict() specialised to this geometry.

        Produces exactly the computation of :meth:`predict_reference`
        (same indexing, provider search and confidence thresholds), with
        the per-component loop flattened and every constant inlined.
        Table lists and folded registers are only ever mutated in place,
        so the embedded references stay valid for the predictor's life.

        A per-PC memo sits in front of the computation: the lookup is a
        pure function of (pc, the history bits every component folds,
        the folded path bits, the table contents), so a cached
        prediction tagged with those inputs is returned verbatim while
        they are unchanged.  Squash-replayed lookups — history restored
        to prior bits, no training in between — hit naturally.  The memo
        lives in the generated closure (never walked by the checkpoint
        capture) and shares the immutable ``DistancePrediction``.
        """
        indexer = self._indexer
        components = indexer._components
        path_bits = indexer._path_bits
        n = len(components)
        history_mask = (
            1 << max(g.history_bits for g in self._geometries)
        ) - 1
        env = {
            "_P": DistancePrediction,
            "_new": DistancePrediction.__new__,
            "_path": indexer.path,
            "_hist": indexer.history,
            "_memo": {},
            "_self": self,
            "_bdist": self._base_distance,
            "_bconf": self._base_conf,
        }
        lines = [
            "def fast_predict(pc):",
            "    _self.lookups += 1",
            f"    path_raw = _path.value & {(1 << path_bits) - 1}",
            f"    hist_tag = _hist._bits & {history_mask}",
            "    version = _self._table_version",
            "    entry = _memo.get(pc)",
            "    if (",
            "        entry is not None",
            "        and entry[0] == hist_tag",
            "        and entry[1] == path_raw",
            "        and entry[2] == version",
            "    ):",
            "        p = entry[3]",
            "        if p.use_pred:",
            "            _self.confident_predictions += 1",
            "        return p",
            "    word = pc >> 2",
        ]
        lines += emit_indexing_lines(components, path_bits, env)
        index_list = ", ".join(f"i{k}" for k in range(n))
        tag_list = ", ".join(f"t{k}" for k in range(n))
        lines += [
            f"    base_index = word & {self._base_mask}",
        ]
        keyword = "if"
        for k in range(n - 1, -1, -1):
            env[f"_tags{k}"] = self._tags[k]
            env[f"_dist{k}"] = self._distances[k]
            env[f"_conf{k}"] = self._confs[k]
            lines += [
                f"    {keyword} _tags{k}[i{k}] == t{k}:",
                f"        provider = {k}",
                f"        distance = _dist{k}[i{k}]",
                f"        confidence = _conf{k}[i{k}]",
            ]
            keyword = "elif"
        lines += [
            "    else:",
            "        provider = -1",
            "        distance = _bdist[base_index]",
            "        confidence = _bconf[base_index]",
            # NO_DISTANCE == 0 is inlined below.
            f"    use_pred = confidence >= {self._use_level}"
            " and distance != 0",
            f"    likely = confidence >= {self._train_level}"
            " and distance != 0",
            "    if use_pred:",
            "        _self.confident_predictions += 1",
            # Prediction construction with the dataclass __init__ call
            # flattened away (slot stores in place; one per field).
            "    p = _new(_P)",
            "    p.pc = pc",
            "    p.distance = distance",
            "    p.use_pred = use_pred",
            "    p.likely_candidate = likely",
            "    p.provider = provider",
            f"    p.indices = ({index_list},)",
            f"    p.tags = ({tag_list},)",
            "    p.base_index = base_index",
            "    p.confidence_level = confidence",
            "    _memo[pc] = (hist_tag, path_raw, version, p)",
            "    return p",
        ]
        exec("\n".join(lines), env)  # noqa: S102 - static template, no input
        return env["fast_predict"]

    def predict_reference(self, pc: int) -> DistancePrediction:
        """Look up the predicted IDist for the instruction at *pc*."""
        self.lookups += 1
        lookup = self._indexer.lookup(pc)
        base_index = (pc >> 2) & self._base_mask
        indices = lookup.indices
        tags = lookup.tags
        component_tags = self._tags

        provider = -1
        for component in range(len(component_tags) - 1, -1, -1):
            if component_tags[component][indices[component]] == tags[component]:
                provider = component
                break

        if provider >= 0:
            index = indices[provider]
            distance = self._distances[provider][index]
            confidence = self._confs[provider][index]
        else:
            distance = self._base_distance[base_index]
            confidence = self._base_conf[base_index]

        use_pred = confidence >= self._use_level and distance != NO_DISTANCE
        likely = confidence >= self._train_level and distance != NO_DISTANCE
        if use_pred:
            self.confident_predictions += 1
        return DistancePrediction(
            pc, distance, use_pred, likely,
            provider, tuple(indices), tuple(tags), base_index, confidence,
        )

    # ------------------------------------------------------------------

    def _entry(self, prediction: DistancePrediction) -> tuple[list, list, int]:
        """(distances, confs, index) for the providing entry."""
        if prediction.provider >= 0:
            index = prediction.indices[prediction.provider]
            return (
                self._distances[prediction.provider],
                self._confs[prediction.provider],
                index,
            )
        return self._base_distance, self._base_conf, prediction.base_index

    def _bump_confidence(self, confs: list[int], index: int) -> None:
        level = confs[index]
        if level < self.scale.levels and self._rng.chance(
            self.scale.probabilities[level]
        ):
            confs[index] = level + 1

    def train_from_pairing(
        self, prediction: DistancePrediction, observed_distance: int | None
    ) -> None:
        """Commit-time training with a distance computed by the FIFO/DDT.

        ``observed_distance`` is None when no matching older hash was found
        (or the distance exceeded the representable range).
        """
        if observed_distance is not None and not (
            0 < observed_distance <= self.config.max_distance
        ):
            observed_distance = None

        self._table_version = _next_table_version()
        distances, confs, index = self._entry(prediction)
        if observed_distance is None:
            # Nothing to learn from: leave the entry alone (the paper keeps
            # entries warm; mispredictions are what reset confidence).
            return
        if distances[index] == observed_distance:
            self._bump_confidence(confs, index)
            if prediction.provider >= 0 and prediction.use_pred:
                self._useful[prediction.provider][index] = 1
        else:
            if confs[index] == 0:
                distances[index] = observed_distance
            else:
                confs[index] = 0
            self._maybe_allocate(prediction, observed_distance)

    def train_from_validation(
        self, prediction: DistancePrediction, was_equal: bool
    ) -> None:
        """Training via the validation path (§IV.B.3, likely candidates).

        The candidate compared its actual result with the register it would
        have shared: a 64-bit equality, no FIFO access needed.
        """
        self._table_version = _next_table_version()
        distances, confs, index = self._entry(prediction)
        if distances[index] != prediction.distance:
            # Entry was reclaimed or retrained since prediction time.
            return
        if was_equal:
            self._bump_confidence(confs, index)
        else:
            confs[index] = 0

    def on_mispredict(self, prediction: DistancePrediction) -> None:
        """A confident prediction failed validation: collapse confidence."""
        self._table_version = _next_table_version()
        distances, confs, index = self._entry(prediction)
        confs[index] = 0
        if prediction.provider >= 0:
            self._useful[prediction.provider][index] = 0

    def _maybe_allocate(
        self, prediction: DistancePrediction, observed_distance: int
    ) -> None:
        """Allocate the observed distance in a longer-history component."""
        start = prediction.provider + 1
        if start >= len(self._geometries):
            return
        candidates = [
            component
            for component in range(start, len(self._geometries))
            if self._useful[component][prediction.indices[component]] == 0
        ]
        if not candidates:
            for component in range(start, len(self._geometries)):
                self._useful[component][prediction.indices[component]] = 0
            if self._monitor.on_allocation_failure():
                pass  # useful bits are single-bit: cleared above already
            return
        if len(candidates) > 1 and not self._rng.chance(2 / 3):
            chosen = self._rng.choice(candidates[1:])
        else:
            chosen = candidates[0]
        index = prediction.indices[chosen]
        self._tags[chosen][index] = prediction.tags[chosen]
        self._distances[chosen][index] = observed_distance
        self._confs[chosen][index] = 0
        self._useful[chosen][index] = 0

    # ------------------------------------------------------------------

    def invalidate_prediction_memo(self) -> None:
        """Re-stamp the table version after an out-of-band table write.

        Trainers re-stamp themselves; this hook is for writers that
        bypass them — the µarch-checkpoint restore walks table lists
        element-wise (and writes a captured, possibly reused, version
        value back), so it must re-stamp with a globally fresh value.
        """
        self._table_version = _next_table_version()

    def storage_report(self) -> StorageReport:
        """Itemised storage; reproduces the 42.6KB / 10.1KB numbers."""
        config = self.config
        report = StorageReport("distance predictor")
        report.add_entries(
            "base (distance + confidence)",
            1 << config.base_log2_entries,
            config.distance_bits + config.confidence_bits,
        )
        for number, geometry in enumerate(self._geometries, start=1):
            bits = (
                config.distance_bits
                + config.confidence_bits
                + 1  # useful bit
                + geometry.tag_bits
            )
            report.add_entries(
                f"tagged component {number} "
                f"(tag {geometry.tag_bits}, hist {geometry.history_bits})",
                geometry.entries,
                bits,
            )
        return report
