"""Prediction structures: distance, value, zero, and shared TAGE machinery."""

from repro.predictors.confidence import (
    PAPER,
    PAPER_SATURATION,
    SCALED,
    ConfidenceScale,
)
from repro.predictors.distance import (
    NO_DISTANCE,
    DistancePrediction,
    DistancePredictor,
    DistancePredictorConfig,
)
from repro.predictors.dvtage import (
    DVtageConfig,
    DVtagePredictor,
    ValuePrediction,
)
from repro.predictors.gshare_distance import (
    GshareDistanceConfig,
    GshareDistancePredictor,
)
from repro.predictors.tagged_table import (
    ComponentGeometry,
    GeometricIndexer,
    Lookup,
    UsefulnessMonitor,
    geometric_history_lengths,
)
from repro.predictors.zero import ZeroPredictor, ZeroPrediction

__all__ = [
    "PAPER",
    "PAPER_SATURATION",
    "SCALED",
    "ComponentGeometry",
    "ConfidenceScale",
    "DVtageConfig",
    "DVtagePredictor",
    "DistancePrediction",
    "DistancePredictor",
    "DistancePredictorConfig",
    "GeometricIndexer",
    "GshareDistanceConfig",
    "GshareDistancePredictor",
    "Lookup",
    "NO_DISTANCE",
    "UsefulnessMonitor",
    "ValuePrediction",
    "ZeroPredictor",
    "ZeroPrediction",
    "geometric_history_lengths",
]
