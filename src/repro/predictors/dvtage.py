"""D-VTAGE value predictor (Perais & Seznec [6], used as the paper's VP).

Differential VTAGE: the base table tracks the *last value* (and a stride)
per static instruction; tagged components, indexed by PC and geometric
global-history slices, track *strides*.  The prediction is
``last_value + stride`` from the longest matching component.  Prediction is
gated on saturated probabilistic confidence, and validation happens at
commit with a full squash on misprediction — the same recovery policy as
RSEP, which is what makes the two mechanisms comparable in Fig. 4.

The default geometry is scaled from the ~256KB configuration of [6]
proportionally to our smaller static-instruction working sets; the storage
report reflects the modelled entry counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitops import mask64
from repro.common.history import GlobalHistory, PathHistory
from repro.common.rng import XorShift64
from repro.common.storage import StorageReport
from repro.predictors.confidence import ConfidenceScale, SCALED
from repro.predictors.tagged_table import (
    ComponentGeometry,
    GeometricIndexer,
    emit_indexing_lines,
    geometric_history_lengths,
)


@dataclass(frozen=True)
class DVtageConfig:
    """Geometry of the D-VTAGE predictor."""

    base_log2_entries: int = 13       # 8K-entry last-value table
    tagged_components: int = 6
    tagged_log2_entries: int = 10     # 1K entries each
    min_tag_bits: int = 12
    max_tag_bits: int = 15
    stride_bits: int = 64             # modelled; [6] banks full values
    min_history: int = 2
    max_history: int = 64
    use_pred_threshold: int = 255
    confidence_bits: int = 3

    def geometries(self) -> list[ComponentGeometry]:
        lengths = geometric_history_lengths(
            self.min_history, self.max_history, self.tagged_components
        )
        tags = [
            self.min_tag_bits
            + round(
                (self.max_tag_bits - self.min_tag_bits)
                * index
                / max(1, self.tagged_components - 1)
            )
            for index in range(self.tagged_components)
        ]
        return [
            ComponentGeometry(self.tagged_log2_entries, tag, length)
            for tag, length in zip(tags, lengths)
        ]


@dataclass(slots=True)
class ValuePrediction:
    """One D-VTAGE lookup, retained for commit-time training.

    ``indices``/``tags`` carry the per-component lookup result directly
    (no ``Lookup`` indirection on the hot path).
    """

    pc: int
    value: int
    use_pred: bool
    provider: int            # -1 = base stride
    indices: tuple
    tags: tuple
    base_index: int
    last_value_valid: bool
    inflight_rank: int = 0   # older same-PC instances in flight at lookup

    def predicted(self) -> bool:
        return self.use_pred and self.last_value_valid


class DVtagePredictor:
    """The D-VTAGE value predictor."""

    def __init__(
        self,
        config: DVtageConfig,
        history: GlobalHistory,
        path: PathHistory,
        rng: XorShift64,
        scale: ConfidenceScale = SCALED,
    ) -> None:
        self.config = config
        self.scale = scale
        self._rng = rng
        self._geometries = config.geometries()
        self._indexer = GeometricIndexer(self._geometries, history, path)
        base_entries = 1 << config.base_log2_entries
        self._base_mask = base_entries - 1
        self._base_valid = [False] * base_entries
        self._base_last = [0] * base_entries
        self._base_stride = [0] * base_entries
        self._base_conf = [0] * base_entries
        self._tags = [[-1] * g.entries for g in self._geometries]
        self._strides = [[0] * g.entries for g in self._geometries]
        self._confs = [[0] * g.entries for g in self._geometries]
        self._useful = [[0] * g.entries for g in self._geometries]
        self._use_level = scale.level_for_paper_threshold(
            config.use_pred_threshold
        )
        # Speculative last-value tracking ([6]): number of in-flight
        # (predicted-at-rename, not yet trained) instances per base entry.
        # The k-th in-flight instance of a strided instruction must be
        # predicted last_value + (k+1)*stride, not last_value + stride.
        self._inflight: dict[int, int] = {}
        self.lookups = 0
        self.confident_predictions = 0
        # Specialised predict, mirroring DistancePredictor: the component
        # loop is unrolled once at construction with all geometry
        # constants and table references embedded.  `predict` is rebound;
        # `predict_reference` keeps the generic path for cross-checking.
        self.predict = self._build_fast_predict()

    # ------------------------------------------------------------------

    def _build_fast_predict(self):
        """Generate an unrolled predict() specialised to this geometry.

        Produces exactly the computation of :meth:`predict_reference`
        (same indexing, provider search, speculative in-flight rank and
        confidence threshold), with the per-component loop flattened and
        every constant inlined.  Table lists, folded registers and the
        in-flight dict are only ever mutated in place, so the embedded
        references stay valid for the predictor's life.
        """
        indexer = self._indexer
        components = indexer._components
        path_bits = indexer._path_bits
        n = len(components)
        env = {
            "ValuePrediction": ValuePrediction,
            "_path": indexer.path,
            "_self": self,
            "_bvalid": self._base_valid,
            "_blast": self._base_last,
            "_bstride": self._base_stride,
            "_bconf": self._base_conf,
            "_inflight": self._inflight,
        }
        lines = [
            "def fast_predict(pc):",
            "    _self.lookups += 1",
            f"    path_raw = _path.value & {(1 << path_bits) - 1}",
            "    word = pc >> 2",
        ]
        lines += emit_indexing_lines(components, path_bits, env)
        index_list = ", ".join(f"i{k}" for k in range(n))
        tag_list = ", ".join(f"t{k}" for k in range(n))
        lines += [
            f"    base_index = word & {self._base_mask}",
        ]
        keyword = "if"
        for k in range(n - 1, -1, -1):
            env[f"_tags{k}"] = self._tags[k]
            env[f"_strides{k}"] = self._strides[k]
            env[f"_confs{k}"] = self._confs[k]
            lines += [
                f"    {keyword} _tags{k}[i{k}] == t{k}:",
                f"        provider = {k}",
                f"        stride = _strides{k}[i{k}]",
                f"        confidence = _confs{k}[i{k}]",
            ]
            keyword = "elif"
        lines += [
            "    else:",
            "        provider = -1",
            "        stride = _bstride[base_index]",
            "        confidence = _bconf[base_index]",
            "    last_valid = _bvalid[base_index]",
            "    inflight_rank = _inflight.get(base_index, 0)",
            "    value = (_blast[base_index] + stride * (inflight_rank + 1))"
            f" & {(1 << 64) - 1}",
            f"    use_pred = confidence >= {self._use_level} and last_valid",
            "    if use_pred:",
            "        _self.confident_predictions += 1",
            "    _inflight[base_index] = inflight_rank + 1",
            "    return ValuePrediction(pc, value, use_pred, provider,"
            f" ({index_list},), ({tag_list},),"
            " base_index, last_valid, inflight_rank)",
        ]
        exec("\n".join(lines), env)  # noqa: S102 - static template, no input
        return env["fast_predict"]

    def predict_reference(self, pc: int) -> ValuePrediction:
        """Predict the result of the instruction at *pc*."""
        self.lookups += 1
        lookup = self._indexer.lookup(pc)
        base_index = (pc >> 2) & self._base_mask

        provider = -1
        for component in range(len(self._geometries) - 1, -1, -1):
            if self._tags[component][lookup.indices[component]] == lookup.tags[
                component
            ]:
                provider = component
                break

        last_valid = self._base_valid[base_index]
        last_value = self._base_last[base_index]
        if provider >= 0:
            index = lookup.indices[provider]
            stride = self._strides[provider][index]
            confidence = self._confs[provider][index]
        else:
            stride = self._base_stride[base_index]
            confidence = self._base_conf[base_index]

        inflight_rank = self._inflight.get(base_index, 0)
        value = mask64(last_value + stride * (inflight_rank + 1))
        use_pred = confidence >= self._use_level and last_valid
        if use_pred:
            self.confident_predictions += 1
        self._inflight[base_index] = inflight_rank + 1
        return ValuePrediction(
            pc=pc,
            value=value,
            use_pred=use_pred,
            provider=provider,
            indices=tuple(lookup.indices),
            tags=tuple(lookup.tags),
            base_index=base_index,
            last_value_valid=last_valid,
            inflight_rank=inflight_rank,
        )

    # ------------------------------------------------------------------

    def _provider_entry(self, prediction: ValuePrediction):
        if prediction.provider >= 0:
            index = prediction.indices[prediction.provider]
            return (
                self._strides[prediction.provider],
                self._confs[prediction.provider],
                index,
            )
        return self._base_stride, self._base_conf, prediction.base_index

    def _bump_confidence(self, confs: list[int], index: int) -> None:
        level = confs[index]
        if level < self.scale.levels and self._rng.chance(
            self.scale.probabilities[level]
        ):
            confs[index] = level + 1

    def release(self, prediction: ValuePrediction) -> None:
        """Drop the in-flight occurrence of a squashed prediction."""
        count = self._inflight.get(prediction.base_index, 0)
        if count > 1:
            self._inflight[prediction.base_index] = count - 1
        else:
            self._inflight.pop(prediction.base_index, None)

    def train(self, prediction: ValuePrediction, actual: int) -> None:
        """Commit-time training with the architectural result."""
        self.release(prediction)
        base_index = prediction.base_index
        observed_stride = mask64(actual - self._base_last[base_index])
        strides, confs, index = self._provider_entry(prediction)

        if self._base_valid[base_index]:
            if strides[index] == observed_stride:
                self._bump_confidence(confs, index)
                if prediction.provider >= 0 and prediction.use_pred:
                    self._useful[prediction.provider][index] = 1
            else:
                if confs[index] == 0:
                    strides[index] = observed_stride
                else:
                    confs[index] = 0
                self._maybe_allocate(prediction, observed_stride)

        self._base_valid[base_index] = True
        self._base_last[base_index] = actual

    def on_mispredict(self, prediction: ValuePrediction) -> None:
        """A confident prediction failed validation: collapse confidence."""
        strides, confs, index = self._provider_entry(prediction)
        confs[index] = 0
        if prediction.provider >= 0:
            self._useful[prediction.provider][index] = 0

    def _maybe_allocate(
        self, prediction: ValuePrediction, observed_stride: int
    ) -> None:
        start = prediction.provider + 1
        if start >= len(self._geometries):
            return
        candidates = [
            component
            for component in range(start, len(self._geometries))
            if self._useful[component][prediction.indices[component]] == 0
        ]
        if not candidates:
            for component in range(start, len(self._geometries)):
                self._useful[component][prediction.indices[component]] = 0
            return
        if len(candidates) > 1 and not self._rng.chance(2 / 3):
            chosen = self._rng.choice(candidates[1:])
        else:
            chosen = candidates[0]
        index = prediction.indices[chosen]
        self._tags[chosen][index] = prediction.tags[chosen]
        self._strides[chosen][index] = observed_stride
        self._confs[chosen][index] = 0
        self._useful[chosen][index] = 0

    # ------------------------------------------------------------------

    def storage_report(self) -> StorageReport:
        config = self.config
        report = StorageReport("D-VTAGE value predictor")
        report.add_entries(
            "base (last value + stride + confidence)",
            1 << config.base_log2_entries,
            64 + config.stride_bits + config.confidence_bits + 1,
        )
        for number, geometry in enumerate(self._geometries, start=1):
            bits = (
                config.stride_bits
                + config.confidence_bits
                + 1
                + geometry.tag_bits
            )
            report.add_entries(
                f"tagged component {number} "
                f"(tag {geometry.tag_bits}, hist {geometry.history_bits})",
                geometry.entries,
                bits,
            )
        return report
