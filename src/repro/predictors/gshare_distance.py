"""gshare-like distance predictor (Sha et al. [10], §II.C baseline).

Two tables: a direct-mapped PC-indexed table, and a table indexed by the
PC hashed with global branch history.  The history-indexed table provides
the prediction when confident, otherwise the PC-indexed table does.  Perais
& Seznec showed the TAGE-like predictor outperforms this scheme ([11]);
the ablation bench reproduces that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitops import fold_bits
from repro.common.history import GlobalHistory
from repro.common.rng import XorShift64
from repro.common.storage import StorageReport
from repro.predictors.confidence import ConfidenceScale, SCALED
from repro.predictors.distance import NO_DISTANCE, DistancePrediction


@dataclass(frozen=True)
class GshareDistanceConfig:
    """Geometry of the two-table gshare-like distance predictor."""

    log2_entries: int = 12
    history_bits: int = 12
    distance_bits: int = 8
    use_pred_threshold: int = 255
    start_train_threshold: int = 63

    @property
    def max_distance(self) -> int:
        return (1 << self.distance_bits) - 1


class GshareDistancePredictor:
    """Drop-in alternative to :class:`DistancePredictor`.

    Emits the same :class:`DistancePrediction` records (``provider`` 0 means
    the history-hashed table, -1 the PC-indexed table) so the RSEP unit can
    drive either predictor.
    """

    def __init__(
        self,
        config: GshareDistanceConfig,
        history: GlobalHistory,
        rng: XorShift64,
        scale: ConfidenceScale = SCALED,
    ) -> None:
        self.config = config
        self.scale = scale
        self._rng = rng
        self._history = history
        entries = 1 << config.log2_entries
        self._mask = entries - 1
        self._pc_distance = [NO_DISTANCE] * entries
        self._pc_conf = [0] * entries
        self._gh_distance = [NO_DISTANCE] * entries
        self._gh_conf = [0] * entries
        self._use_level = scale.level_for_paper_threshold(
            config.use_pred_threshold
        )
        self._train_level = scale.level_for_paper_threshold(
            config.start_train_threshold
        )
        self.lookups = 0
        self.confident_predictions = 0

    # ------------------------------------------------------------------

    def _indices(self, pc: int) -> tuple[int, int]:
        word = pc >> 2
        pc_index = word & self._mask
        history = self._history.raw(self.config.history_bits)
        gh_index = (
            word ^ fold_bits(history, self.config.history_bits,
                             self.config.log2_entries)
        ) & self._mask
        return pc_index, gh_index

    def predict(self, pc: int) -> DistancePrediction:
        self.lookups += 1
        pc_index, gh_index = self._indices(pc)
        # Prefer the history-indexed table when it is confident.
        if (
            self._gh_conf[gh_index] >= self._use_level
            and self._gh_distance[gh_index] != NO_DISTANCE
        ):
            distance = self._gh_distance[gh_index]
            confidence = self._gh_conf[gh_index]
            provider = 0
        else:
            distance = self._pc_distance[pc_index]
            confidence = self._pc_conf[pc_index]
            provider = -1
        use_pred = confidence >= self._use_level and distance != NO_DISTANCE
        likely = confidence >= self._train_level and distance != NO_DISTANCE
        if use_pred:
            self.confident_predictions += 1
        return DistancePrediction(
            pc=pc,
            distance=distance,
            use_pred=use_pred,
            likely_candidate=likely,
            provider=provider,
            indices=(gh_index,),
            tags=(0,),
            base_index=pc_index,
            confidence_level=confidence,
        )

    # ------------------------------------------------------------------

    def _bump(self, confs: list[int], index: int) -> None:
        level = confs[index]
        if level < self.scale.levels and self._rng.chance(
            self.scale.probabilities[level]
        ):
            confs[index] = level + 1

    def _train_table(
        self,
        distances: list[int],
        confs: list[int],
        index: int,
        observed: int,
    ) -> None:
        if distances[index] == observed:
            self._bump(confs, index)
        elif confs[index] == 0:
            distances[index] = observed
        else:
            confs[index] = 0

    def train_from_pairing(
        self, prediction: DistancePrediction, observed_distance: int | None
    ) -> None:
        """Commit-time training; both tables train in parallel ([10])."""
        if observed_distance is None or not (
            0 < observed_distance <= self.config.max_distance
        ):
            return
        pc_index = prediction.base_index
        gh_index = prediction.indices[0]
        self._train_table(
            self._pc_distance, self._pc_conf, pc_index, observed_distance
        )
        self._train_table(
            self._gh_distance, self._gh_conf, gh_index, observed_distance
        )

    def train_from_validation(
        self, prediction: DistancePrediction, was_equal: bool
    ) -> None:
        pc_index = prediction.base_index
        gh_index = prediction.indices[0]
        if was_equal:
            if self._pc_distance[pc_index] == prediction.distance:
                self._bump(self._pc_conf, pc_index)
            if self._gh_distance[gh_index] == prediction.distance:
                self._bump(self._gh_conf, gh_index)
        else:
            if prediction.provider == 0:
                self._gh_conf[gh_index] = 0
            else:
                self._pc_conf[pc_index] = 0

    def on_mispredict(self, prediction: DistancePrediction) -> None:
        # Both tables trained toward this distance in parallel; a failed
        # validation must silence both or the sibling table immediately
        # re-predicts the same wrong distance.
        self._gh_conf[prediction.indices[0]] = 0
        self._pc_conf[prediction.base_index] = 0

    def storage_report(self) -> StorageReport:
        config = self.config
        report = StorageReport("gshare distance predictor")
        bits = config.distance_bits + 3
        report.add_entries("PC-indexed table", 1 << config.log2_entries, bits)
        report.add_entries(
            "history-indexed table", 1 << config.log2_entries, bits
        )
        return report
