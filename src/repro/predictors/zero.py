"""Zero predictor (paper §III.b).

Zero-idiom elimination is non-speculative; the zero *predictor* goes
further: a PC-indexed confidence table marks instructions that reliably
produce 0, so their destination can be renamed to the hardwired zero
register.  The instruction still executes to validate the prediction;
sharing is trivial (the zero register is never allocated or freed).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import XorShift64
from repro.common.storage import StorageReport
from repro.predictors.confidence import ConfidenceScale, SCALED


@dataclass(slots=True)
class ZeroPrediction:
    """One lookup outcome, retained for commit-time training."""

    pc: int
    index: int
    use_pred: bool


class ZeroPredictor:
    """Direct-mapped table of probabilistic confidence counters."""

    def __init__(
        self,
        log2_entries: int = 12,
        rng: XorShift64 | None = None,
        scale: ConfidenceScale = SCALED,
    ) -> None:
        self.scale = scale
        self._rng = rng if rng is not None else XorShift64()
        entries = 1 << log2_entries
        self._mask = entries - 1
        self._conf = [0] * entries
        self._use_level = scale.saturated_level
        self.lookups = 0
        self.confident_predictions = 0

    def predict(self, pc: int) -> ZeroPrediction:
        """Predict whether the instruction at *pc* produces 0."""
        self.lookups += 1
        index = (pc >> 2) & self._mask
        use_pred = self._conf[index] >= self._use_level
        if use_pred:
            self.confident_predictions += 1
        return ZeroPrediction(pc=pc, index=index, use_pred=use_pred)

    def train(self, prediction: ZeroPrediction, actual_is_zero: bool) -> None:
        """Commit-time training with the actual outcome."""
        index = prediction.index
        if actual_is_zero:
            level = self._conf[index]
            if level < self.scale.levels and self._rng.chance(
                self.scale.probabilities[level]
            ):
                self._conf[index] = level + 1
        else:
            self._conf[index] = 0

    def on_mispredict(self, prediction: ZeroPrediction) -> None:
        self._conf[prediction.index] = 0

    def storage_report(self) -> StorageReport:
        report = StorageReport("zero predictor")
        report.add_entries(
            "confidence table", len(self._conf), 3
        )
        return report
