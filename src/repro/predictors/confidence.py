"""Confidence scaling shared by all prediction mechanisms.

The paper predicts only at very high confidence: probabilistic 3-bit
counters emulating an 8-bit counter that saturates at ~255 occurrences
(§IV.B.3, [7], [32]).  Its sampling thresholds (15 and 63 in Fig. 6) are
expressed on that 0..255 *occurrence-equivalent* scale.

Our measurement windows are ~10³× shorter than the paper's 100M-instruction
checkpoints, so training lengths must scale with them or no instruction
would ever reach confidence inside a window.  :class:`ConfidenceScale`
captures this: it builds an FPC probability vector whose expected
saturation point is ``saturate_occurrences`` (255 to match the paper
exactly, 32 by default for the short windows), and converts paper-scale
thresholds into FPC levels proportionally.  The *ratios* between
``use_pred`` and ``start_train`` thresholds — which drive the Fig. 6
behaviour — are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The paper's occurrence scale: counters saturate at 255.
PAPER_SATURATION = 255


@dataclass(frozen=True)
class ConfidenceScale:
    """Maps the paper's 0..255 confidence scale onto a 3-bit FPC.

    ``saturate_occurrences`` is the expected number of successful updates
    needed to reach the top FPC level.  The first increment is always free
    (probability 1), the remaining ``levels - 1`` steps share the rest of
    the budget uniformly.
    """

    saturate_occurrences: int = 32
    levels: int = 7
    probabilities: tuple[float, ...] = field(init=False)
    cumulative: tuple[float, ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.saturate_occurrences < self.levels:
            raise ValueError(
                "saturation must need at least one occurrence per level"
            )
        if self.levels < 1:
            raise ValueError("need at least one confidence level")
        remaining = self.saturate_occurrences - 1
        steps = self.levels - 1
        step_probability = steps / remaining if steps else 1.0
        probabilities = (1.0,) + (min(1.0, step_probability),) * steps
        cumulative = []
        expected = 0.0
        for p in probabilities:
            expected += 1.0 / p
            cumulative.append(expected)
        object.__setattr__(self, "probabilities", probabilities)
        object.__setattr__(self, "cumulative", tuple(cumulative))

    def level_for_paper_threshold(self, paper_threshold: int) -> int:
        """FPC level equivalent to a 0..255-scale confidence threshold.

        A counter "exceeds" the threshold once its occurrence-equivalent
        value passes ``paper_threshold * saturate / 255``.
        """
        scaled = paper_threshold * self.saturate_occurrences / PAPER_SATURATION
        for level, expected in enumerate(self.cumulative, start=1):
            if expected >= scaled:
                return min(level, self.levels)
        return self.levels

    @property
    def saturated_level(self) -> int:
        return self.levels


#: Default scale for the short simulation windows used by the benches.
#: 128 expected occurrences to saturate balances training time (statics in
#: the synthetic workloads recur 200-300 times per window) against the
#: very high accuracy commit-time squash recovery demands — transient
#: patterns (zero-run boundaries, hash-collision pairs) must not reach
#: confidence, exactly the role the paper's 255-occurrence saturation
#: plays at its 100M-instruction scale.
SCALED = ConfidenceScale(saturate_occurrences=128)

#: Exact paper scale (use with REPRO_FIDELITY=paper and long windows).
PAPER = ConfidenceScale(saturate_occurrences=PAPER_SATURATION)
