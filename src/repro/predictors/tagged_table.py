"""Shared TAGE machinery: geometric-history indexing of tagged tables.

Every TAGE-style structure in the paper — the branch predictor (Table I),
the distance predictor (§IV.C) and D-VTAGE (§II.A) — uses the same skeleton:
a direct-mapped base table backed by several partially tagged components
indexed with hashes of the PC and geometrically growing slices of global
branch (and path) history.  This module factors that skeleton out; each
predictor supplies its own payload and update policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitops import fold_bits
from repro.common.history import GlobalHistory, PathHistory


@dataclass(frozen=True)
class ComponentGeometry:
    """Geometry of one tagged component."""

    log2_entries: int
    tag_bits: int
    history_bits: int

    @property
    def entries(self) -> int:
        return 1 << self.log2_entries


def geometric_history_lengths(
    shortest: int, longest: int, components: int
) -> list[int]:
    """The geometric series of history lengths used by TAGE ([31])."""
    if components == 1:
        return [shortest]
    ratio = (longest / shortest) ** (1.0 / (components - 1))
    lengths = []
    for index in range(components):
        length = int(round(shortest * ratio**index))
        if lengths and length <= lengths[-1]:
            length = lengths[-1] + 1
        lengths.append(length)
    return lengths


@dataclass
class Lookup:
    """Result of indexing all components for one PC.

    Stored by the pipeline alongside the in-flight instruction so commit can
    update exactly the entries that produced the prediction, even if global
    history has moved on since (real TAGE checkpoints the same data).
    """

    pc: int
    indices: list[int]
    tags: list[int]


class GeometricIndexer:
    """Computes per-component (index, tag) pairs for a PC.

    Maintains incrementally folded views of global branch history and mixes
    in a few bits of path history, following [31].
    """

    def __init__(
        self,
        geometries: list[ComponentGeometry],
        history: GlobalHistory,
        path: PathHistory,
        path_bits: int = 12,
    ) -> None:
        self.geometries = list(geometries)
        self.history = history
        self.path = path
        self._path_bits = path_bits
        for geometry in self.geometries:
            history.register_fold(geometry.history_bits, geometry.log2_entries)
            history.register_fold(geometry.history_bits, geometry.tag_bits)
            if geometry.tag_bits > 1:
                history.register_fold(geometry.history_bits, geometry.tag_bits - 1)

    def lookup(self, pc: int) -> Lookup:
        """Index every component for *pc* under current history."""
        word = pc >> 2
        indices: list[int] = []
        tags: list[int] = []
        path_raw = self.path.raw(self._path_bits)
        for component_number, geometry in enumerate(self.geometries, start=1):
            index_bits = geometry.log2_entries
            index_mask = (1 << index_bits) - 1
            folded_index = self.history.folded(geometry.history_bits, index_bits)
            path_mix = fold_bits(path_raw, self._path_bits, index_bits)
            index = (
                word
                ^ (word >> (index_bits - component_number % index_bits or 1))
                ^ folded_index
                ^ path_mix
            ) & index_mask
            tag_mask = (1 << geometry.tag_bits) - 1
            folded_tag = self.history.folded(
                geometry.history_bits, geometry.tag_bits
            )
            if geometry.tag_bits > 1:
                folded_tag2 = self.history.folded(
                    geometry.history_bits, geometry.tag_bits - 1
                )
            else:
                folded_tag2 = 0
            tag = (word ^ folded_tag ^ (folded_tag2 << 1)) & tag_mask
            indices.append(index)
            tags.append(tag)
        return Lookup(pc, indices, tags)


class UsefulnessMonitor:
    """Periodic graceful reset of TAGE useful bits ([31]).

    Every ``period`` allocation failures, all useful counters are aged by
    one.  Predictors call :meth:`on_allocation_failure` and perform the
    aging themselves through the returned flag.
    """

    def __init__(self, period: int = 512) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self._period = period
        self._failures = 0

    def on_allocation_failure(self) -> bool:
        """Record a failed allocation; True when an aging pass is due."""
        self._failures += 1
        if self._failures >= self._period:
            self._failures = 0
            return True
        return False
