"""Shared TAGE machinery: geometric-history indexing of tagged tables.

Every TAGE-style structure in the paper — the branch predictor (Table I),
the distance predictor (§IV.C) and D-VTAGE (§II.A) — uses the same skeleton:
a direct-mapped base table backed by several partially tagged components
indexed with hashes of the PC and geometrically growing slices of global
branch (and path) history.  This module factors that skeleton out; each
predictor supplies its own payload and update policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitops import fold_bits
from repro.common.history import GlobalHistory, PathHistory


@dataclass(frozen=True)
class ComponentGeometry:
    """Geometry of one tagged component."""

    log2_entries: int
    tag_bits: int
    history_bits: int

    @property
    def entries(self) -> int:
        return 1 << self.log2_entries


def geometric_history_lengths(
    shortest: int, longest: int, components: int
) -> list[int]:
    """The geometric series of history lengths used by TAGE ([31])."""
    if components == 1:
        return [shortest]
    ratio = (longest / shortest) ** (1.0 / (components - 1))
    lengths = []
    for index in range(components):
        length = int(round(shortest * ratio**index))
        if lengths and length <= lengths[-1]:
            length = lengths[-1] + 1
        lengths.append(length)
    return lengths


@dataclass(slots=True)
class Lookup:
    """Result of indexing all components for one PC.

    Stored by the pipeline alongside the in-flight instruction so commit can
    update exactly the entries that produced the prediction, even if global
    history has moved on since (real TAGE checkpoints the same data).
    """

    pc: int
    indices: list[int]
    tags: list[int]


def emit_indexing_lines(components, path_bits: int, env: dict) -> list[str]:
    """Emit the per-component ``i{k}``/``t{k}`` lines of a generated
    TAGE-style fast path.

    Shared by every code generator over a :class:`GeometricIndexer`'s
    component tuples (the indexer's own lookup, the distance predictor's
    and D-VTAGE's fast predicts): one source of truth for the index/tag
    formulas and the path-fold memo.  The caller's generated function
    must define ``path_raw`` and ``word`` before these lines; *env* is
    extended with the folded-register references and the memo list.

    Components sharing an index width share one memoised path fold
    (TAGE geometries typically use a single table size), so the fold —
    and its staleness check — runs once per lookup, not once per
    component.  ``_pm[0]`` is the path value the folds were computed
    for; ``_pm[1:]`` hold one fold per distinct width.
    """
    slot_of: dict[int, int] = {}
    for (index_bits, *_rest) in components:
        if index_bits not in slot_of:
            slot_of[index_bits] = len(slot_of) + 1
    env["_pm"] = [-1] + [0] * len(slot_of)
    env["fold_bits"] = fold_bits
    lines = ["    _m = _pm", "    if _m[0] != path_raw:",
             "        _m[0] = path_raw"]
    for bits, slot in slot_of.items():
        lines.append(
            f"        _m[{slot}] = fold_bits(path_raw, {path_bits}, {bits})"
        )
    for k, (index_bits, index_mask, word_shift, index_fold,
            tag_mask, tag_fold, tag_fold2, path_memo) in enumerate(
                components):
        env[f"_fi{k}"] = index_fold
        env[f"_ft{k}"] = tag_fold
        lines.append(
            f"    i{k} = (word ^ (word >> {word_shift}) ^ _fi{k}.value"
            f" ^ _m[{slot_of[index_bits]}]) & {index_mask}"
        )
        if tag_fold2 is not None:
            env[f"_ft2{k}"] = tag_fold2
            lines.append(
                f"    t{k} = (word ^ _ft{k}.value ^ (_ft2{k}.value << 1))"
                f" & {tag_mask}"
            )
        else:
            lines.append(f"    t{k} = (word ^ _ft{k}.value) & {tag_mask}")
    return lines


class GeometricIndexer:
    """Computes per-component (index, tag) pairs for a PC.

    Maintains incrementally folded views of global branch history and mixes
    in a few bits of path history, following [31].
    """

    def __init__(
        self,
        geometries: list[ComponentGeometry],
        history: GlobalHistory,
        path: PathHistory,
        path_bits: int = 12,
    ) -> None:
        self.geometries = list(geometries)
        self.history = history
        self.path = path
        self._path_bits = path_bits
        for geometry in self.geometries:
            history.register_fold(geometry.history_bits, geometry.log2_entries)
            history.register_fold(geometry.history_bits, geometry.tag_bits)
            if geometry.tag_bits > 1:
                history.register_fold(geometry.history_bits, geometry.tag_bits - 1)
        # Per-component constants and live folded-register references,
        # precomputed once so the per-lookup loop touches no dicts.  The
        # final element is a [last_path_raw, folded] memo: path history
        # only changes on taken branches, so the path fold is reused
        # across the (many) lookups between pushes.
        self._components = []
        for component_number, geometry in enumerate(self.geometries, start=1):
            index_bits = geometry.log2_entries
            self._components.append((
                index_bits,
                (1 << index_bits) - 1,
                index_bits - component_number % index_bits or 1,
                history.fold_register(geometry.history_bits, index_bits),
                (1 << geometry.tag_bits) - 1,
                history.fold_register(geometry.history_bits,
                                      geometry.tag_bits),
                history.fold_register(geometry.history_bits,
                                      geometry.tag_bits - 1)
                if geometry.tag_bits > 1 else None,
                [-1, 0],
            ))
        self.lookup = self._build_fast_lookup()

    def _build_fast_lookup(self):
        """Generate an unrolled :meth:`lookup` for this geometry set.

        Same computation as :meth:`lookup_reference`, with the component
        loop flattened and all constants inlined.  Folded registers and
        path memos are mutated in place elsewhere, so the embedded
        references stay live.
        """
        path_bits = self._path_bits
        env = {"Lookup": Lookup, "_path": self.path}
        lines = [
            "def fast_lookup(pc):",
            f"    path_raw = _path.value & {(1 << path_bits) - 1}",
            "    word = pc >> 2",
        ]
        n = len(self._components)
        lines += emit_indexing_lines(self._components, path_bits, env)
        index_list = ", ".join(f"i{k}" for k in range(n))
        tag_list = ", ".join(f"t{k}" for k in range(n))
        lines.append(f"    return Lookup(pc, [{index_list}], [{tag_list}])")
        exec("\n".join(lines), env)  # noqa: S102 - static template, no input
        return env["fast_lookup"]

    def lookup_reference(self, pc: int) -> Lookup:
        """Index every component for *pc* under current history."""
        word = pc >> 2
        indices: list[int] = []
        tags: list[int] = []
        path_bits = self._path_bits
        path_raw = self.path.raw(path_bits)
        for (index_bits, index_mask, word_shift, index_fold,
             tag_mask, tag_fold, tag_fold2, path_memo) in self._components:
            if path_memo[0] == path_raw:
                path_mix = path_memo[1]
            else:
                path_mix = fold_bits(path_raw, path_bits, index_bits)
                path_memo[0] = path_raw
                path_memo[1] = path_mix
            index = (
                word
                ^ (word >> word_shift)
                ^ index_fold.value
                ^ path_mix
            ) & index_mask
            tag = (
                word
                ^ tag_fold.value
                ^ ((tag_fold2.value << 1) if tag_fold2 is not None else 0)
            ) & tag_mask
            indices.append(index)
            tags.append(tag)
        return Lookup(pc, indices, tags)


class UsefulnessMonitor:
    """Periodic graceful reset of TAGE useful bits ([31]).

    Every ``period`` allocation failures, all useful counters are aged by
    one.  Predictors call :meth:`on_allocation_failure` and perform the
    aging themselves through the returned flag.
    """

    def __init__(self, period: int = 512) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self._period = period
        self._failures = 0

    def on_allocation_failure(self) -> bool:
        """Record a failed allocation; True when an aging pass is due."""
        self._failures += 1
        if self._failures >= self._period:
            self._failures = 0
            return True
        return False
