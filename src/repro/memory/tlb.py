"""Translation lookaside buffers (Table I: 128-entry ITLB, 64-entry DTLB).

Fully associative with LRU, 4KB pages.  A miss pays a fixed page-walk
penalty; the walk itself is not simulated (the synthetic address spaces are
small and flat, so walks would always hit the caches anyway).
"""

from __future__ import annotations

PAGE_SHIFT = 12


class Tlb:
    """Fully associative TLB with LRU replacement.

    The recency order lives in an insertion-ordered dict (MRU last):
    hit, refresh and eviction are all O(1) instead of the list scan a
    literal MRU list costs, with replacement decisions — and therefore
    all statistics — identical.
    """

    def __init__(self, entries: int, walk_penalty: int = 20) -> None:
        if entries <= 0:
            raise ValueError("TLB needs at least one entry")
        self._entries = entries
        self.walk_penalty = walk_penalty
        self._pages: dict[int, None] = {}  # insertion order, MRU last
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> int:
        """Translate *addr*; returns added latency (0 on hit)."""
        page = addr >> PAGE_SHIFT
        pages = self._pages
        if page in pages:
            del pages[page]
            pages[page] = None  # refresh to MRU
            self.hits += 1
            return 0
        self.misses += 1
        pages[page] = None
        if len(pages) > self._entries:
            del pages[next(iter(pages))]  # evict the LRU page
        return self.walk_penalty

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
