"""Translation lookaside buffers (Table I: 128-entry ITLB, 64-entry DTLB).

Fully associative with LRU, 4KB pages.  A miss pays a fixed page-walk
penalty; the walk itself is not simulated (the synthetic address spaces are
small and flat, so walks would always hit the caches anyway).
"""

from __future__ import annotations

PAGE_SHIFT = 12


class Tlb:
    """Fully associative TLB with LRU replacement."""

    def __init__(self, entries: int, walk_penalty: int = 20) -> None:
        if entries <= 0:
            raise ValueError("TLB needs at least one entry")
        self._entries = entries
        self.walk_penalty = walk_penalty
        self._pages: list[int] = []  # MRU first
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> int:
        """Translate *addr*; returns added latency (0 on hit)."""
        page = addr >> PAGE_SHIFT
        try:
            position = self._pages.index(page)
        except ValueError:
            self.misses += 1
            self._pages.insert(0, page)
            if len(self._pages) > self._entries:
                self._pages.pop()
            return self.walk_penalty
        if position:
            self._pages.insert(0, self._pages.pop(position))
        self.hits += 1
        return 0

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
