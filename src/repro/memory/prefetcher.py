"""Hardware prefetchers of Table I: per-PC stride (L1D) and stream (L2/L3).

Both are degree 1, as configured in the paper's gem5 setup.
"""

from __future__ import annotations

from repro.memory.cache import LINE_SHIFT


class StridePrefetcher:
    """Classic PC-indexed stride prefetcher (L1D, degree 1).

    Each table entry tracks the last address and last stride of one load
    PC with a 2-bit stable counter; once the stride repeats, the next
    address is prefetched.
    """

    def __init__(self, entries: int = 256, degree: int = 1) -> None:
        self._entries = entries
        self._degree = degree
        # pc -> (last_addr, stride, confidence)
        self._table: dict[int, tuple[int, int, int]] = {}
        self.issued = 0

    def observe(self, pc: int, addr: int) -> list[int]:
        """Record an access; returns byte addresses to prefetch."""
        key = pc & 0xFFFF_FFFF
        entry = self._table.get(key)
        prefetches: list[int] = []
        if entry is None:
            if len(self._table) >= self._entries:
                # Cheap random-ish eviction: drop an arbitrary entry.
                self._table.pop(next(iter(self._table)))
            self._table[key] = (addr, 0, 0)
            return prefetches
        last_addr, stride, confidence = entry
        new_stride = addr - last_addr
        if new_stride == stride and stride != 0:
            confidence = min(confidence + 1, 3)
        else:
            confidence = max(confidence - 1, 0)
            stride = new_stride
        if confidence >= 2 and stride != 0:
            # Prefetch at line granularity: a small byte stride walks
            # within the current line most accesses, so the useful target
            # is the next line along the stream, not addr + stride.
            line_bytes = 1 << LINE_SHIFT
            if 0 < stride < line_bytes:
                step = line_bytes
            elif -line_bytes < stride < 0:
                step = -line_bytes
            else:
                step = stride
            for ahead in range(1, self._degree + 1):
                prefetches.append(addr + step * ahead)
            self.issued += len(prefetches)
        self._table[key] = (addr, stride, confidence)
        return prefetches


class StreamPrefetcher:
    """Next-line stream prefetcher (L2/L3, degree 1).

    Tracks a handful of active streams; a miss adjacent to an active
    stream extends it and prefetches the next line(s); otherwise a new
    stream is trained.
    """

    def __init__(self, streams: int = 16, degree: int = 1) -> None:
        self._max_streams = streams
        self._degree = degree
        # List of (last_line, direction) most-recent first.
        self._streams: list[tuple[int, int]] = []
        self.issued = 0

    def observe_miss(self, addr: int) -> list[int]:
        """Record a miss; returns byte addresses to prefetch."""
        line = addr >> LINE_SHIFT
        prefetches: list[int] = []
        for position, (last_line, direction) in enumerate(self._streams):
            if line == last_line + direction:
                self._streams.pop(position)
                self._streams.insert(0, (line, direction))
                for ahead in range(1, self._degree + 1):
                    prefetches.append((line + direction * ahead) << LINE_SHIFT)
                self.issued += len(prefetches)
                return prefetches
            if line == last_line - direction:
                # Stream reversing direction: retrain.
                self._streams.pop(position)
                self._streams.insert(0, (line, -direction))
                return prefetches
        self._streams.insert(0, (line, 1))
        if len(self._streams) > self._max_streams:
            self._streams.pop()
        return prefetches
