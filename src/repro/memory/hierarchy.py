"""The full memory hierarchy of Table I.

L1I/L1D 32KB 8-way, private unified L2 256KB 16-way, shared L3 6MB 24-way,
64B lines, LRU, per-cache MSHRs, stride prefetcher at L1D, stream
prefetchers at L2/L3, dual-channel DDR4 behind it all, ITLB/DTLB in front.

Latencies are *load-to-use per hit level* as Table I quotes them: L1D 4,
L2 12, L3 21, memory 21 + DRAM service time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.cache import Cache, LINE_SHIFT
from repro.memory.dram import DramConfig, DramModel
from repro.memory.prefetcher import StreamPrefetcher, StridePrefetcher
from repro.memory.tlb import PAGE_SHIFT, Tlb


@dataclass(frozen=True)
class MemoryConfig:
    """Geometry and latencies (defaults: Table I)."""

    l1i_bytes: int = 32 * 1024
    l1i_ways: int = 8
    l1i_latency: int = 1
    l1d_bytes: int = 32 * 1024
    l1d_ways: int = 8
    l1d_latency: int = 4
    l2_bytes: int = 256 * 1024
    l2_ways: int = 16
    l2_latency: int = 12
    l3_bytes: int = 6 * 1024 * 1024
    l3_ways: int = 24
    l3_latency: int = 21
    mshrs: int = 64
    itlb_entries: int = 128
    dtlb_entries: int = 64
    enable_prefetch: bool = True
    dram: DramConfig = field(default_factory=DramConfig)


class MemoryHierarchy:
    """Latency-composition model of the three-level hierarchy."""

    def __init__(self, config: MemoryConfig | None = None) -> None:
        self.config = config or MemoryConfig()
        c = self.config
        self.l1i = Cache("L1I", c.l1i_bytes, c.l1i_ways, c.l1i_latency, c.mshrs)
        self.l1d = Cache("L1D", c.l1d_bytes, c.l1d_ways, c.l1d_latency, c.mshrs)
        self.l2 = Cache("L2", c.l2_bytes, c.l2_ways, c.l2_latency, c.mshrs)
        self.l3 = Cache("L3", c.l3_bytes, c.l3_ways, c.l3_latency, c.mshrs)
        self.dram = DramModel(c.dram)
        self.itlb = Tlb(c.itlb_entries)
        self.dtlb = Tlb(c.dtlb_entries)
        self.stride_prefetcher = StridePrefetcher()
        self.l2_stream = StreamPrefetcher()
        self.l3_stream = StreamPrefetcher()

    # ------------------------------------------------------------------

    def _miss_path_latency(self, line: int, cycle: int,
                           for_prefetch: bool = False) -> int:
        """Latency to obtain *line* from beyond L1D, installing fills.

        Also drives the L2/L3 stream prefetchers on demand misses.
        """
        c = self.config
        addr = line << LINE_SHIFT
        l2_hit, l2_merge = self.l2.lookup(line, cycle)
        if l2_hit:
            return c.l2_latency + l2_merge

        if not for_prefetch and c.enable_prefetch:
            for prefetch_addr in self.l2_stream.observe_miss(addr):
                self._prefetch_into_l2(prefetch_addr, cycle)

        l3_hit, l3_merge = self.l3.lookup(line, cycle)
        if l3_hit:
            latency = c.l3_latency + l3_merge
            self.l2.start_miss(line, cycle, latency)
            return latency

        if not for_prefetch and c.enable_prefetch:
            for prefetch_addr in self.l3_stream.observe_miss(addr):
                self._prefetch_into_l3(prefetch_addr, cycle)

        dram_latency = self.dram.access(addr, cycle)
        latency = c.l3_latency + dram_latency
        self.l3.start_miss(line, cycle, latency)
        self.l2.start_miss(line, cycle, latency)
        return latency

    def _prefetch_into_l2(self, addr: int, cycle: int) -> None:
        line = addr >> LINE_SHIFT
        if self.l2.present(line):
            return
        if self.l3.present(line):
            latency = self.config.l3_latency
        else:
            latency = self.config.l3_latency + self.dram.access(addr, cycle)
            self.l3.fill(line, prefetch=True)
        self.l2.start_miss(line, cycle, latency)
        self.l2.stats.prefetch_fills += 1

    def _prefetch_into_l3(self, addr: int, cycle: int) -> None:
        line = addr >> LINE_SHIFT
        if self.l3.present(line):
            return
        latency = self.dram.access(addr, cycle)
        self.l3.start_miss(line, cycle, latency)
        self.l3.stats.prefetch_fills += 1

    def _prefetch_into_l1d(self, addr: int, cycle: int) -> None:
        line = addr >> LINE_SHIFT
        if self.l1d.present(line):
            return
        if self.l2.present(line):
            latency = self.config.l2_latency
        elif self.l3.present(line):
            latency = self.config.l3_latency
        else:
            latency = self.config.l3_latency + self.dram.access(addr, cycle)
            self.l3.fill(line, prefetch=True)
            self.l2.fill(line, prefetch=True)
        self.l1d.start_miss(line, cycle, latency)
        self.l1d.stats.prefetch_fills += 1

    # ------------------------------------------------------------------

    def load(self, pc: int, addr: int, cycle: int) -> int:
        """Data load at *cycle*; returns load-to-use latency.

        Hot-path inlining: the DTLB access and the L1D hit path run
        with no method dispatch (bodies of ``Tlb.access``,
        ``Cache.lookup``/``Cache.touch`` verbatim — edit together; the
        golden suites pin every counter).  Misses and MSHR merges fall
        back to the full machinery.
        """
        c = self.config
        # --- inlined self.dtlb.access(addr) ---------------------------
        dtlb = self.dtlb
        page = addr >> PAGE_SHIFT
        pages = dtlb._pages
        if page in pages:
            del pages[page]
            pages[page] = None  # refresh to MRU
            dtlb.hits += 1
            latency = 0
        else:
            dtlb.misses += 1
            pages[page] = None
            if len(pages) > dtlb._entries:
                del pages[next(iter(pages))]  # evict the LRU page
            latency = dtlb.walk_penalty
        line = addr >> LINE_SHIFT

        if c.enable_prefetch:
            prefetches = self.stride_prefetcher.observe(pc, addr)
            if prefetches:
                for prefetch_addr in prefetches:
                    self._prefetch_into_l1d(prefetch_addr, cycle)

        # --- inlined self.l1d.lookup(line, cycle), hit path -----------
        l1d = self.l1d
        pending = l1d._pending
        if pending:
            l1d._prune_pending(cycle)
            if line in pending:
                l1d.touch(line)
                l1d.stats.mshr_merges += 1
                return latency + c.l1d_latency + (pending[line] - cycle)
        ways = l1d._tags[line & l1d._set_mask]
        try:
            position = ways.index(line)
        except ValueError:
            l1d.stats.misses += 1
            miss_latency = self._miss_path_latency(line, cycle)
            stall = l1d.start_miss(line, cycle, miss_latency)
            return latency + miss_latency + stall
        if position:
            ways.insert(0, ways.pop(position))
        l1d.stats.hits += 1
        return latency + c.l1d_latency

    def store(self, pc: int, addr: int, cycle: int) -> int:
        """Data store (write-allocate, write-back); returns fill latency.

        Committed stores drain from the store queue without stalling the
        pipeline, but they still move lines and occupy DRAM banks.
        """
        latency = self.dtlb.access(addr)
        line = addr >> LINE_SHIFT
        l1_hit, l1_merge = self.l1d.lookup(line, cycle)
        if l1_hit:
            self.l1d.mark_dirty(line)
            return latency + self.config.l1d_latency + l1_merge
        miss_latency = self._miss_path_latency(line, cycle)
        stall = self.l1d.start_miss(line, cycle, miss_latency)
        self.l1d.mark_dirty(line)
        return latency + miss_latency + stall

    def fetch(self, pc: int, cycle: int) -> int:
        """Instruction fetch of the block containing *pc*.

        Returns *extra* front-end bubble cycles (0 when L1I hits: the
        1-cycle access is part of the pipelined front end).  The ITLB
        and L1I hit paths are inlined like :meth:`load`'s.
        """
        # --- inlined self.itlb.access(pc) -----------------------------
        itlb = self.itlb
        page = pc >> PAGE_SHIFT
        pages = itlb._pages
        if page in pages:
            del pages[page]
            pages[page] = None  # refresh to MRU
            itlb.hits += 1
            latency = 0
        else:
            itlb.misses += 1
            pages[page] = None
            if len(pages) > itlb._entries:
                del pages[next(iter(pages))]  # evict the LRU page
            latency = itlb.walk_penalty
        line = pc >> LINE_SHIFT

        # --- inlined self.l1i.lookup(line, cycle), hit path -----------
        l1i = self.l1i
        pending = l1i._pending
        if pending:
            l1i._prune_pending(cycle)
            if line in pending:
                l1i.touch(line)
                l1i.stats.mshr_merges += 1
                return latency + (pending[line] - cycle)
        ways = l1i._tags[line & l1i._set_mask]
        try:
            position = ways.index(line)
        except ValueError:
            l1i.stats.misses += 1
            miss_latency = self._miss_path_latency(line, cycle)
            stall = l1i.start_miss(line, cycle, miss_latency)
            return latency + miss_latency + stall
        if position:
            ways.insert(0, ways.pop(position))
        l1i.stats.hits += 1
        return latency
