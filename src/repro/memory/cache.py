"""Set-associative cache with LRU replacement, MSHRs and pending fills.

The timing model uses *latency composition*: an access walks the hierarchy,
updates replacement state, and returns its load-to-use latency.  Misses
allocate an MSHR until the fill completes; same-line misses merge onto the
outstanding MSHR; a full MSHR file delays the access until the oldest
outstanding miss retires (Table I: 64 MSHRs per cache).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitops import LINE_SHIFT  # 64-byte lines (Table I)

__all__ = ["LINE_SHIFT", "Cache", "CacheStats"]


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache."""

    hits: int = 0
    misses: int = 0
    mshr_merges: int = 0
    mshr_stalls: int = 0
    prefetch_fills: int = 0
    prefetch_hits: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0


class Cache:
    """One level of the hierarchy.

    ``hit_latency`` is the full load-to-use latency when this level hits
    (Table I quotes per-level load-to-use, not incremental, latencies).
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        hit_latency: int,
        mshrs: int = 64,
    ) -> None:
        lines = size_bytes >> LINE_SHIFT
        if lines % ways:
            raise ValueError(f"{name}: lines not divisible by ways")
        self.name = name
        self.ways = ways
        self.sets = lines // ways
        if self.sets & (self.sets - 1):
            raise ValueError(f"{name}: set count must be a power of two")
        self._set_mask = self.sets - 1
        self.hit_latency = hit_latency
        self.mshr_limit = mshrs
        # Per-set MRU-first list of line tags.
        self._tags: list[list[int]] = [[] for _ in range(self.sets)]
        self._dirty: set[int] = set()
        # Outstanding misses: line -> fill-ready cycle.
        self._pending: dict[int, int] = {}
        self.stats = CacheStats()

    # ------------------------------------------------------------------

    def present(self, line: int) -> bool:
        """True iff *line* is resident (no LRU update)."""
        return line in self._tags[line & self._set_mask]

    def touch(self, line: int) -> bool:
        """Probe for *line*; promotes to MRU on hit.  Returns hit flag."""
        ways = self._tags[line & self._set_mask]
        try:
            position = ways.index(line)
        except ValueError:
            return False
        if position:
            ways.insert(0, ways.pop(position))
        return True

    def fill(self, line: int, dirty: bool = False,
             prefetch: bool = False) -> int | None:
        """Install *line*; returns the victim line if one was evicted."""
        ways = self._tags[line & self._set_mask]
        tag = line
        victim = None
        if tag in ways:
            ways.remove(tag)
        elif len(ways) >= self.ways:
            victim = ways.pop()
            self._dirty.discard(victim)
        ways.insert(0, tag)
        if dirty:
            self._dirty.add(line)
        if prefetch:
            self.stats.prefetch_fills += 1
        return victim

    def mark_dirty(self, line: int) -> None:
        self._dirty.add(line)

    def is_dirty(self, line: int) -> bool:
        return line in self._dirty

    # ------------------------------------------------------------------
    # Miss-status handling
    # ------------------------------------------------------------------

    def _prune_pending(self, cycle: int) -> None:
        pending = self._pending
        if not pending:
            return
        for ready in pending.values():
            if ready <= cycle:
                done = [
                    line for line, fill in pending.items() if fill <= cycle
                ]
                for line in done:
                    del pending[line]
                return

    def lookup(self, line: int, cycle: int) -> tuple[bool, int]:
        """Access *line* at *cycle*.

        Returns ``(hit, extra_delay)``: on a hit the caller charges
        ``hit_latency``.  ``extra_delay`` > 0 accounts for merging onto an
        outstanding same-line miss (the remaining fill time) — the caller
        should treat that as the full miss service time already under way.
        A plain miss returns ``(False, 0)`` and the caller must call
        :meth:`start_miss` once it knows the fill latency.
        """
        self._prune_pending(cycle)
        if line in self._pending:
            # The line was installed by start_miss but its fill is still
            # in flight: merge onto the outstanding MSHR.
            self.touch(line)
            self.stats.mshr_merges += 1
            return True, self._pending[line] - cycle
        if self.touch(line):
            self.stats.hits += 1
            return True, 0
        self.stats.misses += 1
        return False, 0

    def start_miss(self, line: int, cycle: int, fill_latency: int) -> int:
        """Allocate an MSHR for a miss; returns extra stall cycles if full."""
        stall = 0
        if len(self._pending) >= self.mshr_limit:
            oldest_ready = min(self._pending.values())
            stall = max(0, oldest_ready - cycle)
            self.stats.mshr_stalls += 1
            self._prune_pending(oldest_ready)
        self._pending[line] = cycle + stall + fill_latency
        self.fill(line)
        return stall
