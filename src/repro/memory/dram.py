"""DRAM model: dual-channel DDR4-2400, 2 ranks/channel, 8 banks/rank.

Models what drives the Table I numbers ("Min. Read Lat.: 36 ns, Average:
75 ns"): open-row hits are fast, row conflicts pay precharge+activate, and
bank busy time queues closely spaced accesses to the same bank.  Latencies
are configured in nanoseconds and converted with the core clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import LINE_SHIFT


@dataclass(frozen=True)
class DramConfig:
    """Timing and geometry of the memory system."""

    channels: int = 2
    ranks_per_channel: int = 2
    banks_per_rank: int = 8
    row_bytes: int = 8192           # 8K row buffer (Table I)
    clock_ghz: float = 3.2          # core clock used for ns -> cycles
    row_hit_ns: float = 36.0        # minimum read latency (Table I)
    row_empty_ns: float = 50.0      # closed bank: activate + CAS
    row_conflict_ns: float = 64.0   # precharge + activate + CAS (17-17-17)
    bank_busy_ns: float = 30.0      # service time occupying the bank

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    def to_cycles(self, ns: float) -> int:
        return max(1, int(round(ns * self.clock_ghz)))


class DramModel:
    """Per-bank open-row state machine with busy-time queueing."""

    def __init__(self, config: DramConfig | None = None) -> None:
        self.config = config or DramConfig()
        banks = self.config.total_banks
        self._open_row = [-1] * banks
        self._bank_free_at = [0] * banks
        self.row_hits = 0
        self.row_conflicts = 0
        self.row_empties = 0
        self.total_latency = 0
        self.accesses = 0

    def _map(self, addr: int) -> tuple[int, int]:
        """Map a byte address to (bank, row).

        Line interleaving across channels/banks spreads streams, as real
        controllers do.
        """
        line = addr >> LINE_SHIFT
        bank = line % self.config.total_banks
        row = addr // (self.config.row_bytes * self.config.total_banks)
        return bank, row

    def access(self, addr: int, cycle: int) -> int:
        """Service a read/write at *cycle*; returns latency in core cycles."""
        config = self.config
        bank, row = self._map(addr)
        start = max(cycle, self._bank_free_at[bank])
        queue_delay = start - cycle

        open_row = self._open_row[bank]
        if open_row == row:
            service_ns = config.row_hit_ns
            self.row_hits += 1
        elif open_row < 0:
            service_ns = config.row_empty_ns
            self.row_empties += 1
        else:
            service_ns = config.row_conflict_ns
            self.row_conflicts += 1
        self._open_row[bank] = row

        service = config.to_cycles(service_ns)
        self._bank_free_at[bank] = start + config.to_cycles(
            config.bank_busy_ns
        )
        latency = queue_delay + service
        self.total_latency += latency
        self.accesses += 1
        return latency

    @property
    def average_latency_cycles(self) -> float:
        return self.total_latency / self.accesses if self.accesses else 0.0

    @property
    def average_latency_ns(self) -> float:
        return self.average_latency_cycles / self.config.clock_ghz
