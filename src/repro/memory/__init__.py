"""Memory system: caches, prefetchers, DRAM, TLBs, the full hierarchy."""

from repro.memory.cache import Cache, CacheStats, LINE_SHIFT
from repro.memory.dram import DramConfig, DramModel
from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy
from repro.memory.prefetcher import StreamPrefetcher, StridePrefetcher
from repro.memory.tlb import PAGE_SHIFT, Tlb

__all__ = [
    "Cache",
    "CacheStats",
    "DramConfig",
    "DramModel",
    "LINE_SHIFT",
    "MemoryConfig",
    "MemoryHierarchy",
    "PAGE_SHIFT",
    "StreamPrefetcher",
    "StridePrefetcher",
    "Tlb",
]
