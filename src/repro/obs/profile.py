"""The phase profiler behind ``repro profile`` (and the CI overhead gate).

Two tools in one module:

* :func:`phase_profile` runs the perf harness's protocol (trace built
  outside the timed region, fresh pipeline per run) with every pipeline
  stage wrapped in a wall-clock accumulator, across the four compute-
  plane combinations (generated vs generic rename/issue × vectorised vs
  pure warming — DESIGN.md §12), and emits one comparable, versioned
  JSON payload.  Stage wrapping is instance-attribute shadowing — the
  same binding trick the columnar fetch and generated loops use — so
  whatever plane is installed is exactly what gets attributed.
* :func:`overhead_gate` is the observability plane's own CI gate: it
  A/B-times the identical run with obs off and on (interleaved repeats,
  best-of), requires bit-identical stats and an on-plane throughput
  within tolerance (default 5%) of the off plane.

Timing wrappers cost real wall (5 ``perf_counter`` pairs per cycle), so
profiled KIPS are *not* comparable to ``repro perf`` numbers — only the
per-stage shares are; the payload carries both so nobody has to guess.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from contextlib import contextmanager
from dataclasses import replace

#: Profile payload layout version.
PROFILE_FORMAT = 1

#: Stage name -> the pipeline attribute it times.  ``idle`` is the
#: event-driven fast-forward (DESIGN.md §7); ``interp`` (trace build)
#: and ``warm`` (functional warming) are timed at their call sites.
STAGE_ATTRS: tuple[tuple[str, str], ...] = (
    ("commit", "_commit"),
    ("issue", "_issue"),
    ("rename", "_rename"),
    ("fetch", "_fetch"),
    ("idle", "_fast_forward_idle"),
)

#: The four compute-plane combinations (genrename, vecwarm).
ALL_COMBOS: tuple[tuple[int, int], ...] = ((1, 1), (1, 0), (0, 1), (0, 0))

DEFAULT_BENCHMARKS: tuple[str, ...] = ("mcf", "bzip2")


@contextmanager
def _env_overrides(**overrides: str | None):
    """Set/unset environment variables for a scope (``None`` = unset)."""
    saved = {name: os.environ.get(name) for name in overrides}
    try:
        for name, value in overrides.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _instrument_stages(pipeline, acc: dict[str, float]) -> None:
    """Shadow each stage with a timing wrapper accumulating into *acc*.

    ``getattr`` picks up whatever is installed — generic class methods,
    generated loops, the columnar fetch — and the wrapper becomes the
    instance attribute ``_step`` dispatches to, so attribution follows
    the active plane automatically.
    """
    clock = time.perf_counter
    for stage, attr in STAGE_ATTRS:
        inner = getattr(pipeline, attr)

        def timed(*args, _inner=inner, _stage=stage):
            start = clock()
            try:
                return _inner(*args)
            finally:
                acc[_stage] += clock() - start

        setattr(pipeline, attr, timed)


def _profile_combo(benchmarks, mechanism, warmup: int, measure: int,
                   sampling, seed: int) -> dict:
    """Stage attribution for one compute-plane combination."""
    from repro.pipeline.core import Pipeline
    from repro.pipeline.simulator import _TRACE_SLACK, Simulator
    from repro.sampling import SampledRun

    clock = time.perf_counter
    # A private, store-less simulator: interpretation really runs (and
    # is really timed) for this combo instead of hitting a shared cache.
    simulator = Simulator(trace_store=None)
    stages = {name: 0.0 for name, _ in STAGE_ATTRS}
    stages["interp"] = 0.0
    stages["warm"] = 0.0
    wall = 0.0
    covered = 0
    sampled_active = sampling is not None and sampling.active
    for benchmark in benchmarks:
        start = clock()
        trace = simulator.trace_for(
            benchmark, seed, warmup + measure + _TRACE_SLACK
        )
        stages["interp"] += clock() - start
        pipeline = Pipeline(trace, simulator.core_config, mechanism, seed)
        _instrument_stages(pipeline, stages)
        start = clock()
        if sampled_active:
            run = SampledRun(pipeline, sampling)
            inner_warm = run.warmer.warm

            def timed_warm(*args, _inner=inner_warm):
                warm_start = clock()
                try:
                    return _inner(*args)
                finally:
                    stages["warm"] += clock() - warm_start

            run.warmer.warm = timed_warm
            warmed = run.warm_up(warmup)
            stats = run.measure(measure)
            covered += warmed + (stats.sampled_window or stats.committed)
        else:
            pipeline.run(measure, warmup)
            covered += pipeline.total_committed
        wall += clock() - start
    attributed = sum(stages.values()) - stages["interp"]
    return {
        "stages_seconds": {k: round(v, 4) for k, v in sorted(stages.items())},
        "wall_seconds": round(wall, 4),
        "other_seconds": round(max(0.0, wall - attributed), 4),
        "instructions": covered,
        "kips_instrumented": round(covered / wall / 1000.0, 1) if wall else 0.0,
    }


def phase_profile(
    benchmarks=DEFAULT_BENCHMARKS,
    mechanism_name: str = "rsep-realistic",
    warmup: int | None = None,
    measure: int | None = None,
    sampling=None,
    combos: str = "all",
    seed: int = 1,
) -> dict:
    """Per-stage wall attribution across the compute-plane combinations.

    ``combos="all"`` runs all four genrename × vecwarm planes;
    ``"current"`` profiles only the environment's active plane.  The
    default run is sampled (so warming shows up as a phase); pass an
    inactive *sampling* for a full-detail profile.
    """
    from repro.api import env as api_env
    from repro.pipeline.config import MechanismConfig

    if warmup is None or measure is None:
        default_warmup, default_measure = api_env.window_from_env()
        warmup = default_warmup if warmup is None else warmup
        measure = default_measure if measure is None else measure
    if sampling is None:
        sampling = replace(api_env.sampling_from_env(), enabled=True)
    mechanism = MechanismConfig.preset(mechanism_name)
    results: dict[str, dict] = {}
    if combos == "current":
        selected = [(
            int(api_env.genrename_enabled()), int(api_env.vecwarm_enabled())
        )]
    else:
        selected = list(ALL_COMBOS)
    for genrename, vecwarm in selected:
        with _env_overrides(
            REPRO_GENRENAME=str(genrename), REPRO_VECWARM=str(vecwarm)
        ):
            key = f"genrename={genrename},vecwarm={vecwarm}"
            results[key] = _profile_combo(
                benchmarks, mechanism, warmup, measure, sampling, seed
            )
    return {
        "format": PROFILE_FORMAT,
        "unit": "seconds of wall clock per stage (instrumented run)",
        "benchmarks": list(benchmarks),
        "mechanism": mechanism.name,
        "warmup": warmup,
        "measure": measure,
        "sampled": bool(sampling is not None and sampling.active),
        "seed": seed,
        "combos": results,
    }


def render_profile(payload: dict) -> str:
    """Human-readable table of one :func:`phase_profile` payload."""
    lines = [
        f"phase profile (format {payload['format']}): "
        f"{', '.join(payload['benchmarks'])} × {payload['mechanism']}, "
        f"warmup {payload['warmup']}, measure {payload['measure']}, "
        f"{'sampled' if payload['sampled'] else 'full detail'}",
    ]
    for combo, result in payload["combos"].items():
        # Interpretation is timed outside the pipeline-run wall, so
        # shares are of the combined (interp + run) total.
        wall = (
            result["wall_seconds"]
            + result["stages_seconds"].get("interp", 0.0)
        ) or 1e-9
        lines.append(f"\n[{combo}]  run wall {result['wall_seconds']:.3f}s "
                     f"(+ interp), "
                     f"~{result['kips_instrumented']:.0f} KIPS instrumented")
        stage_items = sorted(
            result["stages_seconds"].items(),
            key=lambda item: -item[1],
        )
        for stage, seconds in stage_items:
            share = 100.0 * seconds / wall
            lines.append(f"  {stage:<8} {seconds:>8.3f}s  {share:5.1f}%")
        lines.append(
            f"  {'other':<8} {result['other_seconds']:>8.3f}s  "
            f"{100.0 * result['other_seconds'] / wall:5.1f}%"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The observability overhead gate (CI)
# ---------------------------------------------------------------------------


def overhead_gate(
    benchmark: str = "mcf",
    mechanism_name: str = "rsep-realistic",
    warmup: int = 2000,
    measure: int = 12000,
    repeats: int = 3,
    metrics_every: int = 500,
    tolerance: float = 0.05,
    obs_dir: str | None = None,
    seed: int = 1,
) -> tuple[bool, dict]:
    """A/B-verify the obs-on plane: bit-identical stats, bounded slowdown.

    Repeats alternate off/on so host-noise drift hits both arms equally;
    best-of wall per arm is the throughput estimate (the perf harness's
    robust estimator).  Returns ``(ok, report)``: ``ok`` requires the
    on-arm stats to equal the off-arm stats field-for-field AND on-KIPS
    >= ``(1 - tolerance) * off-KIPS``.
    """
    from repro.harness.sweep import shared_engine
    from repro.pipeline.config import MechanismConfig
    from repro.pipeline.core import Pipeline
    from repro.pipeline.simulator import _TRACE_SLACK

    clock = time.perf_counter
    simulator = shared_engine().simulator
    mechanism = MechanismConfig.preset(mechanism_name)
    trace = simulator.trace_for(
        benchmark, seed, warmup + measure + _TRACE_SLACK
    )
    if obs_dir is None:
        obs_dir = tempfile.mkdtemp(prefix="repro-obs-gate-")
    best: dict[str, float | None] = {"off": None, "on": None}
    observed_stats: dict[str, dict] = {}
    arm_env = {
        "off": dict(REPRO_OBS=None, REPRO_OBS_DIR=None,
                    REPRO_METRICS_EVERY=None),
        "on": dict(REPRO_OBS="1", REPRO_OBS_DIR=obs_dir,
                   REPRO_METRICS_EVERY=str(metrics_every)),
    }
    for _ in range(max(1, repeats)):
        for arm in ("off", "on"):
            with _env_overrides(**arm_env[arm]):
                pipeline = Pipeline(
                    trace, simulator.core_config, mechanism, seed
                )
                start = clock()
                stats = pipeline.run(measure, warmup)
                wall = clock() - start
            observed_stats[arm] = dataclasses.asdict(stats)
            simulated = pipeline.total_committed
            if best[arm] is None or wall < best[arm]:
                best[arm] = wall
    kips = {
        arm: simulated / best[arm] / 1000.0 for arm in ("off", "on")
    }
    identical = observed_stats["off"] == observed_stats["on"]
    within = kips["on"] >= (1.0 - tolerance) * kips["off"]
    report = {
        "benchmark": benchmark,
        "mechanism": mechanism.name,
        "warmup": warmup,
        "measure": measure,
        "repeats": repeats,
        "metrics_every": metrics_every,
        "tolerance": tolerance,
        "kips_off": round(kips["off"], 1),
        "kips_on": round(kips["on"], 1),
        "overhead_pct": round(100.0 * (1.0 - kips["on"] / kips["off"]), 2),
        "stats_identical": identical,
        "ok": identical and within,
    }
    return report["ok"], report


def render_gate(report: dict) -> str:
    verdict = "ok" if report["ok"] else "FAILED"
    return (
        f"obs overhead gate: {report['benchmark']} × {report['mechanism']} "
        f"(best of {report['repeats']})\n"
        f"  off: {report['kips_off']:.1f} KIPS   "
        f"on: {report['kips_on']:.1f} KIPS   "
        f"overhead {report['overhead_pct']:+.1f}% "
        f"(tolerance {100 * report['tolerance']:.0f}%)\n"
        f"  stats bit-identical: {report['stats_identical']}\n"
        f"  -> {verdict}"
    )


def write_json(payload: dict, path: str) -> None:
    from repro.common.atomicio import atomic_write_text

    atomic_write_text(path, json.dumps(payload, indent=1, sort_keys=True)
                      + "\n")
