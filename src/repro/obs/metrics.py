"""Time-series pipeline metrics: preallocated, sampled, digest-neutral.

A :class:`MetricsHub` rides on one :class:`~repro.pipeline.core.Pipeline`
and snapshots its state every ``every`` committed instructions.  Two
design rules keep it near-zero-overhead and bit-exact:

* **No per-step work.**  ``Pipeline.run_until`` chunks its target at the
  hub's next sample boundary and runs the unmodified inner step loop
  between boundaries — the documented ``run_until``-chaining invariant
  (chained calls with increasing targets execute the exact step sequence
  of one call) is what makes the sampled run bit-identical to the
  unsampled one.  The hub is consulted once per chunk, not per step.
* **Raw cumulative values only.**  Samples record counters as-is (the
  pipeline's monotone ``total_committed`` is the series' x-axis);
  renderers difference them.  Recording deltas would need resets wired
  into ``Stats.reset_window`` — raw series survive window resets for
  free (a renderer just skips the one negative delta at the boundary).

The flushed payload is schema-versioned (:data:`TELEMETRY_FORMAT`) and
lands in the ``telemetry`` section of the ``RunResult`` artifact —
*beside* the cells, never inside the content digest.
"""

from __future__ import annotations

#: Telemetry payload layout version (the ``format`` key of the
#: artifact's ``telemetry`` section).  Bump on incompatible changes;
#: ``repro inspect --metrics`` reports rather than misreads the future.
TELEMETRY_FORMAT = 1

#: Per-sample series, in payload order.  Occupancies are instantaneous;
#: everything else is the cumulative counter at the sample point.
SERIES: tuple[str, ...] = (
    # progress (x-axis first)
    "total_committed", "cycles", "committed", "fetched",
    # structure occupancy at the sample point
    "rob", "iq", "lq", "sq", "ready",
    # stall-reason breakdown (rename-blocked cycles by cause)
    "stall_rob", "stall_iq", "stall_regs", "stall_lsq",
    # control flow and speculation
    "branches", "branch_mispredicts", "squashed_ops",
    # per-predictor coverage / outcome counters
    "dist_pred", "rsep_mispredicts", "zero_pred", "zero_mispredicts",
    "value_pred", "vp_mispredicts", "load_forwards",
)

_INITIAL_CAPACITY = 256


class MetricsHub:
    """Preallocated counter arrays for one pipeline's sample stream."""

    __slots__ = ("every", "next_due", "_data", "_n", "_capacity")

    def __init__(self, every: int, capacity: int = _INITIAL_CAPACITY) -> None:
        if every <= 0:
            raise ValueError("metrics cadence must be positive")
        self.every = every
        self.next_due = every
        self._capacity = max(16, capacity)
        self._data: dict[str, list[int]] = {
            name: [0] * self._capacity for name in SERIES
        }
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def sample(self, pipeline) -> None:
        """Snapshot *pipeline* and advance the next sample boundary."""
        if self._n == self._capacity:
            grow = self._capacity
            for column in self._data.values():
                column.extend([0] * grow)
            self._capacity += grow
        stats = pipeline.stats
        data = self._data
        n = self._n
        total = pipeline._total_committed
        data["total_committed"][n] = total
        data["cycles"][n] = stats.cycles
        data["committed"][n] = stats.committed
        data["fetched"][n] = pipeline._cursor
        data["rob"][n] = len(pipeline.rob)
        data["iq"][n] = len(pipeline.iq)
        data["lq"][n] = len(pipeline.lsq._loads)
        data["sq"][n] = len(pipeline.lsq._stores)
        data["ready"][n] = len(pipeline._ready)
        data["stall_rob"][n] = stats.stall_rob
        data["stall_iq"][n] = stats.stall_iq
        data["stall_regs"][n] = stats.stall_regs
        data["stall_lsq"][n] = stats.stall_lsq
        data["branches"][n] = stats.branches
        data["branch_mispredicts"][n] = stats.branch_mispredicts
        data["squashed_ops"][n] = stats.squashed_ops
        data["dist_pred"][n] = stats.dist_pred
        data["rsep_mispredicts"][n] = stats.rsep_mispredicts
        data["zero_pred"][n] = stats.zero_pred
        data["zero_mispredicts"][n] = stats.zero_mispredicts
        data["value_pred"][n] = stats.value_pred
        data["vp_mispredicts"][n] = stats.vp_mispredicts
        data["load_forwards"][n] = stats.load_forwards
        self._n = n + 1
        # The boundary may be overshot by up to the commit width; land
        # the next one on the following multiple of the cadence.
        due = self.next_due
        every = self.every
        while due <= total:
            due += every
        self.next_due = due

    def to_payload(self) -> dict:
        """The versioned series block one cell contributes."""
        n = self._n
        return {
            "every": self.every,
            "samples": n,
            "series": {name: self._data[name][:n] for name in SERIES},
        }
