"""The trace-event record schema and its JSONL codec.

One record per line, append-only, so a crashed process leaves at worst
one torn final line — which :func:`read_events` tolerates by design
(every complete record is recovered, the torn tail is counted, never
raised).  Records are self-describing::

    {"v": 1, "t": <monotonic seconds>, "pid": <int>,
     "kind": "begin" | "end" | "event",
     "name": "<dotted.span.name>", "id": <span id>, "parent": <id|null>,
     "tags": {...}}

``begin``/``end`` pairs share an ``id`` (span duration = Δt between
them); ``event`` records are instantaneous points.  The clock is
``time.monotonic`` — timestamps order events *within* one process and
difference into durations; they are not wall-clock times and are not
comparable across hosts.  ``v`` is the record format version: readers
skip (and count) records from the future instead of misreading them.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Record layout version.  Bump on incompatible changes; readers skip
#: newer records rather than guessing at their meaning.
RECORD_FORMAT = 1

_KINDS = ("begin", "end", "event")

#: Tag values must stay JSON scalars so every record is one flat line
#: (greppable, `repro tail`-able) and the codec never recurses.
_SCALAR_TYPES = (str, int, float, bool, type(None))


def encode_record(record: dict) -> str:
    """One record as its canonical single-line JSON form (no newline)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def decode_record(line: str) -> dict:
    """Parse and validate one record line; raises ``ValueError`` on any
    malformed, foreign or future-format line."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as error:
        raise ValueError(f"torn or non-JSON record line: {error}") from None
    if not isinstance(record, dict):
        raise ValueError(f"record is not an object: {record!r}")
    version = record.get("v")
    if not isinstance(version, int) or version > RECORD_FORMAT:
        raise ValueError(
            f"record format {version!r} is newer than this build "
            f"understands (max {RECORD_FORMAT})"
        )
    if record.get("kind") not in _KINDS:
        raise ValueError(f"unknown record kind: {record.get('kind')!r}")
    if not isinstance(record.get("name"), str) or not record["name"]:
        raise ValueError("record has no name")
    if not isinstance(record.get("t"), (int, float)):
        raise ValueError("record has no timestamp")
    if not isinstance(record.get("pid"), int):
        raise ValueError("record has no pid")
    tags = record.get("tags", {})
    if not isinstance(tags, dict) or not all(
        isinstance(key, str) and isinstance(value, _SCALAR_TYPES)
        for key, value in tags.items()
    ):
        raise ValueError("record tags must be a flat str -> scalar object")
    return record


def read_events(path) -> tuple[list[dict], int]:
    """Every recoverable record of one event file, plus the dropped count.

    Crash truncation leaves a torn final line; a concurrent writer's
    in-flight line looks the same.  Both are counted as dropped rather
    than raised, so a live (or dead) service's stream is always
    readable.  Records from a *newer* format version are skipped and
    counted too — forward compatibility mirrors the artifact loader's.
    """
    records: list[dict] = []
    dropped = 0
    text = Path(path).read_text(encoding="utf-8")
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(decode_record(line))
        except ValueError:
            dropped += 1
    return records, dropped


def format_record(record: dict) -> str:
    """One record as the human-readable line ``repro tail`` prints."""
    tags = record.get("tags") or {}
    rendered_tags = " ".join(
        f"{key}={value}" for key, value in sorted(tags.items())
    )
    marker = {"begin": ">", "end": "<", "event": "."}.get(
        record.get("kind", "event"), "?"
    )
    return (
        f"{record.get('t', 0.0):>14.6f} pid {record.get('pid', 0):<7} "
        f"{marker} {record.get('name', '?'):<24} {rendered_tags}"
    ).rstrip()
