"""Process-level activation of the observability plane.

One question, answered in one place: *is this process being observed,
and by what?*  :func:`current` returns the active :class:`ObsRuntime` or
``None``; every hook in the pipeline, sampler, sweep engine and service
asks it (or the :func:`obs_tracer` shorthand) and does nothing when the
answer is ``None`` — which is the default, always.

Resolution mirrors the spec family's *explicit beats environment beats
default*:

* :func:`activated` installs a runtime for a ``with`` scope —
  :meth:`Session.run` does this when the spec's :class:`ObsSpec` is
  enabled, so a spec-driven run observes exactly what its spec says
  regardless of ambient state;
* otherwise ``REPRO_OBS=1`` resolves a process-wide runtime from the
  environment (cached per environment value, so tests flipping the
  variables get fresh runtimes and long-lived processes pay one read).
  The environment inherits across ``fork``, which is how shard/pool
  worker processes join the same event directory — each writes its own
  pid-suffixed stream (the tracer re-expands ``{pid}`` after a fork).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path

from repro.obs.config import DEFAULT_OBS_DIR, ObsSpec
from repro.obs.metrics import TELEMETRY_FORMAT, MetricsHub
from repro.obs.tracer import NULL_TRACER, Tracer


class ObsRuntime:
    """Everything one observed process shares: tracer, cadence, cells."""

    def __init__(self, spec: ObsSpec) -> None:
        self.spec = spec
        self.metrics_every = spec.metrics_every
        self.dir = Path(
            spec.dir or os.environ.get("REPRO_OBS_DIR") or DEFAULT_OBS_DIR
        )
        self.tracer = Tracer(str(self.dir / "events-{pid}.jsonl"))
        #: Per-cell metrics series collected since the last drain.
        self._cells: list[dict] = []

    # ------------------------------------------------------------------

    def metrics_hub(self) -> MetricsHub | None:
        """A fresh hub for one pipeline (``None`` when metrics are off)."""
        if self.metrics_every <= 0:
            return None
        return MetricsHub(self.metrics_every)

    def collect_cell(self, benchmark: str, mechanism: str, seed: int,
                     pipeline) -> None:
        """Bank *pipeline*'s metric series under its cell identity."""
        hub = getattr(pipeline, "_metrics", None)
        if hub is None or len(hub) == 0:
            return
        self._cells.append({
            "benchmark": benchmark,
            "mechanism": mechanism,
            "seed": seed,
            **hub.to_payload(),
        })

    def drain_cells(self) -> list[dict]:
        """Hand over (and forget) the banked cell series — one run's
        worth, so consecutive runs under one env runtime never bleed."""
        cells, self._cells = self._cells, []
        return cells

    def telemetry_payload(self, extra: dict | None = None) -> dict:
        """The artifact's ``telemetry`` section for the run just ended.

        Only cells actually *simulated* in this process appear — memoised
        recalls and shard-worker cells ran no local pipeline (the workers
        wrote their own event streams instead).
        """
        payload = {
            "format": TELEMETRY_FORMAT,
            "metrics_every": self.metrics_every,
            "events_dir": str(self.dir),
            "cells": self.drain_cells(),
        }
        if extra:
            payload.update(extra)
        return payload

    def close(self) -> None:
        self.tracer.close()


# ---------------------------------------------------------------------------
# Resolution: explicit install beats environment beats (default) off
# ---------------------------------------------------------------------------

_installed: ObsRuntime | None = None
_env_runtime: ObsRuntime | None = None
_env_key: tuple | None = None


def current() -> ObsRuntime | None:
    """The active runtime, or ``None`` (the overhead-free default).

    The environment path re-checks ``REPRO_OBS`` on each call — a single
    dict read when off, exactly like ``genrename_enabled()`` — and
    caches the built runtime keyed on the three variables' values, so a
    mid-process environment change (tests, the overhead gate's A/B loop)
    swaps runtimes instead of going stale.
    """
    if _installed is not None:
        return _installed
    from repro.api.env import flag

    raw = os.environ.get("REPRO_OBS")
    if not flag(raw):
        return None
    global _env_runtime, _env_key
    key = (
        raw,
        os.environ.get("REPRO_OBS_DIR"),
        os.environ.get("REPRO_METRICS_EVERY"),
    )
    if _env_runtime is None or key != _env_key:
        if _env_runtime is not None:
            _env_runtime.close()
        _env_runtime = ObsRuntime(ObsSpec.from_env())
        _env_key = key
    return _env_runtime


def obs_tracer():
    """The active tracer — :data:`NULL_TRACER` when nothing observes."""
    runtime = current()
    return NULL_TRACER if runtime is None else runtime.tracer


def metrics_hub_for_pipeline() -> MetricsHub | None:
    """Pipeline-constructor hook: a fresh hub, or ``None`` when off."""
    runtime = current()
    if runtime is None:
        return None
    return runtime.metrics_hub()


@contextmanager
def activated(spec: ObsSpec | None):
    """Install *spec*'s runtime for a scope (no-op unless enabled).

    A disabled spec does **not** suppress an environment-resolved
    runtime — ``REPRO_OBS=1`` observes legacy paths exactly like
    ``REPRO_COLUMNAR`` steers them — it simply declines to install one.
    """
    global _installed
    if spec is None or not spec.enabled:
        yield current()
        return
    runtime = ObsRuntime(spec)
    previous = _installed
    _installed = runtime
    try:
        yield runtime
    finally:
        _installed = previous
        runtime.close()
