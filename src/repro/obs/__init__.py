"""The telemetry plane (DESIGN.md §13): tracing, metrics, profiling.

Everything here defaults **off** and is gated exactly like the compute
planes (``REPRO_COLUMNAR=0`` / ``REPRO_GENRENAME=0``): with ``REPRO_OBS``
unset the simulator runs the identical step sequence, produces
bit-identical stats and digest-identical artifacts, and pays no
measurable overhead.  With ``REPRO_OBS=1`` (or an enabled
:class:`ObsSpec` on the experiment spec):

* a :class:`~repro.obs.tracer.Tracer` appends span/event records
  (JSONL, monotonic clock, pid-tagged) around trace interpretation,
  warming, sampling intervals, sweep cells and the shard lifecycle;
* each :class:`~repro.pipeline.core.Pipeline` carries a
  :class:`~repro.obs.metrics.MetricsHub` sampling occupancy/rate/stall
  counters every N committed instructions into preallocated arrays;
* the collected series flush into a schema-versioned ``telemetry``
  section of the :class:`~repro.api.result.RunResult` artifact
  (excluded from the content digest, so obs on/off runs stay
  digest-identical).

:mod:`repro.obs.profile` is the phase profiler behind ``repro profile``
and the CI overhead gate; it is imported lazily (never from here) so the
observability plane itself stays dependency-free.
"""

from repro.obs.config import ObsSpec
from repro.obs.events import (
    RECORD_FORMAT,
    decode_record,
    encode_record,
    format_record,
    read_events,
)
from repro.obs.metrics import TELEMETRY_FORMAT, MetricsHub
from repro.obs.runtime import ObsRuntime, activated, current, obs_tracer
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "NULL_TRACER",
    "RECORD_FORMAT",
    "TELEMETRY_FORMAT",
    "MetricsHub",
    "ObsRuntime",
    "ObsSpec",
    "Tracer",
    "activated",
    "current",
    "decode_record",
    "encode_record",
    "format_record",
    "obs_tracer",
    "read_events",
]
