"""Structured span/event tracing with a free null plane.

Two implementations of one API:

* :class:`Tracer` appends one JSONL record per call (line-buffered, so
  ``repro tail`` follows a live stream) with monotonic timestamps and
  the writing pid.  Nesting is tracked per thread: ``span()`` is a
  context manager whose parent is whatever span encloses it on the same
  thread; ``begin()``/``end()`` are the explicit form for contexts a
  stack would mis-nest — the shard supervisor's interleaved slot
  coroutines own their span ids directly.
* :data:`NULL_TRACER` is the off plane: every method is a no-op and
  ``span()`` returns one shared, reusable context manager, so code can
  trace unconditionally and pay only an attribute call when obs is off.

Fork-safety: a tracer inherited across ``fork`` (worker pools, shard
processes spawned before the runtime was consulted) detects the pid
change on the next emit and reopens its own per-pid file instead of
interleaving writes on the parent's descriptor — the path template's
``{pid}`` placeholder is re-expanded.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

from repro.obs.events import encode_record


class _NullSpan:
    """The shared no-op context manager the null tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _NullTracer:
    """API-complete tracer that records nothing (the default plane)."""

    __slots__ = ()
    active = False

    def span(self, name: str, **tags):
        return _NULL_SPAN

    def begin(self, name: str, parent: int | None = None, **tags) -> int:
        return 0

    def end(self, span_id: int, name: str = "", **tags) -> None:
        return None

    def event(self, name: str, **tags) -> None:
        return None

    def close(self) -> None:
        return None


NULL_TRACER = _NullTracer()


class _Span:
    """Context manager pairing one begin record with its end record."""

    __slots__ = ("_tracer", "name", "id", "tags")

    def __init__(self, tracer: "Tracer", name: str, tags: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.tags = tags
        self.id = 0

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        stack = tracer._stack()
        parent = stack[-1] if stack else None
        self.id = tracer.begin(self.name, parent=parent, **self.tags)
        stack.append(self.id)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1] == self.id:
            stack.pop()
        tags = dict(self.tags)
        if exc_type is not None:
            tags["error"] = exc_type.__name__
        tracer.end(self.id, self.name, **tags)
        return False


class Tracer:
    """Append span/event records to one JSONL file.

    *path* may contain a ``{pid}`` placeholder, expanded at (re)open —
    the fork-safety hook.  The file opens lazily on first emit, so
    constructing a tracer (e.g. for a runtime that never fires) costs
    nothing on disk.
    """

    active = True

    def __init__(self, path: str | os.PathLike,
                 clock=time.monotonic) -> None:
        self._template = str(path)
        self._clock = clock
        self._file = None
        self._pid = 0
        self._next_id = 1
        self._lock = threading.Lock()
        self._local = threading.local()

    @property
    def path(self) -> Path:
        """The file the *current* process writes (pid expanded)."""
        return Path(self._template.format(pid=os.getpid()))

    # ------------------------------------------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _emit(self, kind: str, name: str, span_id: int,
              parent: int | None, tags: dict) -> None:
        pid = os.getpid()
        with self._lock:
            if self._file is None or pid != self._pid:
                # First emit, or we were forked: (re)open our own file.
                if self._file is not None:
                    self._file.close()
                path = Path(self._template.format(pid=pid))
                path.parent.mkdir(parents=True, exist_ok=True)
                self._file = open(  # noqa: SIM115 - held across emits
                    path, "a", encoding="utf-8", buffering=1
                )
                self._pid = pid
            record = {
                "v": 1,
                "t": round(self._clock(), 6),
                "pid": pid,
                "kind": kind,
                "name": name,
                "id": span_id,
                "parent": parent,
                "tags": tags,
            }
            self._file.write(encode_record(record) + "\n")

    # ------------------------------------------------------------------

    def span(self, name: str, **tags) -> _Span:
        """Context manager: begin on enter, end on exit, thread-nested."""
        return _Span(self, name, tags)

    def begin(self, name: str, parent: int | None = None, **tags) -> int:
        """Open a span explicitly; returns its id (pass to :meth:`end`)."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        self._emit("begin", name, span_id, parent, tags)
        return span_id

    def end(self, span_id: int, name: str = "", **tags) -> None:
        """Close a span opened by :meth:`begin` (or a ``span()`` exit)."""
        self._emit("end", name, span_id, None, tags)

    def event(self, name: str, **tags) -> None:
        """One instantaneous point record, parented to the enclosing
        ``span()`` on this thread (if any)."""
        stack = self._stack()
        self._emit("event", name, 0, stack[-1] if stack else None, tags)

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None
