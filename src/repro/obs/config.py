"""The observability member of the spec family.

An :class:`ObsSpec` configures *whether and how* a run is observed —
never *what it computes*: tracing and metrics are measurement-plane
state exactly like the trace store (:class:`~repro.api.spec.StoreSpec`),
so the spec's content fingerprint excludes it by construction and two
runs that differ only in observability produce digest-identical
artifacts (pinned by the obs golden tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import env


#: Default sampling cadence: one metrics sample per N committed
#: instructions.  At the default 20k window that is ~20 samples per cell
#: — enough to see occupancy/stall phases, cheap enough to be invisible.
DEFAULT_METRICS_EVERY = 1000

#: Default event/metrics directory when enabled without an explicit one.
DEFAULT_OBS_DIR = ".repro-obs"


@dataclass(frozen=True)
class ObsSpec:
    """Observability configuration for one run (default: fully off).

    ``enabled`` turns the plane on for the session executing the spec;
    ``dir`` is where event streams land (``None`` = ``REPRO_OBS_DIR`` or
    ``.repro-obs``); ``metrics_every`` is the pipeline-metrics sampling
    cadence in committed instructions (``0`` disables the metrics hub
    while keeping tracing).
    """

    enabled: bool = False
    dir: str | None = None
    metrics_every: int = DEFAULT_METRICS_EVERY

    def __post_init__(self) -> None:
        if self.metrics_every < 0:
            raise ValueError("metrics_every must be >= 0 (0 = no metrics)")

    @classmethod
    def from_env(cls) -> "ObsSpec":
        """``REPRO_OBS`` / ``REPRO_OBS_DIR`` / ``REPRO_METRICS_EVERY``."""
        return cls(
            enabled=env.obs_enabled(),
            dir=env.obs_dir_from_env(),
            metrics_every=env.metrics_every_from_env(),
        )
