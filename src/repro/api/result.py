"""Versioned, JSON-round-trippable result artifacts.

A :class:`RunResult` is what :meth:`Session.run` returns and what
``repro report`` / ``repro inspect`` consume: the spec that produced it
(embedded, so the artifact replays), its content fingerprint, one
:class:`CellResult` per (benchmark, mechanism, seed) cell carrying the
full :class:`~repro.pipeline.stats.Stats`, and host metadata for
provenance.  ``FORMAT`` is bumped on any incompatible layout change;
loaders reject artifacts from the future instead of misreading them.

The accessor surface (``outcome`` / ``ipc`` / ``speedup``) mirrors the
legacy :class:`~repro.harness.runner.ExperimentRunner`, so the figure
formatters — and the figure benches' assertions — read either source
unchanged.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import sys
from dataclasses import dataclass, field

from repro.api.spec import ExperimentSpec
from repro.harness.runner import BenchmarkOutcome
from repro.pipeline.simulator import SimulationResult
from repro.pipeline.stats import Stats

#: Artifact layout version.  Bump on incompatible changes; loaders
#: reject newer formats rather than guessing.
FORMAT = 1

#: Top-level sections this build understands.  Anything else a
#: same-format artifact carries is preserved verbatim in
#: ``RunResult.extra_sections`` (and re-emitted on save) so ``repro
#: inspect`` can say "section X: not understood" instead of the loader
#: failing opaquely — the forward-compat path the optional ``telemetry``
#: section itself arrived through.
KNOWN_SECTIONS = frozenset(
    {"format", "fingerprint", "digest", "spec", "meta", "cells",
     "telemetry"}
)


def host_metadata() -> dict[str, str]:
    """Provenance of the producing process (never part of any digest)."""
    import repro

    return {
        "repro_version": repro.__version__,
        "python": platform.python_version(),
        "implementation": sys.implementation.name,
        "platform": platform.platform(),
    }


@dataclass
class CellResult:
    """One (benchmark, mechanism, seed) cell's statistics."""

    benchmark: str
    mechanism: str
    seed: int
    stats: Stats

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "mechanism": self.mechanism,
            "seed": self.seed,
            "stats": dataclasses.asdict(self.stats),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CellResult":
        return cls(
            benchmark=payload["benchmark"],
            mechanism=payload["mechanism"],
            seed=payload["seed"],
            stats=Stats(**payload["stats"]),
        )


def cells_digest(cells) -> str:
    """Content digest over a collection of :class:`CellResult` values.

    The one digest definition shared by full :class:`RunResult`
    artifacts and the service layer's per-shard artifacts: sorted, so
    cell order (in-process sweep order, out-of-order shard completion)
    never changes it.
    """
    payload = json.dumps(
        sorted(
            (cell.benchmark, cell.mechanism, cell.seed,
             dataclasses.asdict(cell.stats))
            for cell in cells
        ),
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass
class RunResult:
    """The versioned artifact of one executed :class:`ExperimentSpec`."""

    spec: ExperimentSpec
    cells: list[CellResult]
    fingerprint: str = ""
    format: int = FORMAT
    meta: dict[str, str] = field(default_factory=dict)
    #: Schema-versioned observability section (DESIGN.md §13): metric
    #: series per simulated cell, the event-stream location, shard
    #: lifecycle summaries.  ``None`` (the default, and the only value
    #: an unobserved run produces) is omitted from the serialised form,
    #: and the section never joins :meth:`digest` — so obs on/off runs
    #: of one spec are digest-identical and obs-off artifacts are
    #: byte-identical to pre-telemetry builds.
    telemetry: dict | None = None
    #: Unknown same-format top-level sections, preserved for inspection
    #: and re-emitted on save (never interpreted, never digested).
    extra_sections: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.fingerprint:
            self.fingerprint = self.spec.fingerprint()
        if not self.meta:
            self.meta = host_metadata()
        self._index: dict[tuple[str, str], BenchmarkOutcome] = {}
        for cell in self.cells:
            key = (cell.benchmark, cell.mechanism)
            outcome = self._index.get(key)
            if outcome is None:
                outcome = BenchmarkOutcome(cell.benchmark, cell.mechanism)
                self._index[key] = outcome
            outcome.results.append(SimulationResult(
                cell.benchmark, cell.mechanism, cell.seed, cell.stats
            ))

    # ------------------------------------------------------------------
    # Accessors (ExperimentRunner-compatible)
    # ------------------------------------------------------------------

    @property
    def benchmarks(self) -> list[str]:
        return list(self.spec.benchmarks)

    def mechanism_names(self) -> list[str]:
        return self.spec.mechanism_names()

    def outcome(self, benchmark: str, mechanism_name: str) -> BenchmarkOutcome:
        return self._index[(benchmark, mechanism_name)]

    def ipc(self, benchmark: str, mechanism_name: str) -> float:
        return self.outcome(benchmark, mechanism_name).ipc

    def speedup(
        self,
        benchmark: str,
        mechanism_name: str,
        baseline_name: str = "baseline",
    ) -> float:
        """Relative speedup of *mechanism_name* over *baseline_name*."""
        base = self.outcome(benchmark, baseline_name).ipc
        if base <= 0:
            return 0.0
        return self.outcome(benchmark, mechanism_name).ipc / base - 1.0

    # ------------------------------------------------------------------
    # Identity and serialisation
    # ------------------------------------------------------------------

    def digest(self) -> str:
        """Content digest over every cell's statistics.

        Two runs of the same spec — legacy runner or Session, sequential
        or parallel, cold or memoised — must produce the same digest;
        the golden tests pin this against the legacy bench path.  Host
        metadata and the store configuration never participate.
        """
        return cells_digest(self.cells)

    def to_dict(self) -> dict:
        payload = {
            "format": self.format,
            "fingerprint": self.fingerprint,
            "digest": self.digest(),
            "spec": self.spec.to_dict(),
            "meta": dict(self.meta),
            "cells": [cell.to_dict() for cell in self.cells],
        }
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry
        for key, value in self.extra_sections.items():
            payload.setdefault(key, value)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RunResult":
        fmt = payload.get("format")
        if not isinstance(fmt, int) or fmt > FORMAT:
            raise ValueError(
                f"artifact format {fmt!r} is newer than this build "
                f"understands (max {FORMAT})"
            )
        spec = ExperimentSpec.from_dict(payload["spec"])
        telemetry = payload.get("telemetry")
        if telemetry is not None and not isinstance(telemetry, dict):
            raise ValueError("telemetry section must be a JSON object")
        result = cls(
            spec=spec,
            cells=[CellResult.from_dict(c) for c in payload["cells"]],
            fingerprint=payload["fingerprint"],
            format=fmt,
            meta=dict(payload.get("meta", {})),
            telemetry=telemetry,
            extra_sections={
                key: value for key, value in payload.items()
                if key not in KNOWN_SECTIONS
            },
        )
        if result.fingerprint != spec.fingerprint():
            raise ValueError(
                "artifact fingerprint does not match its embedded spec "
                f"({result.fingerprint} vs {spec.fingerprint()}); the "
                "file was edited or produced by an incompatible build"
            )
        recorded = payload.get("digest")
        if recorded is None:
            # Optional would be a bypass: strip the key, edit the cells.
            raise ValueError(
                "artifact has no digest field; refusing to trust its cells"
            )
        if recorded != result.digest():
            raise ValueError(
                "artifact digest does not match its cells "
                f"({recorded} vs {result.digest()}); the stats payload "
                "was altered"
            )
        return result

    def to_json(self, indent: int | None = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        """Write the artifact crash-safely (temp file + ``os.replace``).

        An interrupted ``repro sweep --json`` / ``repro figures --out``
        can therefore never leave a half-written artifact that a later
        ``repro report`` chokes on — the old file (or no file) survives
        instead.
        """
        from repro.common.atomicio import atomic_write_text

        atomic_write_text(path, self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "RunResult":
        from pathlib import Path

        return cls.from_json(Path(path).read_text(encoding="utf-8"))
