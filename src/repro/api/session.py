"""The :class:`Session` facade: specs in, versioned artifacts out.

A session owns the infrastructure — the shared trace store, the
memoising sweep engine and (through it) the worker pool — and exposes
exactly one operation: ``run(spec) -> RunResult``.  It routes into the
existing :class:`~repro.harness.sweep.SweepEngine`, so every guarantee
that engine gives (interpret once per machine, simulate each unique
cell once per process, deterministic parallel merge) holds unchanged
and the stats are bit-identical to the legacy
:class:`~repro.harness.runner.ExperimentRunner` path.
"""

from __future__ import annotations

from repro.api.result import CellResult, RunResult
from repro.api.spec import ExperimentSpec, StoreSpec
from repro.obs import runtime as obs_runtime
from repro.harness.sweep import SweepEngine, shared_engine
from repro.pipeline.config import CoreConfig
from repro.pipeline.simulator import Simulator
from repro.workloads.store import TraceStore


class Session:
    """Owns the engine/store; runs :class:`ExperimentSpec` values.

    The default session shares the process-wide engine (and with it the
    persistent trace store and cell memo) with every other default
    session, bench and example in the process.  Pass a
    :class:`StoreSpec` or a non-default :class:`CoreConfig` to get a
    private engine instead — e.g. a throwaway store root in tests.
    """

    def __init__(
        self,
        store: StoreSpec | None = None,
        core_config: CoreConfig | None = None,
        engine: SweepEngine | None = None,
    ) -> None:
        if engine is not None:
            if store is not None:
                raise ValueError("pass a store spec or an engine, not both")
            self.engine = engine
        elif store is None:
            self.engine = shared_engine(core_config)
        else:
            root = store.resolve_root()
            self.engine = SweepEngine(
                simulator=Simulator(
                    core_config,
                    trace_store=(
                        TraceStore(root) if root is not None else None
                    ),
                    columnar=store.columnar,
                ),
                # Pinned, not env-following: an explicit spec always
                # wins over ambient state (shared-engine sessions follow
                # the environment, which for_spec only allows when the
                # spec agrees with it anyway).
                result_lake=store.result_lake,
            )
        self.simulator = self.engine.simulator

    @classmethod
    def for_spec(cls, spec: ExperimentSpec,
                 core_config: CoreConfig | None = None) -> "Session":
        """A session honouring *spec*'s store configuration.

        The shared engine is used only when the spec's store agrees
        with what the environment resolves to anyway — then sharing is
        observationally equivalent and buys the cross-run memo.  Any
        disagreement (an explicit path, a pinned ``columnar`` that the
        environment contradicts) gets a private engine with the spec's
        settings, so an explicit spec always wins over ambient state.
        (One documented exception: ``path=None`` means "the default
        cache location" and resolves through the environment, so a
        process that disabled persistence is never forced to write the
        user's cache — see :meth:`StoreSpec.resolve_root`.)
        """
        if spec.store == StoreSpec() and StoreSpec.from_env() == spec.store:
            return cls(core_config=core_config)
        return cls(store=spec.store, core_config=core_config)

    # ------------------------------------------------------------------

    def run(self, spec: ExperimentSpec) -> RunResult:
        """Execute every cell of *spec* and return the artifact.

        The spec is fully resolved — the environment is never consulted
        here — so the recorded window/sampling/seeds are exactly what
        ran, and running the same spec twice (or on another session
        with the same engine state) yields digest-identical artifacts.
        """
        # The telemetry plane (DESIGN.md §13) activates for this scope
        # when the spec enables it; otherwise REPRO_OBS steers it like
        # any other plane variable.  Off (the default) is free: no
        # runtime resolves and the artifact carries no telemetry.
        with obs_runtime.activated(spec.obs):
            swept = self.engine.sweep(
                list(spec.benchmarks),
                list(spec.mechanisms),
                seeds=list(spec.seeds),
                warmup=spec.window.warmup,
                measure=spec.window.measure,
                workers=spec.workers,
                sampling=spec.sampling,
            )
            cells = [
                CellResult(benchmark, name, result.seed, result.stats)
                for (benchmark, name), results in swept.items()
                for result in results
            ]
            result = RunResult(spec=spec, cells=cells)
            active = obs_runtime.current()
            if active is not None:
                result.telemetry = active.telemetry_payload()
        return result

    def run_sharded(
        self,
        spec: ExperimentSpec,
        shards: int | None = None,
        supervisor=None,
    ):
        """Execute *spec* through the fault-tolerant sharded service.

        Shards fan out to worker processes under a
        :class:`~repro.service.supervisor.ShardSupervisor` (deadlines,
        retry with backoff, reassignment, quarantine — DESIGN.md §11)
        and merge digest-verified; the returned
        :class:`~repro.service.supervisor.ShardedSweepResult` is
        digest-identical to :meth:`run` when complete and carries
        explicit holes otherwise.  ``shards <= 1`` (and a grid too small
        to split) degrades gracefully to the in-process engine path.
        """
        from repro.service.supervisor import ShardSupervisor

        if supervisor is None:
            supervisor = ShardSupervisor()
        count = spec.shards if shards is None else shards
        return supervisor.run(spec, shards=count)

    def run_clustered(
        self,
        spec: ExperimentSpec,
        hosts=None,
        shards: int | None = None,
    ):
        """Execute *spec* across remote ``repro serve --tcp`` hosts.

        *hosts* is ``"a:9091,b:9091"`` (or a sequence of
        :class:`~repro.cluster.hosts.HostSpec`); ``None`` reads
        ``REPRO_HOSTS``.  The shards fan out to the host pool through a
        :class:`~repro.cluster.dispatch.RemoteDispatcher` under the same
        :class:`~repro.service.supervisor.ShardSupervisor` retry ladder
        as :meth:`run_sharded`, and hosts opportunistically publish lake
        entries back so this session's result lake goes warm.  The
        merged result is digest-identical to :meth:`run` when complete,
        whatever crashed along the way (DESIGN.md §15).
        """
        from repro.cluster.dispatch import run_clustered

        return run_clustered(spec, hosts=hosts, shards=shards, session=self)


def run(spec: ExperimentSpec) -> RunResult:
    """One-shot convenience: build the right session and run *spec*."""
    return Session.for_spec(spec).run(spec)
