"""repro.api — the typed front door (DESIGN.md §10).

One import surface for the whole experiment lifecycle::

    from repro.api import ExperimentSpec, Session

    spec = ExperimentSpec.from_env(benchmarks=["mcf"])   # env overlay, once
    result = Session().run(spec)                         # shared engine
    result.save("mcf.json")                              # versioned artifact

Submodules: :mod:`repro.api.env` (the single ``REPRO_*`` reader),
:mod:`repro.api.spec` (the frozen spec family), :mod:`repro.api.session`
(the facade over store/engine/worker pool), :mod:`repro.api.result`
(versioned artifacts), :mod:`repro.api.figures` (declarative figure
specs + formatters), :mod:`repro.api.cli` (the ``repro`` console entry
point) and :mod:`repro.api.codec` (the config-tree JSON codec).

Re-exports resolve lazily so low-level modules (``pipeline.simulator``
and friends) can import :mod:`repro.api.env` without dragging the whole
facade — and its harness dependencies — into their import graph.
"""

from __future__ import annotations

_EXPORTS = {
    "ExperimentSpec": "repro.api.spec",
    "SamplingSpec": "repro.api.spec",
    "StoreSpec": "repro.api.spec",
    "WindowSpec": "repro.api.spec",
    "default_mechanisms": "repro.api.spec",
    "from_env": "repro.api.spec",
    "Session": "repro.api.session",
    "run": "repro.api.session",
    "CellResult": "repro.api.result",
    "RunResult": "repro.api.result",
    "run_figure": "repro.api.figures",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    target = _EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
