"""JSON codec for the frozen configuration trees.

:class:`~repro.pipeline.config.MechanismConfig` and friends are trees of
frozen dataclasses, enums, tuples and scalars.  Serialising them with a
hand-written schema would rot the first time a config grows a field, so
the codec is generic: dataclasses encode as ``{"$dc": "module:Class",
**init_fields}``, enums as ``{"$enum": "module:Class", "name": ...}``,
tuples as ``{"$tuple": [...]}``; everything else must already be JSON.

Decoding imports classes by dotted path but only from inside the
``repro`` package — an artifact can never instruct the loader to import
arbitrary code.  ``init=False`` dataclass fields (derived values such as
:class:`~repro.predictors.confidence.ConfidenceScale` probability
tables) are skipped on encode and recomputed by ``__post_init__`` on
decode, so round-tripped objects compare equal to the originals.
"""

from __future__ import annotations

import dataclasses
import enum
import importlib

_DC_KEY = "$dc"
_ENUM_KEY = "$enum"
_TUPLE_KEY = "$tuple"


def _class_ref(cls: type) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def _resolve(ref: str) -> type:
    module_name, _, qualname = ref.partition(":")
    if not (module_name == "repro" or module_name.startswith("repro.")):
        raise ValueError(
            f"refusing to import {ref!r}: artifacts may only reference "
            "classes inside the repro package"
        )
    obj = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def encode(value):
    """Recursively convert *value* to JSON-dumpable primitives."""
    if isinstance(value, enum.Enum):
        return {_ENUM_KEY: _class_ref(type(value)), "name": value.name}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: encode(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if f.init
        }
        return {_DC_KEY: _class_ref(type(value)), **fields}
    if isinstance(value, tuple):
        return {_TUPLE_KEY: [encode(item) for item in value]}
    if isinstance(value, list):
        return [encode(item) for item in value]
    if isinstance(value, dict):
        return {str(key): encode(item) for key, item in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot encode {type(value).__name__}: {value!r}")


def decode(value):
    """Inverse of :func:`encode`."""
    if isinstance(value, dict):
        if _ENUM_KEY in value:
            return _resolve(value[_ENUM_KEY])[value["name"]]
        if _DC_KEY in value:
            cls = _resolve(value[_DC_KEY])
            fields = {
                key: decode(item)
                for key, item in value.items()
                if key != _DC_KEY
            }
            return cls(**fields)
        if _TUPLE_KEY in value:
            return tuple(decode(item) for item in value[_TUPLE_KEY])
        return {key: decode(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode(item) for item in value]
    return value
