"""The single place ``REPRO_*`` environment variables are read.

Before this module, window sizes, seed counts, sampling parameters,
store roots, the columnar switch and worker counts were each parsed
independently in whichever module happened to need them (DESIGN.md §10).
Every one of those reads now funnels through here: the typed helpers
below are the implementation, the legacy helpers (``default_windows``,
``default_seeds``, ``SamplingConfig.from_environment``, …) are
deprecation shims delegating to them, and :func:`warn_unknown_vars` is
the typo guard that tells you ``REPRO_MESURE=40000`` did nothing.

Only the standard library is imported at module level so this module is
importable from anywhere in the package (including the modules the rest
of :mod:`repro.api` is built on) without cycles.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path

#: Every recognised ``REPRO_*`` variable -> (spec field / consumer, meaning).
#: This table *is* the migration map rendered by ``repro inspect --env``
#: and the README; keep it exhaustive or the typo guard cries wolf.
KNOWN_VARS: dict[str, tuple[str, str]] = {
    "REPRO_WARMUP": (
        "ExperimentSpec.window.warmup", "warm-up instructions (default 8000)"
    ),
    "REPRO_MEASURE": (
        "ExperimentSpec.window.measure",
        "measured instructions (default 20000)",
    ),
    "REPRO_SCALE": (
        "ExperimentSpec.window (folded in)",
        "multiplier applied to both windows (default 1.0)",
    ),
    "REPRO_SEEDS": (
        "ExperimentSpec.seeds", "checkpoints per benchmark (default 1)"
    ),
    "REPRO_SAMPLING": (
        "ExperimentSpec.sampling.enabled", "enable interval sampling"
    ),
    "REPRO_INTERVAL": (
        "ExperimentSpec.sampling.interval",
        "instructions per sampling interval (default 18500)",
    ),
    "REPRO_DETAIL_RATIO": (
        "ExperimentSpec.sampling.detail_ratio",
        "measured fraction of each interval (default 0.0811)",
    ),
    "REPRO_DETAIL_WARMUP": (
        "ExperimentSpec.sampling.detail_warmup",
        "detailed ramp before each measured span (default 768)",
    ),
    "REPRO_TRACE_STORE": (
        "ExperimentSpec.store.path",
        "trace/checkpoint store root ('off' disables)",
    ),
    "REPRO_COLUMNAR": (
        "ExperimentSpec.store.columnar",
        "packed-column runtime trace plane (default on)",
    ),
    "REPRO_RESULT_LAKE": (
        "ExperimentSpec.store.result_lake",
        "spec-level result lake: serve cells from the store (default off)",
    ),
    "REPRO_GENRENAME": (
        "pipeline.genrename install gate",
        "generated per-mechanism rename/issue loops (default on)",
    ),
    "REPRO_VECWARM": (
        "sampling.vecwarm warmer selection",
        "NumPy-vectorised functional warming (default on; needs numpy)",
    ),
    "REPRO_WORKERS": (
        "ExperimentSpec.workers", "parallel sweep workers (default 1)"
    ),
    "REPRO_SHARDS": (
        "ExperimentSpec.shards",
        "sharded sweep shard count (0 = in-process, default 0)",
    ),
    "REPRO_FAULTS": (
        "service.ShardSupervisor fault plan",
        "deterministic shard fault injection, e.g. 'crash:0,corrupt:1'",
    ),
    "REPRO_SHARD_TIMEOUT": (
        "service.ShardSupervisor deadline",
        "per-shard wall-clock deadline in seconds (default 120)",
    ),
    "REPRO_HOSTS": (
        "cluster.HostPool hosts",
        "remote sweep hosts, e.g. 'a:9091,b:9091' (default none)",
    ),
    "REPRO_CONNECT_TIMEOUT": (
        "cluster client dial deadline",
        "per-dial connect timeout in seconds (default 5)",
    ),
    "REPRO_FULL": (
        "ExperimentSpec.benchmarks (from_env default)",
        "benches/CLI: all 29 benchmarks instead of the representative 13",
    ),
    "REPRO_OBS": (
        "ExperimentSpec.obs.enabled",
        "telemetry plane: span/event tracing + pipeline metrics "
        "(default off; off = bit-identical, overhead-free)",
    ),
    "REPRO_OBS_DIR": (
        "ExperimentSpec.obs.dir",
        "event-stream directory (default .repro-obs)",
    ),
    "REPRO_METRICS_EVERY": (
        "ExperimentSpec.obs.metrics_every",
        "pipeline-metrics sample cadence in committed instructions "
        "(default 1000; 0 = tracing only)",
    ),
    "REPRO_PERF_LABEL": (
        "bench_perf_throughput CURRENT_LABEL",
        "ad-hoc trajectory label override",
    ),
}

#: Values that mean "off" wherever a variable acts as a switch.
OFF_VALUES = ("", "0", "off", "no", "none", "false", "disabled")

# Unknown names already warned about (warn once per name per process).
_warned_unknown: set[str] = set()


class UnknownReproVariable(UserWarning):
    """An environment variable looks like ours but is not recognised."""


def flag(value: str | None, default: bool = False) -> bool:
    """Interpret a switch-style variable value (``None`` = unset)."""
    if value is None:
        return default
    return value.strip().lower() not in OFF_VALUES


def warn_unknown_vars(
    environ: dict[str, str] | None = None, strict: bool = False
) -> list[str]:
    """The typo guard: flag ``REPRO_*`` names nothing reads.

    Returns the unknown names found; warns (:class:`UnknownReproVariable`,
    once per name per process) or raises with ``strict=True``.  Called by
    :meth:`ExperimentSpec.from_env` and the ``repro`` CLI so a
    misspelled variable can never silently configure nothing.
    """
    environ = os.environ if environ is None else environ
    unknown = sorted(
        name for name in environ
        if name.startswith("REPRO_") and name not in KNOWN_VARS
    )
    if unknown and strict:
        raise ValueError(
            f"unrecognized REPRO_* variable(s): {', '.join(unknown)}; "
            f"known names: {', '.join(sorted(KNOWN_VARS))}"
        )
    for name in unknown:
        if name in _warned_unknown:
            continue
        _warned_unknown.add(name)
        warnings.warn(
            f"environment variable {name} is not recognized and has no "
            f"effect (known REPRO_* names: {', '.join(sorted(KNOWN_VARS))})",
            UnknownReproVariable,
            stacklevel=2,
        )
    return unknown


def deprecated(old: str, new: str) -> None:
    """Emit the shim warning for a legacy env-reading helper."""
    warnings.warn(
        f"{old} is deprecated; use {new} (repro.api is the single env "
        "front door since PR 5)",
        DeprecationWarning,
        stacklevel=3,
    )


# ---------------------------------------------------------------------------
# Typed readers (one per spec field group)
# ---------------------------------------------------------------------------


def window_from_env(
    default_warmup: int = 8000, default_measure: int = 20000
) -> tuple[int, int]:
    """(warmup, measure) instruction counts after ``REPRO_SCALE``.

    The defaults are overridable because the figure benches historically
    default to a slightly larger measured window (24000) than the
    library (20000); both read the same variables.
    """
    scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    warmup = int(os.environ.get("REPRO_WARMUP", str(default_warmup)))
    measure = int(os.environ.get("REPRO_MEASURE", str(default_measure)))
    return max(256, int(warmup * scale)), max(512, int(measure * scale))


def seeds_from_env() -> list[int]:
    """Checkpoint seeds (paper: 10 checkpoints; default here: 1)."""
    return list(range(1, int(os.environ.get("REPRO_SEEDS", "1")) + 1))


def workers_from_env() -> int:
    """Sweep worker processes: ``REPRO_WORKERS`` or 1 (parallelism stays
    opt-in — implicit fan-out would surprise profiling and CI timing)."""
    configured = os.environ.get("REPRO_WORKERS")
    if configured:
        return max(1, int(configured))
    return 1


def shards_from_env() -> int:
    """Sharded-sweep shard count: ``REPRO_SHARDS`` or 0 (in-process).

    Like workers, sharding stays opt-in — 0 (or 1) means the classic
    in-process :class:`~repro.harness.sweep.SweepEngine` path.
    """
    configured = os.environ.get("REPRO_SHARDS")
    if configured:
        return max(0, int(configured))
    return 0


def shard_timeout_from_env() -> float:
    """Per-shard wall-clock deadline in seconds (``REPRO_SHARD_TIMEOUT``).

    A shard attempt that exceeds the deadline is treated as hung: its
    worker is killed and the shard is re-dispatched (with backoff) up to
    the supervisor's attempt budget.  The sweep engine's bounded
    parallel-prefill ``get`` reuses the same deadline.
    """
    configured = os.environ.get("REPRO_SHARD_TIMEOUT")
    if configured:
        return max(0.1, float(configured))
    return 120.0


def faults_from_env() -> str | None:
    """The raw ``REPRO_FAULTS`` fault-plan text (``None`` = no faults).

    Parsed by :meth:`repro.service.faults.FaultPlan.parse`; read lazily
    by the supervisor so the plan travels to worker processes as data,
    never as ambient environment state.
    """
    configured = os.environ.get("REPRO_FAULTS")
    if configured is None or not configured.strip():
        return None
    return configured


def hosts_from_env() -> str | None:
    """The raw ``REPRO_HOSTS`` host-list text (``None`` = no cluster).

    Parsed by :func:`repro.cluster.hosts.parse_hosts`; read lazily by
    the cluster front door so the host list travels as data, never as
    ambient state a remote worker might re-read.
    """
    configured = os.environ.get("REPRO_HOSTS")
    if configured is None or not configured.strip():
        return None
    return configured


def connect_timeout_from_env() -> float:
    """Per-dial connect timeout in seconds (``REPRO_CONNECT_TIMEOUT``).

    Bounds only the TCP/Unix *connect* — request I/O has its own, much
    longer deadline — so an unreachable host is detected in seconds,
    not after a full shard deadline.
    """
    configured = os.environ.get("REPRO_CONNECT_TIMEOUT")
    if configured:
        return max(0.1, float(configured))
    return 5.0


def columnar_from_env() -> bool:
    """Whether the runtime consumes packed columns (default on).

    ``REPRO_COLUMNAR=0`` selects the legacy eager-``DynInst`` trace
    plane — kept alive as the differential-testing oracle (DESIGN.md §9).
    """
    return flag(os.environ.get("REPRO_COLUMNAR"), default=True)


def genrename_enabled() -> bool:
    """Whether pipelines install the generated rename/issue loops.

    ``REPRO_GENRENAME=0`` keeps the generic ``Pipeline._rename`` /
    ``_issue`` methods live — the differential oracle the golden
    equivalence suite pins the generated plane against (DESIGN.md §12).
    """
    return flag(os.environ.get("REPRO_GENRENAME"), default=True)


def vecwarm_enabled() -> bool:
    """Whether sampled runs use the NumPy-vectorised functional warmer.

    ``REPRO_VECWARM=0`` (or NumPy being unavailable) selects the pure-
    Python ``FunctionalWarmer`` — the bit-identical fallback plane
    (DESIGN.md §12).
    """
    return flag(os.environ.get("REPRO_VECWARM"), default=True)


def store_setting_from_env() -> tuple[str | None, bool]:
    """``REPRO_TRACE_STORE`` as ``(explicit path or None, enabled)``.

    Unset means "the default cache location" — reported as ``(None,
    True)`` rather than a materialised path, so specs built from a
    pristine environment stay equal to the default :class:`StoreSpec`
    (and no absolute home-directory path leaks into artifacts).
    """
    configured = os.environ.get("REPRO_TRACE_STORE")
    if configured is None:
        return None, True
    if configured.strip().lower() in OFF_VALUES:
        return None, False
    return configured, True


def store_root_from_env() -> Path | None:
    """Trace-store directory (``None`` = persistence disabled).

    ``REPRO_TRACE_STORE`` overrides; otherwise ``~/.cache/repro/traces``
    honouring ``XDG_CACHE_HOME``.
    """
    path, enabled = store_setting_from_env()
    if not enabled:
        return None
    if path is not None:
        return Path(path)
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home) if cache_home else Path.home() / ".cache"
    return base / "repro" / "traces"


def result_lake_from_env() -> bool:
    """Whether the spec-level result lake is on (``REPRO_RESULT_LAKE``).

    Default off — off is today's behaviour, bit-identical (CI-gated).
    On, the sweep engine consults the trace store for per-cell ``Stats``
    artifacts before simulating and populates it after (DESIGN.md §14);
    served cells are digest-identical to fresh simulation, so the lake
    never joins any fingerprint.
    """
    return flag(os.environ.get("REPRO_RESULT_LAKE"))


def obs_enabled() -> bool:
    """Whether the telemetry plane is on (``REPRO_OBS``; default off).

    Off is the contract, not just the default: with the variable unset
    the pipeline runs the identical step sequence, stats and artifact
    digests are bit-identical, and no event file is ever opened
    (DESIGN.md §13) — gated exactly like ``REPRO_COLUMNAR=0`` gates the
    trace planes.
    """
    return flag(os.environ.get("REPRO_OBS"))


def obs_dir_from_env() -> str | None:
    """Event-stream directory (``REPRO_OBS_DIR``; ``None`` = default)."""
    configured = os.environ.get("REPRO_OBS_DIR")
    if configured is None or not configured.strip():
        return None
    return configured


def metrics_every_from_env(default: int = 1000) -> int:
    """Pipeline-metrics cadence in committed instructions
    (``REPRO_METRICS_EVERY``; 0 disables metrics, keeping tracing)."""
    configured = os.environ.get("REPRO_METRICS_EVERY")
    if configured is None or not configured.strip():
        return default
    return max(0, int(configured))


def full_benchmarks_from_env() -> bool:
    """``REPRO_FULL``: run all 29 benchmarks, not the representative 13."""
    return flag(os.environ.get("REPRO_FULL"))


def sampling_from_env():
    """Resolve the sampled-simulation variables into a
    :class:`~repro.sampling.config.SamplingConfig` (DESIGN.md §8)."""
    from repro.sampling.config import SamplingConfig

    return SamplingConfig(
        enabled=flag(os.environ.get("REPRO_SAMPLING")),
        interval=int(os.environ.get("REPRO_INTERVAL", "18500")),
        detail_ratio=float(os.environ.get("REPRO_DETAIL_RATIO", "0.0811")),
        detail_warmup=int(os.environ.get("REPRO_DETAIL_WARMUP", "768")),
    )
