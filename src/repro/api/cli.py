"""``repro`` — the single console front door.

Subcommands::

    repro sweep    run (or smoke-gate) a benchmark × mechanism sweep
    repro perf     simulated-KIPS throughput harness (+ CI smoke gate)
    repro figures  regenerate the paper's figures from declarative specs
    repro report   render a stored RunResult artifact
    repro inspect  artifact provenance / telemetry / event logs / env overlay
    repro profile  per-stage wall attribution (+ the obs overhead gate)
    repro tail     follow a live service's event stream (DESIGN.md §13)
    repro serve    sweep service on a local socket: spec JSON in, artifact out

Every run subcommand builds an :class:`~repro.api.spec.ExperimentSpec`
through the one environment overlay (explicit flag beats ``REPRO_*``
beats default) and executes it through a
:class:`~repro.api.session.Session`, so a CLI invocation, a bench and a
library call are the same experiment value — fingerprint and all.

The pre-PR 5 ``repro-sweep`` / ``repro-perf`` entry points survive as
deprecated aliases of the underlying module CLIs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.api import env as api_env
from repro.api.figures import FIGURE_NAMES, render_figure, run_figure
from repro.api.result import RunResult
from repro.api.session import Session
from repro.api.spec import ExperimentSpec, StoreSpec, WindowSpec
from repro.harness.reporting import Table, format_ipc, harmonic_mean
from repro.pipeline.config import MECHANISM_PRESETS, MechanismConfig

PROG = "repro"


# ---------------------------------------------------------------------------
# Shared rendering
# ---------------------------------------------------------------------------


def _render_result(result: RunResult) -> str:
    """Benchmark × mechanism IPC table (speedup vs baseline when present)."""
    have_baseline = "baseline" in result.mechanism_names()
    headers = ["benchmark", "mechanism", "IPC"]
    if have_baseline:
        headers.append("vs baseline")
    table = Table(headers)
    for benchmark in result.benchmarks:
        for name in result.mechanism_names():
            try:
                outcome = result.outcome(benchmark, name)
            except KeyError:
                # A quarantined shard's hole in a partial sharded result.
                row = [benchmark, name, "(hole)"]
                if have_baseline:
                    row.append("-")
                table.add_row(*row)
                continue
            row = [benchmark, name, format_ipc(outcome.merged_stats[0])
                   if len(outcome.results) == 1 else f"{outcome.ipc:.3f}"]
            if have_baseline:
                speedup = "-"
                if name != "baseline":
                    try:
                        speedup = (
                            f"{100 * result.speedup(benchmark, name):+.1f}%"
                        )
                    except KeyError:
                        speedup = "(hole)"
                row.append(speedup)
            table.add_row(*row)
    return table.render()


def _spec_summary(spec: ExperimentSpec) -> str:
    sampling = spec.sampling
    return "\n".join([
        f"fingerprint : {spec.fingerprint()}",
        f"benchmarks  : {len(spec.benchmarks)} "
        f"({', '.join(spec.benchmarks[:6])}"
        + (", ..." if len(spec.benchmarks) > 6 else "") + ")",
        f"mechanisms  : {', '.join(spec.mechanism_names())}",
        f"seeds       : {list(spec.seeds)}",
        f"window      : warmup {spec.window.warmup}, "
        f"measure {spec.window.measure}",
        f"sampling    : " + (
            f"interval {sampling.interval}, detail {sampling.detail_ratio}, "
            f"ramp {sampling.detail_warmup}" if sampling.active else "off"
        ),
        f"store       : "
        + ("disabled" if not spec.store.enabled
           else (spec.store.path or "default cache"))
        + f", columnar {'on' if spec.store.columnar else 'off'}"
        + f", lake {'on' if spec.store.result_lake else 'off'}",
        f"workers     : {spec.workers}",
        f"shards      : {spec.shards if spec.shards > 1 else 'in-process'}",
        f"cells       : {spec.cells}",
    ])


def _mechanisms_from_args(names: list[str] | None):
    if not names:
        return None
    return [MechanismConfig.preset(name) for name in names]


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def _print_sharded_outcome(outcome) -> None:
    """The sharded/clustered fault story, shared by both sweep paths."""
    print(f"\n{outcome.mode} over {len(outcome.attempts)} shard(s), "
          f"{sum(outcome.attempts.values())} attempt(s)")
    for label, report in sorted(outcome.host_reports.items()):
        print(f"  host {label}: {report.get('status')}, "
              f"{report.get('dispatched', 0)} dispatch(es), "
              f"{report.get('failures', 0)} failure(s)"
              + (f" ({report['reason']})" if report.get("reason") else ""))
    for index, report in sorted(outcome.shard_reports.items()):
        if report.attempts <= 1 and not report.failure_kinds:
            continue
        kinds = ", ".join(report.failure_kinds) or "none"
        print(f"  shard {index}: {report.attempts} attempt(s), "
              f"failures [{kinds}], "
              f"backoff {report.backoff_seconds:.2f}s"
              + (", QUARANTINED" if report.quarantined else ""))
    for line in outcome.failures:
        print(f"  fault survived: {line}", file=sys.stderr)


def _cmd_sweep(args) -> int:
    if args.smoke:
        ignored = [
            flag for flag, value in (
                ("--benchmark", args.benchmarks),
                ("--mechanism", args.mechanisms),
                ("--seeds", args.seeds), ("--warmup", args.warmup),
                ("--measure", args.measure), ("--workers", args.workers),
                ("--json", args.json),
            ) if value is not None
        ]
        if ignored:
            print("repro sweep --smoke runs a fixed gate; it cannot take "
                  f"{', '.join(ignored)}", file=sys.stderr)
            return 2
        if args.hosts is not None:
            # The loopback-cluster gate: two real `repro serve --tcp`
            # children, an injected host crash and a corrupt artifact,
            # and the merge must still be digest-identical in-process.
            if args.hosts != "loopback":
                print("repro sweep --smoke --hosts runs the loopback "
                      "cluster gate; the only accepted value is "
                      "'loopback'", file=sys.stderr)
                return 2
            from repro.cluster.smoke import cluster_smoke

            return cluster_smoke()
        if args.shards is not None:
            # The sharded-service gate: a fault-injected sharded run
            # (REPRO_FAULTS) must merge digest-identical to in-process.
            from repro.service.smoke import sharded_smoke

            return sharded_smoke(shards=args.shards)
        from repro.harness import sweep as sweep_module

        smoke_args = (
            ["--smoke"]
            + (["--sampled"] if args.sampled else [])
            + (["--lake"] if args.lake else [])
        )
        return sweep_module.main(smoke_args)
    sampling = None
    store = None
    from dataclasses import replace

    if args.sampled:
        sampling = replace(api_env.sampling_from_env(), enabled=True)
    if args.lake:
        store = replace(StoreSpec.from_env(), result_lake=True)
    try:
        spec = ExperimentSpec.from_env(
            benchmarks=args.benchmarks,
            mechanisms=_mechanisms_from_args(args.mechanisms),
            seeds=list(range(1, args.seeds + 1)) if args.seeds else None,
            warmup=args.warmup,
            measure=args.measure,
            sampling=sampling,
            store=store,
            workers=args.workers,
            shards=args.shards,
        )
    except (TypeError, ValueError) as error:
        print(f"repro sweep: {error}", file=sys.stderr)
        return 2
    print(_spec_summary(spec))
    session = Session.for_spec(spec)
    holes = ()
    if args.hosts is not None:
        try:
            outcome = session.run_clustered(spec, hosts=args.hosts)
        except ValueError as error:
            print(f"repro sweep: {error}", file=sys.stderr)
            return 2
        result, holes = outcome.result, outcome.holes
        _print_sharded_outcome(outcome)
    elif spec.shards > 1:
        outcome = session.run_sharded(spec)
        result, holes = outcome.result, outcome.holes
        _print_sharded_outcome(outcome)
    else:
        result = session.run(spec)
    print()
    print(_render_result(result))
    if holes:
        print(f"\nPARTIAL RESULT: {len(holes)} cell(s) lost to "
              "quarantined shards:", file=sys.stderr)
        for benchmark, mechanism, seed in holes:
            print(f"  hole: {benchmark} × {mechanism} × seed {seed}",
                  file=sys.stderr)
    if args.json:
        result.save(args.json)
        print(f"\nwrote {args.json} (digest {result.digest()})")
    return 1 if holes else 0


def _cmd_perf(args, passthrough: list[str]) -> int:
    from repro.harness.perf import main as perf_main, throughput_smoke

    if args.smoke:
        if passthrough:
            print("repro perf --smoke runs the fixed regression gate; it "
                  f"cannot take {' '.join(passthrough)}", file=sys.stderr)
            return 2
        return throughput_smoke(args.json or "BENCH_perf.json",
                                repeats=args.repeats)
    return perf_main(passthrough)


def _cmd_figures(args) -> int:
    names = args.figures or list(FIGURE_NAMES)
    unknown = [name for name in names if name not in FIGURE_NAMES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)} "
              f"(choose from {', '.join(FIGURE_NAMES)})", file=sys.stderr)
        return 2
    if args.benchmarks:
        from repro.workloads.spec2006 import benchmark_names

        bad = [b for b in args.benchmarks if b not in benchmark_names()]
        if bad:
            print(f"unknown benchmark(s): {', '.join(bad)}",
                  file=sys.stderr)
            return 2
    window = None
    if args.warmup is not None or args.measure is not None:
        base = WindowSpec.from_env()
        window = WindowSpec(
            warmup=base.warmup if args.warmup is None else args.warmup,
            measure=base.measure if args.measure is None else args.measure,
        )
    session = Session()
    for name in names:
        if name == "fig1":
            _, text = run_figure(
                "fig1", benchmarks=args.benchmarks, window=window,
            )
            print(text)
            if args.out:
                print("[fig1 is a functional analysis without a RunResult "
                      "artifact; nothing saved for it]")
            continue
        try:
            result, text = run_figure(
                name, session=session, benchmarks=args.benchmarks,
                window=window,
            )
        except (TypeError, ValueError) as error:
            print(f"repro figures: {error}", file=sys.stderr)
            return 2
        print(text)
        if args.out:
            out_dir = Path(args.out)
            out_dir.mkdir(parents=True, exist_ok=True)
            path = out_dir / f"{name}.json"
            result.save(path)
            print(f"[wrote {path} (digest {result.digest()})]")
    return 0


def _lake_store_from_arg(path_arg: str):
    """Resolve a ``--lake [DIR]`` argument to a ``TraceStore``.

    An empty argument (bare ``--lake``) means the environment's store
    root; returns ``None`` when that resolves to persistence-disabled.
    """
    from repro.workloads.store import TraceStore

    if path_arg:
        return TraceStore(path_arg)
    root = api_env.store_root_from_env()
    return TraceStore(root) if root is not None else None


def _cell_ipc(payload: dict) -> float | None:
    stats = payload["stats"]
    cycles = stats.get("cycles")
    if not cycles:
        return None
    return stats.get("committed", 0) / cycles


def _report_lake(path_arg: str) -> int:
    """``repro report --lake``: query across every cached cell.

    Groups cells by (mechanism, window, sampling) configuration with
    harmonic-mean IPC per group, then renders the per-mechanism ×
    per-benchmark trend — the cross-run view no single ``RunResult``
    artifact has.
    """
    store = _lake_store_from_arg(path_arg)
    if store is None:
        print("repro report --lake: the trace store is disabled "
              "(REPRO_TRACE_STORE=off); pass --lake DIR", file=sys.stderr)
        return 2
    groups: dict[tuple, list] = {}
    total = unreadable = 0
    for _, payload in store.iter_cells():
        total += 1
        if payload is None:
            unreadable += 1
            continue
        meta = payload.get("meta") or {}
        key = (
            str(meta.get("mechanism", "?")),
            f"{meta.get('warmup', '?')}+{meta.get('measure', '?')}",
            str(meta.get("sampling", "?"))[:12],
        )
        groups.setdefault(key, []).append(payload)
    print(f"# result lake at {store.root}")
    print(f"{total} cell artifact(s), {unreadable} unreadable/tampered "
          "(these serve as misses and are overwritten on re-simulation)")
    if not groups:
        return 0
    table = Table(["mechanism", "window", "sampling", "cells",
                   "benchmarks", "hmean IPC"])
    for (mechanism, window, sampling), cells in sorted(groups.items()):
        ipcs = [ipc for ipc in map(_cell_ipc, cells) if ipc is not None]
        benchmarks = {str(c.get("benchmark", "?")) for c in cells}
        table.add_row(
            mechanism, window, sampling, str(len(cells)),
            str(len(benchmarks)),
            f"{harmonic_mean(ipcs):.3f}" if ipcs else "-",
        )
    print()
    print(table.render())
    by_mb: dict[tuple[str, str], list] = {}
    for (mechanism, _, _), cells in groups.items():
        for cell in cells:
            key = (mechanism, str(cell.get("benchmark", "?")))
            by_mb.setdefault(key, []).append(cell)
    trend = Table(["mechanism", "benchmark", "cells", "hmean IPC"])
    for (mechanism, benchmark), cells in sorted(by_mb.items()):
        ipcs = [ipc for ipc in map(_cell_ipc, cells) if ipc is not None]
        trend.add_row(
            mechanism, benchmark, str(len(cells)),
            f"{harmonic_mean(ipcs):.3f}" if ipcs else "-",
        )
    print()
    print(trend.render())
    return 0


def _cmd_report(args) -> int:
    if args.lake is not None:
        if args.artifacts or args.figure:
            print("repro report --lake queries the lake; it cannot take "
                  "artifacts or --figure", file=sys.stderr)
            return 2
        return _report_lake(args.lake)
    if not args.artifacts:
        print("repro report: give artifact path(s), or --lake [DIR] to "
              "query the result lake", file=sys.stderr)
        return 2
    status = 0
    for path in args.artifacts:
        try:
            result = RunResult.load(path)
        except (OSError, ValueError, KeyError) as error:
            print(f"{path}: unreadable artifact: {error}", file=sys.stderr)
            status = 1
            continue
        print(f"# {path}")
        print(f"fingerprint {result.fingerprint}  digest {result.digest()}  "
              f"format {result.format}")
        print(_render_result(result))
        if args.figure:
            try:
                print(render_figure(args.figure, result))
            except KeyError as error:
                print(f"{path}: cannot render as {args.figure}: the "
                      f"artifact has no cell for {error}", file=sys.stderr)
                status = 1
        print()
    return status


def _render_telemetry(payload: dict, detail: bool) -> str:
    """The artifact's ``telemetry`` section, summarised (or, with
    *detail*, including per-cell series heads)."""
    lines = [
        f"telemetry   : format {payload.get('format')}, "
        f"metrics every {payload.get('metrics_every')} committed, "
        f"events under {payload.get('events_dir')}"
    ]
    cells = payload.get("cells", [])
    lines.append(f"  metric cells: {len(cells)}")
    for cell in cells:
        samples = cell.get("samples", 0)
        lines.append(
            f"  {cell.get('benchmark')} × {cell.get('mechanism')} × seed "
            f"{cell.get('seed')}: {samples} sample(s)"
        )
        if detail and samples:
            series = cell.get("series", {})
            for name in ("total_committed", "cycles", "rob", "iq"):
                values = series.get(name)
                if not values:
                    continue
                head = ", ".join(str(v) for v in values[:8])
                more = ", ..." if len(values) > 8 else ""
                lines.append(f"    {name:<16}: [{head}{more}]")
    shards = payload.get("shards")
    if shards:
        lines.append(f"  shard reports: {len(shards)}")
        for index, report in sorted(shards.items()):
            kinds = ", ".join(report.get("failure_kinds", [])) or "none"
            lines.append(
                f"  shard {index}: {report.get('attempts')} attempt(s), "
                f"failures [{kinds}], backoff "
                f"{report.get('backoff_seconds', 0.0):.2f}s"
                + (", QUARANTINED" if report.get("quarantined") else "")
            )
    return "\n".join(lines)


def _inspect_events(path: str) -> int:
    """``repro inspect --events``: summarise one event JSONL file."""
    from repro.obs import format_record, read_events

    try:
        records, dropped = read_events(path)
    except OSError as error:
        print(f"{path}: unreadable event log: {error}", file=sys.stderr)
        return 1
    print(f"# {path}")
    by_name: dict[str, int] = {}
    for record in records:
        by_name[record["name"]] = by_name.get(record["name"], 0) + 1
    print(f"{len(records)} record(s), {dropped} dropped "
          "(torn tail / future format)")
    for name, count in sorted(by_name.items()):
        print(f"  {name:<24} × {count}")
    print()
    for record in records:
        print(format_record(record))
    return 0


def _inspect_lake(path_arg: str) -> int:
    """``repro inspect --lake``: lake provenance at a glance."""
    store = _lake_store_from_arg(path_arg)
    if store is None:
        print("repro inspect --lake: the trace store is disabled "
              "(REPRO_TRACE_STORE=off); pass --lake DIR", file=sys.stderr)
        return 2
    total = unreadable = 0
    benchmarks: set[str] = set()
    mechanisms: set[str] = set()
    versions: set[str] = set()
    for _, payload in store.iter_cells():
        total += 1
        if payload is None:
            unreadable += 1
            continue
        benchmarks.add(str(payload.get("benchmark", "?")))
        meta = payload.get("meta") or {}
        mechanisms.add(str(meta.get("mechanism", "?")))
        versions.add(str(meta.get("workload_version", "?")))

    def listing(values: set[str], limit: int = 8) -> str:
        ordered = sorted(values)
        tail = ", ..." if len(ordered) > limit else ""
        return f"{len(ordered)} ({', '.join(ordered[:limit])}{tail})"

    print(f"# result lake at {store.root}")
    print(f"cells       : {total} readable "
          f"{total - unreadable}, unreadable/tampered {unreadable}")
    if total - unreadable:
        print(f"benchmarks  : {listing(benchmarks)}")
        print(f"mechanisms  : {listing(mechanisms)}")
        print(f"versions    : {listing(versions)} (workload code)")
    return 0


def _cmd_inspect(args) -> int:
    if getattr(args, "lake", None) is not None:
        return _inspect_lake(args.lake)
    if getattr(args, "events", None):
        return _inspect_events(args.events)
    if args.artifact:
        try:
            result = RunResult.load(args.artifact)
        except (OSError, ValueError, KeyError) as error:
            # Lenient fallback: a future-format artifact should still
            # tell the operator *what it is* rather than fail opaquely.
            import json as _json

            from repro.api.result import KNOWN_SECTIONS

            try:
                payload = _json.loads(
                    Path(args.artifact).read_text(encoding="utf-8")
                )
            except (OSError, ValueError):
                payload = None
            print(f"{args.artifact}: unreadable artifact: {error}",
                  file=sys.stderr)
            if isinstance(payload, dict):
                print(f"# {args.artifact} (raw section listing)")
                for key in sorted(payload):
                    label = ("known" if key in KNOWN_SECTIONS
                             else "not understood by this build")
                    print(f"section {key:<12}: {label}")
            return 1
        print(f"# {args.artifact}")
        print(f"format      : {result.format}")
        print(f"digest      : {result.digest()}")
        print(_spec_summary(result.spec))
        for key, value in sorted(result.meta.items()):
            print(f"meta.{key:<12}: {value}")
        if result.telemetry is not None:
            print(_render_telemetry(result.telemetry,
                                    detail=bool(args.metrics)))
        elif args.metrics:
            print("telemetry   : none recorded (run with REPRO_OBS=1 "
                  "or ObsSpec(enabled=True))")
        for key in sorted(result.extra_sections):
            print(f"section {key:<12}: not understood by this build; "
                  "preserved verbatim and re-emitted on save")
        return 0
    if args.metrics:
        print("repro inspect --metrics needs an artifact path",
              file=sys.stderr)
        return 2
    # Environment mode: the resolved overlay plus the migration table.
    unknown = api_env.warn_unknown_vars()
    spec = ExperimentSpec.from_env()
    print("# environment overlay (explicit field beats env beats default)")
    print(_spec_summary(spec))
    print()
    import os

    table = Table(["variable", "set to", "spec field / consumer"])
    for name, (field_name, _) in sorted(api_env.KNOWN_VARS.items()):
        table.add_row(name, os.environ.get(name, "(unset)"), field_name)
    print(table.render())
    if unknown:
        print(f"\nWARNING: unrecognized REPRO_* variable(s): "
              f"{', '.join(unknown)}")
        return 1
    return 0


def _cmd_profile(args) -> int:
    from repro.obs.profile import (
        DEFAULT_BENCHMARKS,
        overhead_gate,
        phase_profile,
        render_gate,
        render_profile,
        write_json,
    )

    if args.gate:
        ok, report = overhead_gate(
            repeats=args.repeats, tolerance=args.tolerance,
        )
        print(render_gate(report))
        if args.json:
            write_json(report, args.json)
            print(f"wrote {args.json}")
        return 0 if ok else 1
    sampling = None
    if args.full_detail:
        from repro.sampling import SamplingConfig

        sampling = SamplingConfig(enabled=False)
    try:
        payload = phase_profile(
            benchmarks=tuple(args.benchmarks) if args.benchmarks
            else DEFAULT_BENCHMARKS,
            mechanism_name=args.mechanism,
            warmup=args.warmup,
            measure=args.measure,
            sampling=sampling,
            combos=args.combos,
        )
    except (KeyError, ValueError) as error:
        print(f"repro profile: {error}", file=sys.stderr)
        return 2
    print(render_profile(payload))
    if args.json:
        write_json(payload, args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_tail(args) -> int:
    import os
    import time

    from repro.obs import decode_record, format_record
    from repro.obs.config import DEFAULT_OBS_DIR

    directory = Path(
        args.dir or os.environ.get("REPRO_OBS_DIR") or DEFAULT_OBS_DIR
    )
    offsets: dict[Path, int] = {}

    def drain() -> int:
        emitted = 0
        for path in sorted(directory.glob("events-*.jsonl")):
            start = offsets.get(path, 0)
            try:
                with open(path, "rb") as handle:
                    handle.seek(start)
                    chunk = handle.read()
            except OSError:
                continue
            # Consume complete lines only: a live writer's in-flight
            # line stays buffered until its newline lands.
            end = chunk.rfind(b"\n")
            if end < 0:
                continue
            offsets[path] = start + end + 1
            for raw in chunk[:end].split(b"\n"):
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    record = decode_record(raw.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    continue
                print(format_record(record), flush=False)
                emitted += 1
        sys.stdout.flush()
        return emitted

    if not args.follow:
        if drain() == 0:
            print(f"(no events under {directory})")
        return 0
    print(f"repro tail: following {directory} (Ctrl-C to stop)",
          file=sys.stderr)
    try:
        while True:
            drain()
            time.sleep(args.poll)
    except KeyboardInterrupt:
        return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service.server import SweepServer
    from repro.service.supervisor import ShardSupervisor

    tcp = None
    if args.tcp is not None:
        from repro.cluster.hosts import HostSpec

        try:
            tcp = HostSpec.parse(args.tcp).address
        except ValueError as error:
            print(f"repro serve: {error}", file=sys.stderr)
            return 2
    supervisor = ShardSupervisor(deadline=args.timeout)
    server = SweepServer(
        None if args.tcp is not None and args.no_socket else args.socket,
        supervisor=supervisor, shards=args.shards, tcp=tcp,
    )

    async def _serve() -> None:
        task = asyncio.ensure_future(server.serve(once=args.once))
        await server.wait_started()
        # The tcp= line is machine-readable on purpose: with port 0 it
        # is how a parent (the loopback cluster smoke) learns the real
        # ephemeral port.
        if server.bound_address is not None:
            host, port = server.bound_address
            print(f"repro serve: tcp={host}:{port}", flush=True)
        if server.socket_path is not None:
            print(f"repro serve: listening on {server.socket_path}",
                  flush=True)
        await task

    shards_note = args.shards if args.shards is not None else "per spec"
    print(f"repro serve: starting (shards default: {shards_note})",
          flush=True)
    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro serve: interrupted, shutting down")
    print(f"repro serve: {server.requests_served} request(s) served")
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=PROG,
        description="Reproduction front door: typed experiment specs, "
        "one CLI, versioned result artifacts.",
    )
    sub = parser.add_subparsers(dest="command")

    sweep = sub.add_parser(
        "sweep", help="run (or smoke-gate) a benchmark × mechanism sweep"
    )
    sweep.add_argument("--smoke", action="store_true",
                       help="CI gate: cold == memoised == warm-store")
    sweep.add_argument("--sampled", action="store_true",
                       help="run interval-sampled (REPRO_INTERVAL and "
                       "friends); with --smoke: also gate sampled "
                       "simulation")
    sweep.add_argument("--lake", action="store_true",
                       help="serve cells from (and populate) the "
                       "spec-level result lake in the trace store; with "
                       "--smoke: run the incremental-sweep gate (a fresh "
                       "process on a warm lake must simulate zero cells)")
    sweep.add_argument("--benchmark", action="append", dest="benchmarks",
                       metavar="NAME",
                       help="benchmark (repeatable; default: the "
                       "representative mix, all 29 with REPRO_FULL)")
    sweep.add_argument("--mechanism", action="append", dest="mechanisms",
                       metavar="NAME", choices=sorted(MECHANISM_PRESETS),
                       help="mechanism preset (repeatable; default: "
                       "baseline and rsep-realistic)")
    sweep.add_argument("--seeds", type=int, default=None,
                       help="checkpoints per benchmark (default: "
                       "REPRO_SEEDS)")
    sweep.add_argument("--warmup", type=int, default=None,
                       help="warm-up instructions (default: REPRO_WARMUP)")
    sweep.add_argument("--measure", type=int, default=None,
                       help="measured instructions (default: REPRO_MEASURE)")
    sweep.add_argument("--workers", type=int, default=None,
                       help="sweep worker processes (default: REPRO_WORKERS)")
    sweep.add_argument("--shards", type=int, default=None,
                       help="fault-tolerant sharded service shard count "
                       "(default: REPRO_SHARDS; 0/1 = in-process); with "
                       "--smoke: run the fault-injected sharded gate")
    sweep.add_argument("--hosts", metavar="LIST", default=None,
                       help="run clustered across remote `repro serve "
                       "--tcp` hosts, e.g. a:9091,b:9091 (default: "
                       "REPRO_HOSTS); with --smoke: 'loopback' runs the "
                       "loopback-cluster gate")
    sweep.add_argument("--json", metavar="PATH", default=None,
                       help="write the RunResult artifact to PATH")

    perf = sub.add_parser(
        "perf", help="simulated-KIPS throughput harness (+ CI smoke gate)",
        add_help=False,
    )
    perf.add_argument("--smoke", action="store_true",
                      help="CI gate: fail on >30%% KIPS regression against "
                      "the recorded BENCH_perf.json")
    perf.add_argument("--repeats", type=int, default=3)
    perf.add_argument("--json", metavar="PATH", default=None,
                      help="with --smoke: the recorded BENCH_perf.json "
                      "(default ./BENCH_perf.json)")

    figures = sub.add_parser(
        "figures", help="regenerate the paper's figures"
    )
    figures.add_argument("figures", nargs="*", metavar="FIGURE",
                         help=f"which figures ({', '.join(FIGURE_NAMES)}; "
                         "default: all)")
    figures.add_argument("--benchmark", action="append", dest="benchmarks",
                         metavar="NAME",
                         help="benchmark subset (repeatable)")
    figures.add_argument("--warmup", type=int, default=None)
    figures.add_argument("--measure", type=int, default=None)
    figures.add_argument("--out", metavar="DIR", default=None,
                         help="also save one RunResult artifact per figure")

    report = sub.add_parser(
        "report", help="render stored RunResult artifacts"
    )
    report.add_argument("artifacts", nargs="*", metavar="ARTIFACT")
    report.add_argument("--figure", choices=sorted(
        name for name in FIGURE_NAMES if name != "fig1"
    ), default=None, help="additionally render with a figure formatter")
    report.add_argument("--lake", nargs="?", const="", default=None,
                        metavar="DIR",
                        help="query across the result lake's cached "
                        "cells instead of an artifact (DIR defaults to "
                        "the environment's store root)")

    inspect = sub.add_parser(
        "inspect", help="artifact provenance/telemetry, an event log, "
        "or the environment overlay"
    )
    inspect.add_argument("artifact", nargs="?", default=None,
                         metavar="ARTIFACT",
                         help="artifact to inspect (default: show the "
                         "resolved environment overlay)")
    inspect.add_argument("--events", metavar="PATH", default=None,
                         help="summarise and render an obs event log "
                         "(events-<pid>.jsonl) instead of an artifact")
    inspect.add_argument("--metrics", action="store_true",
                         help="with an artifact: render the telemetry "
                         "section's per-cell metric series heads")
    inspect.add_argument("--lake", nargs="?", const="", default=None,
                         metavar="DIR",
                         help="summarise the result lake (entry counts, "
                         "benchmarks, mechanisms, workload versions; DIR "
                         "defaults to the environment's store root)")

    profile = sub.add_parser(
        "profile", help="per-stage wall attribution across compute "
        "planes (+ the obs overhead gate)"
    )
    profile.add_argument("--benchmark", action="append", dest="benchmarks",
                         metavar="NAME",
                         help="benchmark to profile (repeatable; "
                         "default: mcf, bzip2)")
    profile.add_argument("--mechanism", default="rsep-realistic",
                         choices=sorted(MECHANISM_PRESETS))
    profile.add_argument("--warmup", type=int, default=None,
                         help="warm-up instructions (default: REPRO_WARMUP)")
    profile.add_argument("--measure", type=int, default=None,
                         help="measured instructions (default: "
                         "REPRO_MEASURE)")
    profile.add_argument("--combos", choices=("all", "current"),
                         default="all",
                         help="profile all four genrename × vecwarm "
                         "planes, or only the environment's (default: all)")
    profile.add_argument("--full-detail", action="store_true",
                         help="profile a full-detail run instead of a "
                         "sampled one (no warm phase)")
    profile.add_argument("--gate", action="store_true",
                         help="CI overhead gate: obs on must be "
                         "bit-identical and within --tolerance of obs off")
    profile.add_argument("--tolerance", type=float, default=0.05,
                         help="with --gate: allowed KIPS overhead "
                         "fraction (default: 0.05)")
    profile.add_argument("--repeats", type=int, default=3,
                         help="with --gate: interleaved A/B repeats "
                         "(default: 3)")
    profile.add_argument("--json", metavar="PATH", default=None,
                         help="also write the payload as JSON")

    tail = sub.add_parser(
        "tail", help="render (and optionally follow) the obs event "
        "stream of a live or finished run"
    )
    tail.add_argument("--dir", metavar="DIR", default=None,
                      help="event directory (default: REPRO_OBS_DIR, "
                      "then .repro-obs)")
    tail.add_argument("--follow", "-f", action="store_true",
                      help="keep polling for new records until Ctrl-C")
    tail.add_argument("--poll", type=float, default=0.5,
                      help="with --follow: poll interval in seconds "
                      "(default: 0.5)")

    serve = sub.add_parser(
        "serve", help="sweep service on a local Unix socket and/or TCP "
        "(spec or shard JSON in, digest-verified payload out)"
    )
    serve.add_argument("--socket", metavar="PATH", default="repro.sock",
                       help="Unix socket path to listen on "
                       "(default: ./repro.sock)")
    serve.add_argument("--tcp", metavar="HOST:PORT", default=None,
                       help="additionally listen on TCP (port 0 binds an "
                       "ephemeral port, announced as 'tcp=HOST:PORT'); "
                       "this is what `repro sweep --hosts` dials")
    serve.add_argument("--no-socket", action="store_true",
                       help="with --tcp: TCP only, no Unix socket file")
    serve.add_argument("--shards", type=int, default=None,
                       help="server-side default shard count (a request's "
                       "explicit value wins; default: each spec's own)")
    serve.add_argument("--timeout", type=float, default=None,
                       help="per-shard deadline in seconds "
                       "(default: REPRO_SHARD_TIMEOUT)")
    serve.add_argument("--once", action="store_true",
                       help="serve a single request, then exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    # `repro perf` forwards unknown flags to the measurement harness
    # (repro.harness.perf) so the full flag surface stays in one place.
    if argv and argv[0] == "perf" and "--smoke" not in argv:
        from repro.harness.perf import main as perf_main

        return perf_main(argv[1:])
    parser = build_parser()
    args, passthrough = parser.parse_known_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if passthrough and args.command != "perf":
        parser.error(f"unrecognized arguments: {' '.join(passthrough)}")
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "perf":
        return _cmd_perf(args, passthrough)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "tail":
        return _cmd_tail(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return _cmd_inspect(args)


# ---------------------------------------------------------------------------
# Deprecated console aliases (PR 3's entry points)
# ---------------------------------------------------------------------------


def sweep_alias_main(argv: list[str] | None = None) -> int:
    """``repro-sweep``: deprecated alias of ``repro sweep --smoke`` /
    ``python -m repro.harness.sweep``."""
    print("repro-sweep is deprecated; use `repro sweep` (same flags)",
          file=sys.stderr)
    from repro.harness.sweep import main as sweep_main

    return sweep_main(argv)


def perf_alias_main(argv: list[str] | None = None) -> int:
    """``repro-perf``: deprecated alias of ``repro perf`` /
    ``python -m repro.harness.perf``."""
    print("repro-perf is deprecated; use `repro perf` (same flags)",
          file=sys.stderr)
    from repro.harness.perf import main as perf_main

    return perf_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
