"""The paper's figures as declarative specs + formatters.

Each timing figure is a :class:`FigureDef`: a fixed mechanism list, a
spec factory (the benchmark list and window overlay the environment the
usual way) and a pure formatter from a :class:`~repro.api.result.RunResult`
to the rendered table.  ``repro figures fig4`` and
``benchmarks/bench_fig4_speedup.py`` are both thin shells over this
module, so the figure definitions exist exactly once.

Figure 1 is the odd one out — a functional redundancy analysis with no
timing sweep — so it runs through its own analysis path and has no
:class:`~repro.api.spec.ExperimentSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.api.result import RunResult
from repro.api.spec import ExperimentSpec, WindowSpec
from repro.core.validation import ValidationMode
from repro.harness.reporting import Table, harmonic_mean
from repro.pipeline.config import CoreConfig, MechanismConfig

# ---------------------------------------------------------------------------
# Mechanism lists (one per figure)
# ---------------------------------------------------------------------------

FIG4_MECHANISMS: tuple[MechanismConfig, ...] = (
    MechanismConfig.baseline(),
    MechanismConfig.zero_prediction(),
    MechanismConfig.move_elimination(),
    MechanismConfig.rsep_ideal(),
    MechanismConfig.value_prediction(),
    MechanismConfig.rsep_plus_vp(),
)

FIG5_MECHANISMS: tuple[MechanismConfig, ...] = (
    MechanismConfig.rsep_ideal(),
    MechanismConfig.rsep_plus_vp(),
)

FIG6_VARIANTS: tuple[MechanismConfig, ...] = (
    MechanismConfig.baseline(),
    MechanismConfig.rsep_validation(ValidationMode.IDEAL),
    MechanismConfig.rsep_validation(ValidationMode.REISSUE_LOCK_FU),
    MechanismConfig.rsep_validation(ValidationMode.REISSUE_ANY_FU),
    MechanismConfig.rsep_validation(
        ValidationMode.REISSUE_ANY_FU, sampling=True, start_train_threshold=15
    ),
    MechanismConfig.rsep_validation(
        ValidationMode.REISSUE_ANY_FU, sampling=True, start_train_threshold=63
    ),
)

FIG7_MECHANISMS: tuple[MechanismConfig, ...] = (
    MechanismConfig.baseline(),
    MechanismConfig.rsep_ideal(),
    MechanismConfig.rsep_realistic(),
)

TABLE1_MECHANISMS: tuple[MechanismConfig, ...] = (
    MechanismConfig.baseline(),
)

# ---------------------------------------------------------------------------
# Formatters (RunResult -> rendered text)
# ---------------------------------------------------------------------------


def _format_fig4(result: RunResult) -> str:
    table = Table([
        "benchmark", "base IPC", "zero%", "move%", "rsep%", "vpred%",
        "rsep+vp%",
    ])
    for name in result.benchmarks:
        table.add_row(
            name,
            f"{result.outcome(name, 'baseline').ipc:.3f}",
            *(
                f"{100 * result.speedup(name, mech.name):+.1f}"
                for mech in FIG4_MECHANISMS[1:]
            ),
        )
    return ("\nFigure 4 — speedup over baseline by mechanism\n"
            + table.render())


def _format_fig5(result: RunResult) -> str:
    table = Table([
        "benchmark", "config", "idiom%", "move%", "zero%", "dist%",
        "dist(ld)%", "vpred%", "vpred(ld)%",
    ])
    for name in result.benchmarks:
        for mechanism in ("rsep", "rsep+vpred"):
            outcome = result.outcome(name, mechanism)
            table.add_row(
                name,
                mechanism,
                f"{100 * outcome.stat_fraction('zero_idiom_elim'):.1f}",
                f"{100 * outcome.stat_fraction('move_elim'):.1f}",
                f"{100 * outcome.stat_fraction('zero_pred'):.1f}",
                f"{100 * outcome.stat_fraction('dist_pred'):.1f}",
                f"{100 * outcome.stat_fraction('dist_pred_load'):.1f}",
                f"{100 * outcome.stat_fraction('value_pred'):.1f}",
                f"{100 * outcome.stat_fraction('value_pred_load'):.1f}",
            )
    return ("\nFigure 5 — committed-instruction coverage per mechanism\n"
            + table.render())


def _format_fig6(result: RunResult) -> str:
    table = Table([
        "benchmark", "ideal%", "lockFU%", "anyFU%", "samp15%", "samp63%",
    ])
    for name in result.benchmarks:
        table.add_row(
            name,
            *(
                f"{100 * result.speedup(name, mech.name):+.1f}"
                for mech in FIG6_VARIANTS[1:]
            ),
        )
    return ("\nFigure 6 — validation & sampling impact on RSEP speedup\n"
            + table.render())


def _format_fig7(result: RunResult) -> str:
    from repro.common.history import GlobalHistory, PathHistory
    from repro.common.rng import XorShift64
    from repro.core.rsep import RsepConfig, RsepUnit

    table = Table(["benchmark", "ideal%", "realistic%"])
    for name in result.benchmarks:
        table.add_row(
            name,
            f"{100 * result.speedup(name, 'rsep'):+.1f}",
            f"{100 * result.speedup(name, 'rsep-realistic'):+.1f}",
        )
    unit = RsepUnit(
        RsepConfig.realistic(), GlobalHistory(), PathHistory(), XorShift64(1)
    )
    report = unit.storage_report()
    return (
        "\nFigure 7 — ideal (42.6KB) vs realistic (10.1KB) RSEP\n"
        + table.render()
        + f"\n\nRealistic RSEP storage: {report.total_kib:.2f} KB "
        "(paper: ~10.8KB incl. ISRB)"
    )


def _format_table1(result: RunResult) -> str:
    config = CoreConfig()
    lines = [
        "\nTable I — simulator configuration",
        f"  fetch/rename/commit width : {config.fetch_width}",
        f"  ROB / IQ / LQ / SQ        : {config.rob_entries} / "
        f"{config.iq_entries} / {config.lq_entries} / {config.sq_entries}",
        f"  INT / FP physical regs    : {config.int_pregs} / "
        f"{config.fp_pregs}",
        f"  min mispredict penalty    : {config.mispredict_penalty}",
        f"  L1D/L2/L3 latency         : {config.memory.l1d_latency} / "
        f"{config.memory.l2_latency} / {config.memory.l3_latency}",
        f"  STLF latency              : {config.stlf_latency}",
    ]
    table = Table(["benchmark", "baseline IPC", "branch MPKI"])
    for name in result.benchmarks:
        outcome = result.outcome(name, "baseline")
        mpki = harmonic_mean(
            [s.branch_mpki for s in outcome.merged_stats if s.branch_mpki]
            or [0.0]
        )
        table.add_row(name, f"{outcome.ipc:.3f}", f"{mpki:.1f}")
    return "\n".join(lines) + "\n" + table.render()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FigureDef:
    """One figure: its mechanisms and its formatter."""

    name: str
    title: str
    mechanisms: tuple[MechanismConfig, ...]
    format: Callable[[RunResult], str]


FIGURES: dict[str, FigureDef] = {
    fig.name: fig
    for fig in (
        FigureDef("fig4", "speedup over baseline by mechanism",
                  FIG4_MECHANISMS, _format_fig4),
        FigureDef("fig5", "committed-instruction coverage per mechanism",
                  FIG5_MECHANISMS, _format_fig5),
        FigureDef("fig6", "validation & sampling impact on RSEP speedup",
                  FIG6_VARIANTS, _format_fig6),
        FigureDef("fig7", "ideal vs realistic RSEP",
                  FIG7_MECHANISMS, _format_fig7),
        FigureDef("table1", "simulator configuration + baseline IPC",
                  TABLE1_MECHANISMS, _format_table1),
    )
}

#: Names accepted by ``repro figures`` — the sweep figures above plus
#: the functional fig1.
FIGURE_NAMES: tuple[str, ...] = ("fig1",) + tuple(FIGURES)


def figure_spec(
    name: str,
    benchmarks=None,
    window: WindowSpec | None = None,
    seeds=None,
) -> ExperimentSpec:
    """The :class:`ExperimentSpec` of one sweep figure.

    Everything not fixed by the figure (benchmark subset, window, seeds,
    store, workers) overlays the environment exactly like
    :meth:`ExperimentSpec.from_env`.
    """
    if name not in FIGURES:
        raise KeyError(
            f"unknown figure {name!r} (sweep figures: {sorted(FIGURES)}; "
            "fig1 is a functional analysis without a spec)"
        )
    return ExperimentSpec.from_env(
        benchmarks=benchmarks,
        mechanisms=FIGURES[name].mechanisms,
        window=window,
        seeds=seeds,
    )


def render_figure(name: str, result: RunResult) -> str:
    """Render *result* with figure *name*'s formatter."""
    return FIGURES[name].format(result)


def run_fig1(instructions: int = 20000, benchmarks=None):
    """Figure 1 (functional redundancy): returns (profiles, text).

    Defaults to all 29 benchmarks at 20000 instructions (it needs no
    timing model, so the full suite is cheap); both are overridable so
    the CLI's ``--benchmark``/``--measure`` flags mean the same thing
    here as for the sweep figures.
    """
    from repro.harness.redundancy import analyze_benchmark
    from repro.workloads.spec2006 import benchmark_names

    table = Table([
        "benchmark", "zero(ld)%", "zero(other)%",
        "inPRF(ld)%", "inPRF(other)%", "total%",
    ])
    profiles = []
    for name in benchmarks or benchmark_names():
        profile = analyze_benchmark(name, instructions=instructions)
        profiles.append(profile)
        table.add_row(
            name,
            f"{100 * profile.fraction(profile.zero_load):.1f}",
            f"{100 * profile.fraction(profile.zero_other):.1f}",
            f"{100 * profile.fraction(profile.in_prf_load):.1f}",
            f"{100 * profile.fraction(profile.in_prf_other):.1f}",
            f"{100 * profile.total_redundant_fraction:.1f}",
        )
    text = ("\nFigure 1 — commit-time value redundancy\n" + table.render())
    return profiles, text


def run_figure(
    name: str,
    session=None,
    benchmarks=None,
    window: WindowSpec | None = None,
    seeds=None,
):
    """Run one figure end to end; returns ``(result, rendered text)``.

    For sweep figures *result* is the :class:`RunResult` artifact; for
    ``fig1`` it is the list of redundancy profiles.
    """
    if name == "fig1":
        return run_fig1(
            instructions=window.measure if window is not None else 20000,
            benchmarks=benchmarks,
        )
    from repro.api.session import Session

    spec = figure_spec(name, benchmarks=benchmarks, window=window,
                       seeds=seeds)
    session = session or Session.for_spec(spec)
    result = session.run(spec)
    return result, render_figure(name, result)
