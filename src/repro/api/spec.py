"""Typed experiment specifications — the front door of the system.

An :class:`ExperimentSpec` is a frozen value describing one sweep
completely: the benchmark × mechanism × seed grid, the measurement
window, the sampling mode and the store configuration.  Every scenario
that used to be an incantation of ``REPRO_*`` environment state is now a
value you can construct in code, fingerprint, serialise to JSON, diff
and replay (DESIGN.md §10).

Resolution happens **once, at construction**: :meth:`ExperimentSpec.from_env`
is the only place the environment is consulted (explicit argument beats
environment beats default), after which the spec is self-contained — a
mid-process environment change can never make two halves of one run
disagree about the window again.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.api import codec, env
from repro.obs.config import ObsSpec
from repro.pipeline.config import MechanismConfig
from repro.sampling.config import SamplingConfig

#: The sampled-simulation parameters double as the sampling member of the
#: spec family: ``SamplingConfig`` is already a frozen, validated value
#: (DESIGN.md §8) — the API gives it its spec-family name.
SamplingSpec = SamplingConfig


@dataclass(frozen=True)
class WindowSpec:
    """The measurement window, fully resolved (no scale factor pending)."""

    warmup: int = 8000
    measure: int = 20000

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")
        if self.measure <= 0:
            raise ValueError("measure must be positive")

    @classmethod
    def from_env(cls) -> "WindowSpec":
        """``REPRO_WARMUP`` / ``REPRO_MEASURE`` with ``REPRO_SCALE``
        already folded in (the scale is not carried: resolution is
        once, at construction)."""
        warmup, measure = env.window_from_env()
        return cls(warmup=warmup, measure=measure)


@dataclass(frozen=True)
class StoreSpec:
    """Trace-store and trace-plane configuration.

    ``path=None`` means the default cache location; ``enabled=False``
    disables persistence entirely.  ``columnar`` selects the packed
    runtime trace plane (DESIGN.md §9) — the default; the eager plane
    survives as the differential-testing oracle.  ``result_lake``
    (default off) additionally serves per-cell ``Stats`` artifacts from
    the store before simulating and populates them after (DESIGN.md
    §14).  None of these affect simulation *results* (lake-served cells
    are digest-identical to fresh runs, gated by the incremental-sweep
    CI gate), so the store never joins the spec fingerprint.
    """

    path: str | None = None
    enabled: bool = True
    columnar: bool = True
    result_lake: bool = False

    @classmethod
    def from_env(cls) -> "StoreSpec":
        """``REPRO_TRACE_STORE`` / ``REPRO_COLUMNAR`` /
        ``REPRO_RESULT_LAKE``.

        An unset store variable yields ``path=None`` (the default cache
        location), NOT a materialised absolute path: a pristine
        environment must produce a spec equal to the default
        ``StoreSpec()`` so :meth:`Session.for_spec` recognises it and
        keeps the shared engine (and serialized artifacts stay free of
        host home-directory paths).
        """
        path, enabled = env.store_setting_from_env()
        return cls(
            path=path,
            enabled=enabled,
            columnar=env.columnar_from_env(),
            result_lake=env.result_lake_from_env(),
        )

    def resolve_root(self) -> Path | None:
        """The directory to persist under (``None`` = no persistence).

        With ``path=None`` the default spec defers to the environment's
        store resolution, so a process that disabled persistence (the
        tier-1 suite sets ``REPRO_TRACE_STORE=off``) can never be made
        to write the user's cache by a default-constructed spec.
        """
        if not self.enabled:
            return None
        if self.path is not None:
            return Path(self.path)
        return env.store_root_from_env()


def default_mechanisms() -> tuple[MechanismConfig, ...]:
    """The standard comparison pair: baseline and realistic RSEP."""
    return (MechanismConfig.baseline(), MechanismConfig.rsep_realistic())


@dataclass(frozen=True)
class ExperimentSpec:
    """One sweep, completely described.

    The grid is ``benchmarks × mechanisms × seeds``; ``window``,
    ``sampling`` and ``store`` parameterise how each cell runs;
    ``workers`` and ``shards`` how cells fan out.  ``Session.run(spec)``
    routes the grid into the shared sweep engine, so results are
    bit-identical to the legacy ``ExperimentRunner`` path; ``shards >
    1`` selects the fault-tolerant sharded service
    (:meth:`Session.run_sharded`, DESIGN.md §11) whose merged artifact
    is digest-identical to the in-process run.
    """

    benchmarks: tuple[str, ...] = ()
    mechanisms: tuple[MechanismConfig, ...] = field(
        default_factory=default_mechanisms
    )
    seeds: tuple[int, ...] = (1,)
    window: WindowSpec = field(default_factory=WindowSpec)
    sampling: SamplingSpec = field(default_factory=SamplingSpec)
    store: StoreSpec = field(default_factory=StoreSpec)
    workers: int = 1
    #: Sharded-service fan-out; 0 (or 1) = the in-process engine path.
    #: Like ``workers``, sharding executes without changing any result,
    #: so it never joins the fingerprint.
    shards: int = 0
    #: Observability (DESIGN.md §13): tracing + metrics for the session
    #: executing this spec.  Measurement-plane state like ``store`` —
    #: it can never change a stat, so it never joins the fingerprint
    #: (pinned by the obs golden tests).
    obs: ObsSpec = field(default_factory=ObsSpec)

    def __post_init__(self) -> None:
        # Normalise list inputs so callers can pass plain lists.  A bare
        # string would silently explode into per-character "benchmarks"
        # and fail deep inside the sweep — reject it here.
        for name in ("benchmarks", "mechanisms", "seeds"):
            value = getattr(self, name)
            if isinstance(value, str):
                raise TypeError(
                    f"{name} must be a sequence, not a bare string "
                    f"({value!r}); did you mean [{value!r}]?"
                )
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        if not self.benchmarks:
            raise ValueError("an ExperimentSpec needs at least one benchmark")
        from repro.workloads.spec2006 import benchmark_names

        unknown = [b for b in self.benchmarks if b not in benchmark_names()]
        if unknown:
            raise ValueError(
                f"unknown benchmark(s): {', '.join(unknown)} "
                f"(choose from {', '.join(benchmark_names())})"
            )
        if not self.mechanisms:
            raise ValueError("an ExperimentSpec needs at least one mechanism")
        names = [mechanism.name for mechanism in self.mechanisms]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate mechanism names: {names}")
        if not self.seeds:
            raise ValueError("an ExperimentSpec needs at least one seed")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.shards < 0:
            raise ValueError("shards must be >= 0 (0 = in-process)")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_env(
        cls,
        benchmarks=None,
        mechanisms=None,
        seeds=None,
        window: WindowSpec | None = None,
        warmup: int | None = None,
        measure: int | None = None,
        sampling: SamplingSpec | None = None,
        store: StoreSpec | None = None,
        workers: int | None = None,
        shards: int | None = None,
        obs: ObsSpec | None = None,
        strict: bool = False,
    ) -> "ExperimentSpec":
        """The single environment overlay: explicit beats env beats default.

        Every ``REPRO_*`` variable is consumed here, once; the returned
        spec is self-contained.  Unrecognised ``REPRO_*`` names warn
        (:class:`~repro.api.env.UnknownReproVariable`) or, with
        ``strict=True``, raise.
        """
        env.warn_unknown_vars(strict=strict)
        if benchmarks is None:
            from repro.workloads.spec2006 import (
                benchmark_names,
                representative_names,
            )

            benchmarks = (
                benchmark_names()
                if env.full_benchmarks_from_env()
                else representative_names()
            )
        if window is None:
            window = WindowSpec.from_env()
        if warmup is not None or measure is not None:
            window = replace(
                window,
                warmup=window.warmup if warmup is None else warmup,
                measure=window.measure if measure is None else measure,
            )
        return cls(
            benchmarks=tuple(benchmarks),
            mechanisms=(
                default_mechanisms() if mechanisms is None
                else tuple(mechanisms)
            ),
            seeds=(
                tuple(env.seeds_from_env()) if seeds is None
                else tuple(seeds)
            ),
            window=window,
            sampling=env.sampling_from_env() if sampling is None
            else sampling,
            store=StoreSpec.from_env() if store is None else store,
            workers=env.workers_from_env() if workers is None else workers,
            shards=env.shards_from_env() if shards is None else shards,
            obs=ObsSpec.from_env() if obs is None else obs,
        )

    # ------------------------------------------------------------------
    # Identity and serialisation
    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Content fingerprint of everything that determines the stats.

        Mechanism display names, the store configuration and the
        worker/shard counts label or execute the experiment without
        changing any result (all pinned by the equivalence/determinism
        suites — the sharded service's merge gate included), so
        none of them participate — two specs with the same fingerprint
        produce bit-identical per-cell statistics.
        """
        payload = repr((
            self.benchmarks,
            self.seeds,
            (self.window.warmup, self.window.measure),
            self.sampling.fingerprint(),
            tuple(m.fingerprint() for m in self.mechanisms),
        ))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def to_dict(self) -> dict:
        return codec.encode(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentSpec":
        spec = codec.decode(payload)
        if not isinstance(spec, cls):
            raise ValueError(
                f"payload decodes to {type(spec).__name__}, not "
                f"{cls.__name__}"
            )
        return spec

    def to_json(self, indent: int | None = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    @property
    def cells(self) -> int:
        """Grid size: how many (benchmark, mechanism, seed) cells."""
        return len(self.benchmarks) * len(self.mechanisms) * len(self.seeds)

    def mechanism_names(self) -> list[str]:
        return [mechanism.name for mechanism in self.mechanisms]


def from_env(**overrides) -> ExperimentSpec:
    """Module-level alias for :meth:`ExperimentSpec.from_env`."""
    return ExperimentSpec.from_env(**overrides)
