"""Saturating and probabilistic confidence counters.

The paper gates both distance prediction and value prediction on very high
confidence ("confidence counters saturate at 255 and we predict only when the
counter is saturated", §IV.B.3) but stores only 3-bit counters per entry by
using *probabilistic* updates (Forward Probabilistic Counters of [7], [32]):
a 3-bit counter whose increments succeed with probability < 1 emulates a much
wider counter at a fraction of the storage.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.rng import XorShift64


class SaturatingCounter:
    """A classic n-bit saturating up/down counter."""

    __slots__ = ("value", "_maximum")

    def __init__(self, bits: int, initial: int = 0) -> None:
        if bits < 1:
            raise ValueError(f"counter width must be >= 1, got {bits}")
        self._maximum = (1 << bits) - 1
        if not 0 <= initial <= self._maximum:
            raise ValueError(f"initial value {initial} out of range")
        self.value = initial

    @property
    def maximum(self) -> int:
        return self._maximum

    def increment(self) -> None:
        if self.value < self._maximum:
            self.value += 1

    def decrement(self) -> None:
        if self.value > 0:
            self.value -= 1

    def reset(self, value: int = 0) -> None:
        if not 0 <= value <= self._maximum:
            raise ValueError(f"reset value {value} out of range")
        self.value = value

    def is_saturated(self) -> bool:
        return self.value == self._maximum

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SaturatingCounter({self.value}/{self._maximum})"


#: Increment probabilities that make a 3-bit counter behave like an 8-bit
#: one: reaching 7 takes ~255 successful occurrences in expectation
#: (1 + 4*16 + 2*32 = 193 deterministic-equivalent steps, tuned upward by
#: the first free step; the paper's exact vector is not published, this one
#: follows the shape of [32]: cheap first steps, expensive last steps).
FPC_DEFAULT_PROBABILITIES: tuple[float, ...] = (
    1.0, 1.0 / 16, 1.0 / 16, 1.0 / 16, 1.0 / 16, 1.0 / 32, 1.0 / 32,
)


class ProbabilisticCounter:
    """3-bit Forward Probabilistic Counter (FPC).

    ``probabilities[i]`` is the probability that an increment from value
    ``i`` to ``i + 1`` succeeds.  Decrements are deterministic resets to zero
    by default (the paper squashes on mispredictions, so confidence must
    collapse immediately); pass ``hard_reset=False`` for a step-down policy.
    """

    __slots__ = ("value", "_probabilities", "_rng", "_hard_reset")

    def __init__(
        self,
        rng: XorShift64,
        probabilities: Sequence[float] = FPC_DEFAULT_PROBABILITIES,
        hard_reset: bool = True,
    ) -> None:
        if not probabilities:
            raise ValueError("need at least one increment probability")
        self.value = 0
        self._probabilities = tuple(probabilities)
        self._rng = rng
        self._hard_reset = hard_reset

    @property
    def maximum(self) -> int:
        return len(self._probabilities)

    def increment(self) -> bool:
        """Attempt a probabilistic increment; returns True if it succeeded."""
        if self.value >= self.maximum:
            return False
        if self._rng.chance(self._probabilities[self.value]):
            self.value += 1
            return True
        return False

    def on_mispredict(self) -> None:
        """Collapse (or step down) confidence after a misprediction."""
        if self._hard_reset:
            self.value = 0
        elif self.value > 0:
            self.value -= 1

    def is_saturated(self) -> bool:
        return self.value == self.maximum

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ProbabilisticCounter({self.value}/{self.maximum})"


def expected_occurrences_to_saturate(
    probabilities: Sequence[float] = FPC_DEFAULT_PROBABILITIES,
) -> float:
    """Expected number of successful outcomes needed to saturate an FPC.

    Useful for reasoning about training time, e.g. the paper's "an
    instruction can begin to be predicted after ~255 occurrences".
    """
    return sum(1.0 / p for p in probabilities)
