"""Shared low-level utilities: bit manipulation, RNG, counters, histories."""

from repro.common.bitops import (
    DEFAULT_HASH_BITS,
    MASK64,
    fold_bits,
    fold_hash,
    from_signed64,
    mask64,
    to_signed64,
)
from repro.common.counters import (
    FPC_DEFAULT_PROBABILITIES,
    ProbabilisticCounter,
    SaturatingCounter,
    expected_occurrences_to_saturate,
)
from repro.common.history import FoldedRegister, GlobalHistory, PathHistory
from repro.common.rng import XorShift64
from repro.common.storage import StorageReport, bits_to_kib

__all__ = [
    "DEFAULT_HASH_BITS",
    "MASK64",
    "FPC_DEFAULT_PROBABILITIES",
    "FoldedRegister",
    "GlobalHistory",
    "PathHistory",
    "ProbabilisticCounter",
    "SaturatingCounter",
    "StorageReport",
    "XorShift64",
    "bits_to_kib",
    "expected_occurrences_to_saturate",
    "fold_bits",
    "fold_hash",
    "from_signed64",
    "mask64",
    "to_signed64",
]
