"""Hardware storage accounting.

The paper argues cost throughout in kilobytes of state: the ideal distance
predictor is 42.6KB, the realistic one 10.1KB, the 128-entry FIFO history
384B, the ISRB 63B, and the full realistic RSEP ~10.8KB (§VI.B).  This module
reproduces that arithmetic so configurations can report their own cost and
tests can pin the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def bits_to_bytes(bits: int) -> float:
    """Convert a bit count to bytes (fractional bytes allowed)."""
    return bits / 8.0


def bits_to_kib(bits: int) -> float:
    """Convert a bit count to kibibytes, as the paper reports sizes."""
    return bits / 8.0 / 1024.0


@dataclass
class StorageReport:
    """An itemised bill of storage for one hardware structure."""

    name: str
    items: list[tuple[str, int]] = field(default_factory=list)

    def add(self, label: str, bits: int) -> None:
        """Record *bits* of storage attributed to *label*."""
        if bits < 0:
            raise ValueError(f"negative storage for {label}")
        self.items.append((label, bits))

    def add_entries(self, label: str, entries: int, bits_per_entry: int) -> None:
        """Record a table of *entries* × *bits_per_entry*."""
        self.add(label, entries * bits_per_entry)

    @property
    def total_bits(self) -> int:
        return sum(bits for _, bits in self.items)

    @property
    def total_bytes(self) -> float:
        return bits_to_bytes(self.total_bits)

    @property
    def total_kib(self) -> float:
        return bits_to_kib(self.total_bits)

    def merged(self, other: "StorageReport", name: str) -> "StorageReport":
        """Combine two reports into a new one."""
        combined = StorageReport(name)
        combined.items = list(self.items) + list(other.items)
        return combined

    def render(self) -> str:
        """Human-readable itemised breakdown."""
        lines = [f"{self.name}:"]
        for label, bits in self.items:
            lines.append(f"  {label:<44} {bits:>10} bits = {bits_to_kib(bits):8.2f} KB")
        lines.append(
            f"  {'TOTAL':<44} {self.total_bits:>10} bits = {self.total_kib:8.2f} KB"
        )
        return "\n".join(lines)


def fifo_history_bits(entries: int, hash_bits: int, csn_bits: int) -> int:
    """Storage of the commit FIFO history (explicit-CSN variant, §IV.D.2.a).

    The paper: 256 entries × (14-bit hash + 10-bit CSN) = 768 bytes;
    without CSNs (implicit variant) 256 × 14 bits = 448 bytes.
    """
    return entries * (hash_bits + csn_bits)


def isrb_bits(entries: int, counter_bits: int, preg_tag_bits: int) -> int:
    """Storage of the ISRB: two counters plus a physical-register tag."""
    return entries * (2 * counter_bits + preg_tag_bits)


def hrf_bits(registers: int, hash_bits: int) -> int:
    """Storage of the Hash Register File (one hash per physical register)."""
    return registers * hash_bits
