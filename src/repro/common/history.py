"""Global branch and path histories with folded views for TAGE indexing.

TAGE-style predictors index each tagged component with a hash of the PC and
a geometrically growing slice of global history.  Recomputing a fold over a
several-hundred-bit history every lookup is wasteful; real designs maintain
*circular shift registers* holding the folded value incrementally.  This
module implements exactly that.
"""

from __future__ import annotations

from repro.common.bitops import fold_bits


class FoldedRegister:
    """Incrementally maintained XOR-fold of the last *history_bits* bits.

    Mirrors the folded-history registers of Seznec's TAGE implementations:
    pushing a bit XORs it in at position 0, rotates, and XORs out the bit
    that falls off the end of the modelled history window.
    """

    __slots__ = ("value", "_history_bits", "_folded_bits", "_out_position")

    def __init__(self, history_bits: int, folded_bits: int) -> None:
        if history_bits < 0 or folded_bits <= 0:
            raise ValueError("invalid fold geometry")
        self.value = 0
        self._history_bits = history_bits
        self._folded_bits = folded_bits
        self._out_position = history_bits % folded_bits if folded_bits else 0

    @property
    def folded_bits(self) -> int:
        return self._folded_bits

    def push(self, new_bit: int, outgoing_bit: int) -> None:
        """Shift *new_bit* in and *outgoing_bit* (aged out) off the fold."""
        mask = (1 << self._folded_bits) - 1
        value = ((self.value << 1) | (new_bit & 1)) & mask
        value ^= (self.value >> (self._folded_bits - 1)) & 1
        value ^= (outgoing_bit & 1) << self._out_position
        self.value = value & mask

    def reset(self) -> None:
        self.value = 0


class GlobalHistory:
    """A bounded global history register with folded views.

    Maintains the raw history (as an integer shift register) plus one folded
    register per (history length, fold width) pair requested by predictors.
    Snapshots are cheap (the raw integer plus folded values), which is what
    checkpoint/restore on squash needs.
    """

    __slots__ = (
        "_bits", "_capacity", "_mask", "_folds", "_fold_hot",
        "_push_fast", "_push_dirty",
    )

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._bits = 0
        self._capacity = capacity
        self._mask = (1 << capacity) - 1
        self._folds: dict[tuple[int, int], FoldedRegister] = {}
        # Per-fold constants for the inlined push loop:
        # (register, history_bits - 1, folded_bits - 1, mask, out_position).
        self._fold_hot: list[tuple] = []
        self._push_fast = None
        self._push_dirty = True

    @property
    def capacity(self) -> int:
        return self._capacity

    def register_fold(self, history_bits: int, folded_bits: int) -> None:
        """Declare that a predictor needs a fold of this geometry."""
        if history_bits > self._capacity:
            raise ValueError(
                f"history_bits {history_bits} exceeds capacity {self._capacity}"
            )
        key = (history_bits, folded_bits)
        if key not in self._folds:
            fold = FoldedRegister(history_bits, folded_bits)
            self._folds[key] = fold
            self._fold_hot.append((
                fold,
                history_bits - 1,
                folded_bits - 1,
                (1 << folded_bits) - 1,
                fold._out_position,
            ))
            self._push_dirty = True

    def push(self, bit: int) -> None:
        """Record one branch outcome (1 = taken).

        The per-fold update (see :meth:`FoldedRegister.push`) runs once
        per fetched branch over every registered geometry — one of the
        simulator's hottest loops, so it is code-generated fully unrolled
        (regenerated whenever a new fold is registered).
        """
        if self._push_dirty:
            self._push_fast = self._build_fast_push()
            self._push_dirty = False
        self._push_fast(bit)

    def _build_fast_push(self):
        """Generate the unrolled push body for the registered folds."""
        env = {"_h": self}
        lines = [
            "def fast_push(bit):",
            "    bit &= 1",
            "    bits = _h._bits",
        ]
        for j, (fold, shift_out, fold_top, mask, out_position) in enumerate(
                self._fold_hot):
            env[f"_f{j}"] = fold
            lines += [
                f"    v = _f{j}.value",
                f"    n = ((v << 1) | bit) & {mask}",
                f"    n ^= (v >> {fold_top}) & 1",
            ]
            if shift_out >= 0:
                lines.append(
                    f"    n ^= ((bits >> {shift_out}) & 1) << {out_position}"
                )
            lines.append(f"    _f{j}.value = n")
        lines.append(f"    _h._bits = ((bits << 1) | bit) & {self._mask}")
        exec("\n".join(lines), env)  # noqa: S102 - static template, no input
        return env["fast_push"]

    def folded(self, history_bits: int, folded_bits: int) -> int:
        """Return the folded value for a registered geometry."""
        return self._folds[(history_bits, folded_bits)].value

    def fold_register(self, history_bits: int,
                      folded_bits: int) -> FoldedRegister:
        """The live :class:`FoldedRegister` for a registered geometry.

        The register object is stable for the lifetime of the history
        (push/restore/reset mutate it in place), so indexers may cache the
        reference and read ``.value`` directly on their hot path.
        """
        return self._folds[(history_bits, folded_bits)]

    def raw(self, bits: int) -> int:
        """Return the youngest *bits* bits of raw history."""
        return self._bits & ((1 << bits) - 1)

    def snapshot(self) -> tuple[int, tuple[int, ...]]:
        """Capture state for checkpoint/restore."""
        return self._bits, tuple(f.value for f in self._folds.values())

    def restore(self, snapshot: tuple[int, tuple[int, ...]]) -> None:
        """Restore a snapshot taken by :meth:`snapshot`."""
        bits, fold_values = snapshot
        self._bits = bits
        for fold, value in zip(self._folds.values(), fold_values):
            fold.value = value

    def snapshot_raw(self) -> int:
        """O(1) checkpoint: the raw shift register alone.

        Every folded register is a pure XOR-fold of its window of the raw
        history (each bit of age ``i`` contributes at folded position
        ``i % folded_bits`` — exactly :func:`repro.common.bitops.fold_bits`
        of the window), so the raw bits determine all fold values and
        :meth:`restore_raw` can rebuild them.  Taking the checkpoint is a
        single int reference — the lazy-snapshot fast path for the fetch
        stage, which checkpoints on *every* fetched branch while restores
        happen only on the (much rarer) squashes.
        """
        return self._bits

    def restore_raw(self, bits: int) -> None:
        """Restore from :meth:`snapshot_raw`, recomputing every fold."""
        self._bits = bits
        for (history_bits, folded_bits), fold in self._folds.items():
            fold.value = fold_bits(
                bits & ((1 << history_bits) - 1), history_bits, folded_bits
            )

    def reset(self) -> None:
        self._bits = 0
        for fold in self._folds.values():
            fold.reset()


class PathHistory:
    """Low-order-PC path history (a few bits per taken branch)."""

    __slots__ = ("value", "_capacity_bits")

    def __init__(self, capacity_bits: int = 32) -> None:
        self.value = 0
        self._capacity_bits = capacity_bits

    def push(self, pc: int) -> None:
        """Record one bit of path information from a branch PC."""
        bit = (pc >> 2) & 1
        self.value = ((self.value << 1) | bit) & ((1 << self._capacity_bits) - 1)

    def raw(self, bits: int) -> int:
        return self.value & ((1 << bits) - 1)

    def snapshot(self) -> int:
        return self.value

    def restore(self, snapshot: int) -> None:
        self.value = snapshot

    def reset(self) -> None:
        self.value = 0
