"""Bit-level utilities shared across the simulator.

Everything in the simulator manipulates 64-bit two's-complement values stored
as non-negative Python integers in ``[0, 2**64)``.  This module centralises
masking, sign conversion and the XOR-folding hash of paper §IV.A.
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1
MASK32 = (1 << 32) - 1

#: Cache-line geometry (64-byte lines, Table I).  Canonical home so both
#: the memory hierarchy and the trace builder (which precomputes each
#: instruction's line index) agree without a layering inversion.
LINE_SHIFT = 6

#: Hash width used by the paper (deliberately not a power of two so that
#: common values such as 0x0 and -1 do not collide, §IV.A).
DEFAULT_HASH_BITS = 14


def mask64(value: int) -> int:
    """Truncate *value* to an unsigned 64-bit integer."""
    return value & MASK64


def to_signed64(value: int) -> int:
    """Interpret an unsigned 64-bit integer as two's-complement signed."""
    value &= MASK64
    if value >= 1 << 63:
        return value - (1 << 64)
    return value


def from_signed64(value: int) -> int:
    """Encode a Python integer as an unsigned 64-bit two's-complement word."""
    return value & MASK64


def bit_select(value: int, hi: int, lo: int) -> int:
    """Return bits ``value[hi..lo]`` inclusive, as in hardware notation."""
    if hi < lo:
        raise ValueError(f"bit_select requires hi >= lo, got [{hi}..{lo}]")
    width = hi - lo + 1
    return (value >> lo) & ((1 << width) - 1)


def fold_hash(value: int, bits: int = DEFAULT_HASH_BITS) -> int:
    """XOR-fold a 64-bit value into a *bits*-wide hash (paper §IV.A).

    The fold iteratively XORs consecutive *bits*-wide chunks of the value,
    e.g. for ``bits == 14``::

        Hash[13..0] = val[13..0] ^ val[27..14] ^ val[41..28]
                      ^ val[55..42] ^ val[63..56]

    The trailing partial chunk is XORed in as-is (zero-extended), exactly as
    the formula above does for ``val[63..56]``.
    """
    if not 1 <= bits <= 64:
        raise ValueError(f"hash width must be in [1, 64], got {bits}")
    value &= MASK64
    mask = (1 << bits) - 1
    acc = 0
    while value:
        acc ^= value & mask
        value >>= bits
    return acc


def fold_bits(value: int, in_bits: int, out_bits: int) -> int:
    """XOR-fold an *in_bits*-wide value into *out_bits* bits.

    Used to compress long global histories into table-index-sized words for
    TAGE-style predictors.
    """
    if out_bits <= 0:
        return 0
    mask_out = (1 << out_bits) - 1
    value &= (1 << in_bits) - 1
    acc = 0
    while value:
        acc ^= value & mask_out
        value >>= out_bits
    return acc


def popcount64(value: int) -> int:
    """Number of set bits in the low 64 bits of *value*."""
    return (value & MASK64).bit_count()


def is_power_of_two(value: int) -> bool:
    """True iff *value* is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return ``log2(value)`` for an exact power of two, else raise."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1
