"""Deterministic pseudo-random number generation.

Every stochastic decision in the simulator — probabilistic confidence-counter
updates, commit-group sampling, synthetic workload value streams — draws from
an explicitly seeded :class:`XorShift64` instance so that runs are
reproducible bit-for-bit and independent subsystems never perturb each
other's streams.
"""

from __future__ import annotations

from repro.common.bitops import MASK64


class XorShift64:
    """Marsaglia xorshift64* generator.

    Small, fast and plenty good enough for microarchitectural sampling
    decisions.  A zero seed is remapped to a fixed non-zero constant because
    the xorshift state must never be zero.
    """

    __slots__ = ("_state",)

    _MULT = 0x2545F4914F6CDD1D

    def __init__(self, seed: int = 0x9E3779B97F4A7C15) -> None:
        self._state = (seed & MASK64) or 0x9E3779B97F4A7C15

    def next_u64(self) -> int:
        """Return the next 64-bit unsigned integer."""
        x = self._state
        x ^= (x >> 12)
        x ^= (x << 25) & MASK64
        x ^= (x >> 27)
        self._state = x
        return (x * self._MULT) & MASK64

    def next_below(self, bound: int) -> int:
        """Return a value uniform in ``[0, bound)``; *bound* must be > 0."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self.next_u64() % bound

    def next_float(self) -> float:
        """Return a float uniform in ``[0, 1)``."""
        return self.next_u64() / float(1 << 64)

    def chance(self, probability: float) -> bool:
        """Return True with the given probability in ``[0, 1]``."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self.next_float() < probability

    def choice(self, sequence):
        """Return a uniformly chosen element of a non-empty sequence."""
        if not sequence:
            raise ValueError("cannot choose from an empty sequence")
        return sequence[self.next_below(len(sequence))]

    def shuffle(self, items: list) -> None:
        """Fisher-Yates shuffle of *items* in place."""
        for i in range(len(items) - 1, 0, -1):
            j = self.next_below(i + 1)
            items[i], items[j] = items[j], items[i]

    def fork(self, salt: int) -> "XorShift64":
        """Derive an independent generator from this one and a salt.

        Forking lets subsystems own private streams derived from one master
        seed without sharing state.
        """
        mixed = (self._state ^ (salt * 0xBF58476D1CE4E5B9)) & MASK64
        return XorShift64(mixed or 0xD6E8FEB86659FD93)
