"""Crash-safe file writes: temp file + ``os.replace`` (+ ``fsync``).

Every artifact this project persists — packed traces, µarch
checkpoints, ``RunResult`` JSON, shard artifacts — goes through the same
dance: write the full payload to a temporary file in the destination
directory, flush and ``fsync`` it, then ``os.replace`` it over the final
name.  Readers therefore never observe a partial write (``os.replace``
is atomic on POSIX within one filesystem), an interrupted writer leaves
at worst a ``*.tmp`` orphan that is never loaded, and concurrent writers
race benignly (last complete payload wins).

:class:`~repro.workloads.store.TraceStore` pioneered the pattern; this
module is the shared implementation so result artifacts and shard spool
files get the identical guarantee instead of re-growing their own
half-correct copies.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_bytes(
    path: str | os.PathLike, data: bytes, fsync: bool = True
) -> Path:
    """Atomically replace *path* with *data*; returns the final path.

    The temporary file lives in *path*'s directory so the final
    ``os.replace`` never crosses a filesystem boundary.  With *fsync*
    (the default) the payload is durable before the rename, so a crash
    can never promote an empty or partially-flushed file to the final
    name.  Errors propagate — callers that want best-effort semantics
    (the trace store on a read-only cache) catch ``OSError`` themselves.
    """
    path = Path(path)
    fd, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.stem, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(
    path: str | os.PathLike,
    text: str,
    encoding: str = "utf-8",
    fsync: bool = True,
) -> Path:
    """:func:`atomic_write_bytes` for text payloads."""
    return atomic_write_bytes(path, text.encode(encoding), fsync=fsync)
