"""Load and store queues (Table I: 72-entry LQ, 48-entry SQ, STLF 4 cycles).

Ordering discipline:

* a load may not issue while an older store to the *same word* has not yet
  produced its data; once that store has executed, the load forwards from
  it with the 4-cycle store-to-load latency;
* older stores whose addresses are still unknown (not yet issued) do not
  block a load unless the Store Sets predictor says so — if the gamble is
  wrong, the store detects the ordering violation when it executes and the
  pipeline squashes from the offending load (training Store Sets).

Because the timing model is trace-driven, every queue entry's effective
address is known at dispatch, so conflict checks are indexed by word: each
queue keeps a side map from word address to its (age-ordered) entries and
a conflict scan only walks the same-word bucket instead of the whole
queue.  Bucket order mirrors queue order, so results are identical to the
full scans they replace.
"""

from __future__ import annotations

WORD_SHIFT = 3  # conflict detection at 8-byte granularity


class LoadStoreQueues:
    """Bounded LQ/SQ with forwarding and violation detection."""

    def __init__(
        self,
        lq_capacity: int = 72,
        sq_capacity: int = 48,
        stlf_latency: int = 4,
    ) -> None:
        self.lq_capacity = lq_capacity
        self.sq_capacity = sq_capacity
        self.stlf_latency = stlf_latency
        self._loads: list = []
        self._stores: list = []
        self._loads_by_word: dict[int, list] = {}
        self._stores_by_word: dict[int, list] = {}
        self.forwards = 0
        self.violations = 0

    # ------------------------------------------------------------------

    @property
    def lq_full(self) -> bool:
        return len(self._loads) >= self.lq_capacity

    @property
    def sq_full(self) -> bool:
        return len(self._stores) >= self.sq_capacity

    @property
    def lq_occupancy(self) -> int:
        return len(self._loads)

    @property
    def sq_occupancy(self) -> int:
        return len(self._stores)

    def add_load(self, op) -> None:
        if self.lq_full:
            raise OverflowError("LQ overflow")
        self._loads.append(op)
        word = op.d.addr >> WORD_SHIFT
        bucket = self._loads_by_word.get(word)
        if bucket is None:
            self._loads_by_word[word] = [op]
        else:
            bucket.append(op)

    def add_store(self, op) -> None:
        if self.sq_full:
            raise OverflowError("SQ overflow")
        self._stores.append(op)
        word = op.d.addr >> WORD_SHIFT
        bucket = self._stores_by_word.get(word)
        if bucket is None:
            self._stores_by_word[word] = [op]
        else:
            bucket.append(op)

    def remove(self, op) -> None:
        """Drop *op* at commit."""
        word = op.d.addr >> WORD_SHIFT
        if op.d.is_load:
            self._loads.remove(op)
            bucket = self._loads_by_word[word]
            bucket.remove(op)
            if not bucket:
                del self._loads_by_word[word]
        else:
            self._stores.remove(op)
            bucket = self._stores_by_word[word]
            bucket.remove(op)
            if not bucket:
                del self._stores_by_word[word]

    def squash(self, min_seq: int) -> None:
        """Drop all entries with sequence number >= *min_seq*."""
        self._loads = [o for o in self._loads if o.d.seq < min_seq]
        self._stores = [o for o in self._stores if o.d.seq < min_seq]
        self._rebuild_buckets()

    def _rebuild_buckets(self) -> None:
        loads_by_word: dict[int, list] = {}
        for op in self._loads:
            loads_by_word.setdefault(op.d.addr >> WORD_SHIFT, []).append(op)
        stores_by_word: dict[int, list] = {}
        for op in self._stores:
            stores_by_word.setdefault(op.d.addr >> WORD_SHIFT, []).append(op)
        self._loads_by_word = loads_by_word
        self._stores_by_word = stores_by_word

    # ------------------------------------------------------------------

    def blocking_store(self, load_op):
        """The youngest older same-word store that has not executed yet.

        Such a store *will* forward; the load must wait for its data.
        """
        bucket = self._stores_by_word.get(load_op.d.addr >> WORD_SHIFT)
        if not bucket:
            return None
        load_seq = load_op.d.seq
        blocking = None
        for store in bucket:
            if store.d.seq >= load_seq:
                break
            if not store.executed:
                blocking = store
        return blocking

    def forwarding_store(self, load_op, cycle: int):
        """The youngest older executed same-word store, if its data is
        available by *cycle* (store-to-load forwarding)."""
        bucket = self._stores_by_word.get(load_op.d.addr >> WORD_SHIFT)
        if not bucket:
            return None
        load_seq = load_op.d.seq
        source = None
        for store in bucket:
            if store.d.seq >= load_seq:
                break
            if store.executed:
                source = store
        return source  # may still be completing; caller checks timing

    def find_violations(self, store_op) -> list:
        """Younger same-word loads that already issued: ordering violations.

        Called when *store_op* executes.  Returns the violating loads,
        oldest first (the squash restarts at the oldest one).
        """
        bucket = self._loads_by_word.get(store_op.d.addr >> WORD_SHIFT)
        if not bucket:
            return []
        store_seq = store_op.d.seq
        violators = [
            load
            for load in bucket
            if load.d.seq > store_seq and load.issued
        ]
        if violators:
            self.violations += len(violators)
            violators.sort(key=lambda o: o.d.seq)
        return violators
