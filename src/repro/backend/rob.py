"""Reorder buffer: the in-order backbone of the out-of-order core.

Holds in-flight instructions in program order (Table I: 192 entries).
Commit drains from the head; squashes drop from the tail.  RSEP's
rename-side producer FIFO (§IV.E.1) is a separate structure
(:class:`repro.core.sharing.ProducerWindow`) managed alongside it.
"""

from __future__ import annotations

from collections import deque


class ReorderBuffer:
    """Bounded FIFO of in-flight instructions."""

    def __init__(self, capacity: int = 192) -> None:
        if capacity <= 0:
            raise ValueError("ROB needs at least one entry")
        self.capacity = capacity
        self._entries: deque = deque()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def push(self, op) -> None:
        if self.full:
            raise OverflowError("ROB overflow")
        self._entries.append(op)

    def head(self):
        return self._entries[0]

    def pop_head(self):
        return self._entries.popleft()

    def pop_tail(self):
        """Remove the youngest entry (squash walk-back)."""
        return self._entries.pop()

    def tail(self):
        return self._entries[-1]
