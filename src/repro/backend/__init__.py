"""Out-of-order backend resources: ROB, IQ, LSQ, FUs, Store Sets."""

from repro.backend.fu import IssuePorts, PortConfig
from repro.backend.iq import IssueQueue
from repro.backend.lsq import LoadStoreQueues
from repro.backend.rob import ReorderBuffer
from repro.backend.store_sets import StoreSets

__all__ = [
    "IssuePorts",
    "IssueQueue",
    "LoadStoreQueues",
    "PortConfig",
    "ReorderBuffer",
    "StoreSets",
]
