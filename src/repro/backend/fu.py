"""Functional units and issue ports (Table I).

8-wide issue over: 4 ALUs (one doubling as a 3-cycle multiplier, one as a
25-cycle *non-pipelined* divider), 3 FP units (one FP multiplier, one
11-cycle non-pipelined FP divider), 2 load/store ports and 1 store-only
port.  Branches resolve on ALU ports.

RSEP validation µ-ops also issue through this structure (§IV.F): in
``lock_fu`` mode a validation µ-op must use the same port class as the
instruction it validates; otherwise it may use any port, with non-load
ports given priority so that load throughput is not strangled — the
distinction Fig. 6 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import FuClass


@dataclass(frozen=True)
class PortConfig:
    """Issue-port provisioning; defaults are Table I."""

    issue_width: int = 8
    alu_count: int = 4
    fp_count: int = 3
    ldst_ports: int = 2
    store_only_ports: int = 1
    mul_per_cycle: int = 1
    fpmul_per_cycle: int = 1
    div_latency: int = 25
    fpdiv_latency: int = 11


class IssuePorts:
    """Per-cycle issue bandwidth accounting."""

    def __init__(self, config: PortConfig | None = None) -> None:
        self.config = config or PortConfig()
        # Hot-path copies of the per-cycle port limits (avoids chasing
        # self.config.* inside try_issue).
        c = self.config
        self._issue_width = c.issue_width
        self._alu_count = c.alu_count
        self._fp_count = c.fp_count
        self._ldst_ports = c.ldst_ports
        self._store_only_ports = c.store_only_ports
        self._mul_per_cycle = c.mul_per_cycle
        self._fpmul_per_cycle = c.fpmul_per_cycle
        self._cycle = -1
        self._total = 0
        self._alu = 0
        self._fp = 0
        self._ldst = 0
        self._store_only = 0
        self._mul = 0
        self._fpmul = 0
        self._div_busy_until = 0
        self._fpdiv_busy_until = 0
        self.validation_on_load_port = 0
        self.validation_issued = 0

    # ------------------------------------------------------------------

    def new_cycle(self, cycle: int) -> None:
        """Reset per-cycle counters."""
        self._cycle = cycle
        self._total = 0
        self._alu = 0
        self._fp = 0
        self._ldst = 0
        self._store_only = 0
        self._mul = 0
        self._fpmul = 0

    @property
    def issued_this_cycle(self) -> int:
        """Slots claimed this cycle (hot paths read ``_total`` directly)."""
        return self._total

    def _has_slot(self) -> bool:
        return self._total < self.config.issue_width

    # ------------------------------------------------------------------

    def try_issue(self, fu: FuClass, cycle: int) -> bool:
        """Claim an issue slot + port for one instruction.  True on success."""
        if self._total >= self._issue_width:
            return False
        if fu == FuClass.INT_ALU or fu == FuClass.BRANCH or fu == FuClass.NONE:
            if self._alu >= self._alu_count:
                return False
            self._alu += 1
        elif fu == FuClass.MEM_LOAD:
            if self._ldst >= self._ldst_ports:
                return False
            self._ldst += 1
        elif fu == FuClass.MEM_STORE:
            if self._store_only < self._store_only_ports:
                self._store_only += 1
            elif self._ldst < self._ldst_ports:
                self._ldst += 1
            else:
                return False
        elif fu == FuClass.FP_ALU:
            if self._fp >= self._fp_count:
                return False
            self._fp += 1
        elif fu == FuClass.FP_MUL:
            if self._fp >= self._fp_count or self._fpmul >= self._fpmul_per_cycle:
                return False
            self._fp += 1
            self._fpmul += 1
        elif fu == FuClass.FP_DIV:
            if self._fp >= self._fp_count or cycle < self._fpdiv_busy_until:
                return False
            self._fp += 1
            self._fpdiv_busy_until = cycle + self.config.fpdiv_latency
        elif fu == FuClass.INT_MUL:
            if self._alu >= self._alu_count or self._mul >= self._mul_per_cycle:
                return False
            self._alu += 1
            self._mul += 1
        elif fu == FuClass.INT_DIV:
            if self._alu >= self._alu_count or cycle < self._div_busy_until:
                return False
            self._alu += 1
            self._div_busy_until = cycle + self.config.div_latency
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown FU class {fu!r}")
        self._total += 1
        return True

    # ------------------------------------------------------------------

    def try_issue_validation(self, fu: FuClass, cycle: int,
                             lock_fu: bool) -> bool:
        """Claim a slot + port for a validation µ-op (a 64-bit compare).

        ``lock_fu`` forces the port class of the validated instruction —
        the scheme §IV.F.1b shows starves load bandwidth.  Otherwise any
        port may perform the compare, non-load ports first.
        """
        if not self._has_slot():
            return False
        c = self.config
        if lock_fu:
            if fu == FuClass.MEM_LOAD:
                if self._ldst >= c.ldst_ports:
                    return False
                self._ldst += 1
                self.validation_on_load_port += 1
            elif fu in (FuClass.FP_ALU, FuClass.FP_MUL, FuClass.FP_DIV):
                if self._fp >= c.fp_count:
                    return False
                self._fp += 1
            else:
                if self._alu >= c.alu_count:
                    return False
                self._alu += 1
            self._total += 1
            self.validation_issued += 1
            return True
        # Any-port mode: ALU, then FP, then store-only, then load ports.
        if self._alu < c.alu_count:
            self._alu += 1
        elif self._fp < c.fp_count:
            self._fp += 1
        elif self._store_only < c.store_only_ports:
            self._store_only += 1
        elif self._ldst < c.ldst_ports:
            self._ldst += 1
            self.validation_on_load_port += 1
        else:
            return False
        self._total += 1
        self.validation_issued += 1
        return True
