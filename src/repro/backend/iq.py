"""Unified instruction queue / scheduler (Table I: 60 entries).

The IQ holds dispatched-but-not-issued instructions.  Selection is
oldest-first among ready instructions, bounded by issue ports.  The
readiness predicate itself lives in the pipeline (it touches register
ready times, LSQ state and RSEP validation ordering); the IQ provides
bounded storage and ordered iteration.
"""

from __future__ import annotations


class IssueQueue:
    """Bounded, age-ordered scheduler window."""

    def __init__(self, capacity: int = 60) -> None:
        if capacity <= 0:
            raise ValueError("IQ needs at least one entry")
        self.capacity = capacity
        self._entries: list = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        """Oldest-first iteration (entries are inserted in age order)."""
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def insert(self, op) -> None:
        if self.full:
            raise OverflowError("IQ overflow")
        self._entries.append(op)

    def remove_issued(self, issued: list) -> None:
        """Drop the instructions selected this cycle."""
        if not issued:
            return
        issued_set = set(map(id, issued))
        self._entries = [
            op for op in self._entries if id(op) not in issued_set
        ]

    def squash(self, predicate) -> int:
        """Drop entries matching *predicate*; returns how many."""
        before = len(self._entries)
        self._entries = [op for op in self._entries if not predicate(op)]
        return before - len(self._entries)
