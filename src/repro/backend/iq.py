"""Unified instruction queue / scheduler (Table I: 60 entries).

The IQ holds dispatched-but-not-issued instructions.  Selection is
oldest-first among ready instructions, bounded by issue ports.  The
readiness predicate and the event-driven wakeup machinery live in the
pipeline (they touch register ready times, LSQ state and RSEP validation
ordering); the IQ provides bounded storage and ordered iteration.

Removal is O(1) amortised: issued entries are tombstoned in place (the
entry list keeps age order, with each op carrying its own position in
``iq_index`` — no side dict to maintain) and the list is compacted only
when tombstones dominate, which eliminates the per-cycle full-list
rebuilds of the original scheduler.
"""

from __future__ import annotations


class IssueQueue:
    """Bounded, age-ordered scheduler window."""

    def __init__(self, capacity: int = 60) -> None:
        if capacity <= 0:
            raise ValueError("IQ needs at least one entry")
        self.capacity = capacity
        self._entries: list = []       # age order; None marks a tombstone
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __iter__(self):
        """Oldest-first iteration (entries are inserted in age order)."""
        return (op for op in self._entries if op is not None)

    @property
    def full(self) -> bool:
        return self._live >= self.capacity

    def insert(self, op) -> None:
        if self._live >= self.capacity:
            raise OverflowError("IQ overflow")
        entries = self._entries
        op.iq_index = len(entries)
        entries.append(op)
        self._live += 1

    def remove_issued(self, issued: list) -> None:
        """Drop the instructions selected this cycle."""
        if not issued:
            return
        entries = self._entries
        for op in issued:
            index = op.iq_index
            if index >= 0 and entries[index] is op:
                entries[index] = None
                op.iq_index = -1
                self._live -= 1
        if len(entries) > 2 * self._live + 16:
            self._compact()

    def _compact(self) -> None:
        self._entries = [op for op in self._entries if op is not None]
        for index, op in enumerate(self._entries):
            op.iq_index = index

    def squash(self, predicate) -> int:
        """Drop entries matching *predicate*; returns how many."""
        before = self._live
        self._entries = [
            op for op in self._entries
            if op is not None and not predicate(op)
        ]
        for index, op in enumerate(self._entries):
            op.iq_index = index
        self._live = len(self._entries)
        return before - self._live
