"""Store Sets memory dependence predictor (Chrysos & Emer [36]).

Table I: 2K-entry SSIT, 1K-entry LFST, not rolled back on squash.  Loads
that have violated memory ordering in the past are assigned to the *store
set* of the offending store; at dispatch they acquire a dependence on the
most recent in-flight store of that set and wait for it to execute.
"""

from __future__ import annotations


class StoreSets:
    """SSIT + LFST memory dependence predictor."""

    INVALID = -1

    def __init__(self, ssit_entries: int = 2048, lfst_entries: int = 1024) -> None:
        if ssit_entries & (ssit_entries - 1) or lfst_entries & (lfst_entries - 1):
            raise ValueError("table sizes must be powers of two")
        self._ssit = [self.INVALID] * ssit_entries
        self._ssit_mask = ssit_entries - 1
        self._lfst: list[object | None] = [None] * lfst_entries
        self._lfst_mask = lfst_entries - 1
        self.violations_trained = 0
        self.dependencies_imposed = 0

    # ------------------------------------------------------------------

    def _ssit_index(self, pc: int) -> int:
        return (pc >> 2) & self._ssit_mask

    def _ssid_of(self, pc: int) -> int:
        return self._ssit[self._ssit_index(pc)]

    # ------------------------------------------------------------------

    def load_dependency(self, load_pc: int):
        """At load dispatch: the in-flight store this load must wait for
        (an opaque object registered by :meth:`store_dispatched`), or None.
        """
        ssid = self._ssid_of(load_pc)
        if ssid == self.INVALID:
            return None
        store = self._lfst[ssid & self._lfst_mask]
        if store is not None:
            self.dependencies_imposed += 1
        return store

    def store_dispatched(self, store_pc: int, store_ref) -> None:
        """At store dispatch: become the last fetched store of the set."""
        ssid = self._ssid_of(store_pc)
        if ssid != self.INVALID:
            self._lfst[ssid & self._lfst_mask] = store_ref

    def store_completed(self, store_pc: int, store_ref) -> None:
        """At store execute/commit: clear the LFST if still ours."""
        ssid = self._ssid_of(store_pc)
        if ssid != self.INVALID:
            slot = ssid & self._lfst_mask
            if self._lfst[slot] is store_ref:
                self._lfst[slot] = None

    # ------------------------------------------------------------------

    def train_violation(self, load_pc: int, store_pc: int) -> None:
        """A load executed before an older conflicting store: merge sets.

        Chrysos & Emer's assignment rules, with the common simplification
        of merging into the smaller SSID.
        """
        self.violations_trained += 1
        load_index = self._ssit_index(load_pc)
        store_index = self._ssit_index(store_pc)
        load_ssid = self._ssit[load_index]
        store_ssid = self._ssit[store_index]
        if load_ssid == self.INVALID and store_ssid == self.INVALID:
            ssid = store_index  # new set named after the store
            self._ssit[load_index] = ssid
            self._ssit[store_index] = ssid
        elif load_ssid == self.INVALID:
            self._ssit[load_index] = store_ssid
        elif store_ssid == self.INVALID:
            self._ssit[store_index] = load_ssid
        else:
            winner = min(load_ssid, store_ssid)
            self._ssit[load_index] = winner
            self._ssit[store_index] = winner
