"""Core and mechanism configuration.

:class:`CoreConfig` encodes Table I.  :class:`MechanismConfig` selects
which of the paper's mechanisms are active, mirroring the five bars of
Fig. 4 plus the realistic variants of Figs. 6 and 7; preset constructors
for each experiment live here so benches and examples share one source of
truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.backend.fu import PortConfig
from repro.core.rsep import RsepConfig
from repro.core.validation import ValidationMode
from repro.core.vp_engine import VpConfig
from repro.frontend.tage import TageConfig
from repro.memory.hierarchy import MemoryConfig
from repro.predictors.confidence import ConfidenceScale, SCALED


@dataclass(frozen=True)
class CoreConfig:
    """The Table I microarchitecture."""

    fetch_width: int = 8
    rename_width: int = 8
    commit_width: int = 8
    fetch_buffer_size: int = 32
    frontend_depth: int = 5          # fetch -> rename latency
    rob_entries: int = 192
    iq_entries: int = 60
    lq_entries: int = 72
    sq_entries: int = 48
    int_pregs: int = 235
    fp_pregs: int = 235
    stlf_latency: int = 4            # store-to-load forwarding (Table I)
    mispredict_penalty: int = 17     # minimum, Table I
    decode_redirect_bubble: int = 3  # direct-branch BTB miss
    ports: PortConfig = field(default_factory=PortConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    tage: TageConfig = field(default_factory=TageConfig)
    zero_idiom_elimination: bool = True  # baseline feature (Table I)
    watchdog_cycles: int = 200_000

    @property
    def redirect_delay(self) -> int:
        """Cycles from resolution to restarted fetch.

        Chosen so that resolution -> corrected rename takes the Table I
        minimum penalty: redirect + frontend_depth + 1 == 17.
        """
        return max(1, self.mispredict_penalty - self.frontend_depth - 1)

    def fingerprint(self) -> str:
        """Content fingerprint of this core configuration.

        Every field participates — there is no display name to exclude:
        the whole value is the machine being simulated.  The tree is
        frozen dataclasses and scalars with deterministic ``repr``.
        Joins the sweep engine's cell keys and the result-lake /
        µarch-checkpoint tokens, so two different cores can never share
        a cached result.
        """
        return repr(self)


@dataclass(frozen=True)
class MechanismConfig:
    """Which speculation/elimination mechanisms are enabled."""

    name: str = "baseline"
    move_elim: bool = False
    zero_pred: bool = False
    rsep: RsepConfig | None = None
    vp: VpConfig | None = None
    confidence: ConfidenceScale = SCALED

    # ------------------------------------------------------------------
    # Fig. 4 presets
    # ------------------------------------------------------------------

    @classmethod
    def baseline(cls) -> "MechanismConfig":
        """Table I core with zero-idiom elimination only."""
        return cls(name="baseline")

    @classmethod
    def zero_prediction(cls) -> "MechanismConfig":
        return cls(name="zero_pred", zero_pred=True)

    @classmethod
    def move_elimination(cls) -> "MechanismConfig":
        return cls(name="move_elim", move_elim=True)

    @classmethod
    def rsep_ideal(cls) -> "MechanismConfig":
        """RSEP with ideal validation and large structures (Fig. 4)."""
        return cls(name="rsep", move_elim=True, rsep=RsepConfig.ideal())

    @classmethod
    def value_prediction(cls) -> "MechanismConfig":
        return cls(name="vpred", vp=VpConfig())

    @classmethod
    def rsep_plus_vp(cls) -> "MechanismConfig":
        return cls(
            name="rsep+vpred",
            move_elim=True,
            rsep=RsepConfig.ideal(),
            vp=VpConfig(),
        )

    # ------------------------------------------------------------------
    # Fig. 6 presets: validation & sampling variants of ideal RSEP
    # ------------------------------------------------------------------

    @classmethod
    def rsep_validation(
        cls,
        mode: ValidationMode,
        sampling: bool = False,
        start_train_threshold: int = 63,
    ) -> "MechanismConfig":
        import dataclasses

        rsep = RsepConfig.ideal()
        predictor = dataclasses.replace(
            rsep.predictor, start_train_threshold=start_train_threshold
        )
        rsep = dataclasses.replace(
            rsep, validation=mode, sampling=sampling, predictor=predictor
        )
        return cls(
            name=f"rsep-val-{mode.value}"
            + (f"-samp{start_train_threshold}" if sampling else ""),
            move_elim=True,
            rsep=rsep,
        )

    # ------------------------------------------------------------------
    # Fig. 7 preset: the 10.1KB realistic configuration
    # ------------------------------------------------------------------

    @classmethod
    def rsep_realistic(cls) -> "MechanismConfig":
        return cls(
            name="rsep-realistic",
            move_elim=True,
            rsep=RsepConfig.realistic(),
        )

    def with_rsep(self, rsep: RsepConfig, name: str | None = None):
        return replace(self, rsep=rsep, name=name or self.name)

    @classmethod
    def preset(cls, name: str) -> "MechanismConfig":
        """Resolve a CLI/spec preset name to its configuration."""
        try:
            return MECHANISM_PRESETS[name]()
        except KeyError:
            raise KeyError(
                f"unknown mechanism {name!r}; choose from "
                f"{sorted(MECHANISM_PRESETS)}"
            ) from None

    def fingerprint(self) -> str:
        """Content fingerprint of this configuration.

        The display name is excluded: it labels the experiment, not the
        machine being simulated.  Everything else is a tree of frozen
        dataclasses, enums and scalars with deterministic ``repr``.
        Used by the sweep engine's cell memo and the µarch-checkpoint
        keys.
        """
        return repr(replace(self, name=""))


#: Mechanism presets addressable by name from CLIs and specs — one per
#: bar of Fig. 4 plus the Fig. 7 realistic configuration.
MECHANISM_PRESETS = {
    "baseline": MechanismConfig.baseline,
    "zero_pred": MechanismConfig.zero_prediction,
    "move_elim": MechanismConfig.move_elimination,
    "rsep": MechanismConfig.rsep_ideal,
    "vpred": MechanismConfig.value_prediction,
    "rsep+vpred": MechanismConfig.rsep_plus_vp,
    "rsep-realistic": MechanismConfig.rsep_realistic,
}
