"""High-level simulation driver: benchmark in, statistics out.

Mirrors the paper's methodology (§V): per benchmark, several checkpoints
(seeds), warm-up then measurement, IPC reported per seed and aggregated
with the harmonic mean.  Window sizes default to laptop-scale values and
follow the environment through :mod:`repro.api.env` (the single
``REPRO_*`` front door; see DESIGN.md §2 on window scaling and §10 on
the API layering).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import env as api_env
from repro.obs import runtime as obs_runtime
from repro.obs.runtime import obs_tracer
from repro.pipeline.config import CoreConfig, MechanismConfig
from repro.pipeline.core import Pipeline
from repro.pipeline.stats import Stats
from repro.sampling import (
    SampledRun,
    SamplingConfig,
    capture_checkpoint,
    restore_checkpoint,
)
from repro.sampling.checkpoint import CHECKPOINT_FORMAT
from repro.workloads.columnar import (
    ColumnarTrace,
    columnar_enabled,
    pack_trace,
)
from repro.workloads.spec2006 import build_benchmark
from repro.workloads.store import TraceStore, workload_code_version
from repro.workloads.trace import Trace, execute

#: In-flight margin so traces never run dry mid-window.
_TRACE_SLACK = 4096

#: Sentinel: "use the environment-configured default store".
_DEFAULT_STORE = object()


def default_windows() -> tuple[int, int]:
    """Deprecated: use :func:`repro.api.env.window_from_env` (or better,
    resolve once into a :class:`repro.api.WindowSpec`)."""
    api_env.deprecated(
        "repro.pipeline.simulator.default_windows",
        "repro.api.env.window_from_env",
    )
    return api_env.window_from_env()


@dataclass
class SimulationResult:
    """Outcome of one (benchmark, mechanism, seed) run."""

    benchmark: str
    mechanism: str
    seed: int
    stats: Stats

    @property
    def ipc(self) -> float:
        return self.stats.ipc


class Simulator:
    """Caches traces and runs pipelines over them.

    Traces are memoised in memory per ``(benchmark, seed, workload-code
    version)`` and — unless persistence is disabled or a store of
    ``None`` is passed — routed through the on-disk
    :class:`~repro.workloads.store.TraceStore`, so each trace is
    interpreted at most once per machine rather than once per process.
    """

    def __init__(
        self,
        core_config: CoreConfig | None = None,
        trace_store: TraceStore | None = _DEFAULT_STORE,  # type: ignore
        columnar: bool | None = None,
    ) -> None:
        self.core_config = core_config or CoreConfig()
        self.trace_store = (
            TraceStore.from_environment()
            if trace_store is _DEFAULT_STORE
            else trace_store
        )
        #: Trace-plane selection: ``None`` follows the environment
        #: (``REPRO_COLUMNAR``); an explicit bool (from a
        #: :class:`~repro.api.spec.StoreSpec`) pins it for this
        #: simulator.  Either plane yields bit-identical stats
        #: (tests/test_columnar_equivalence.py).
        self.columnar = columnar
        # (benchmark, seed, version) -> (trace, budget it was built for).
        # The workload-code version is part of the key so editing e.g.
        # workloads/kernels.py mid-process can never serve a stale trace.
        self._trace_cache: dict[
            tuple[str, int, str], tuple[Trace | ColumnarTrace, int]
        ] = {}

    def trace_for(self, benchmark: str, seed: int,
                  instructions: int) -> Trace | ColumnarTrace:
        """Build (and cache) the functional trace for one checkpoint.

        The interpreter is deterministic, so a trace built for N
        instructions is a prefix of any longer build: a cached trace is
        reused for every request it covers (shorter windows included)
        instead of re-executing the interpreter per requested length.  A
        trace that ended at ``HALT`` before reaching its requested length
        is the complete execution and covers any request.

        Lookup order: in-memory cache, then the on-disk store, then
        interpretation (which also populates the store).  In columnar
        mode (``REPRO_COLUMNAR``, default on — DESIGN.md §9) the cached
        value is a :class:`ColumnarTrace`: cold interpretation packs the
        fresh trace once and both the store write and the runtime view
        share that payload.
        """
        version = workload_code_version()
        key = (benchmark, seed, version)
        entry = self._trace_cache.get(key)
        if entry is not None:
            trace, covered = entry
            if instructions <= covered or len(trace) < covered:
                return trace
        columnar = (
            columnar_enabled() if self.columnar is None else self.columnar
        )
        store = self.trace_store
        if store is not None:
            stored = store.load(
                benchmark, seed, instructions, version, columnar=columnar
            )
            if stored is not None:
                self._trace_cache[key] = stored
                return stored[0]
        built = build_benchmark(benchmark, seed)
        with obs_tracer().span(
            "trace.interp", benchmark=benchmark, seed=seed,
            instructions=instructions,
        ):
            trace = execute(built.program, instructions, built.machine())
        if columnar:
            payload = pack_trace(trace, instructions)
            packed = ColumnarTrace.from_payload(payload)
            # Seed the row cache with the freshly interpreted objects:
            # they are field-identical to decoded rows (pinned by the
            # codec property suite), so the first cold run never
            # re-materialises what the interpreter just built.
            packed.rows[:] = trace.instructions
            trace = packed
            if store is not None:
                store.save_payload(payload, benchmark, seed, version)
        elif store is not None:
            store.save(trace, benchmark, seed, instructions, version)
        self._trace_cache[key] = (trace, instructions)
        return trace

    def run_benchmark(
        self,
        benchmark: str,
        mechanisms: MechanismConfig,
        warmup: int | None = None,
        measure: int | None = None,
        seed: int = 1,
        sampling: SamplingConfig | None = None,
    ) -> SimulationResult:
        """Run one benchmark/mechanism/seed combination.

        ``sampling=None`` follows the environment (``REPRO_SAMPLING``
        and friends, like the window variables); an *inactive*
        configuration — disabled, or the degenerate 100%-duty ratio —
        takes the plain full-detail path unchanged.
        """
        if warmup is None or measure is None:
            default_warm, default_measure = api_env.window_from_env()
            warmup = default_warm if warmup is None else warmup
            measure = default_measure if measure is None else measure
        if sampling is None:
            sampling = api_env.sampling_from_env()
        if sampling.active:
            return self._run_sampled(
                benchmark, mechanisms, warmup, measure, seed, sampling
            )
        trace = self.trace_for(benchmark, seed, warmup + measure + _TRACE_SLACK)
        pipeline = Pipeline(trace, self.core_config, mechanisms, seed)
        stats = pipeline.run(measure, warmup)
        self._collect_telemetry(benchmark, mechanisms, seed, pipeline)
        return SimulationResult(benchmark, mechanisms.name, seed, stats)

    @staticmethod
    def _collect_telemetry(benchmark, mechanisms, seed, pipeline) -> None:
        """Bank the pipeline's metric series with the active obs runtime
        (no-op — one ``None`` check — when nothing observes)."""
        runtime = obs_runtime.current()
        if runtime is not None:
            runtime.collect_cell(benchmark, mechanisms.name, seed, pipeline)

    def _checkpoint_token(
        self, mechanisms: MechanismConfig, warmup: int
    ) -> str:
        """Everything (beyond benchmark/seed) the warmed state depends on."""
        return "\x00".join((
            workload_code_version(),
            str(warmup),
            repr(self.core_config),
            mechanisms.fingerprint(),
            f"ckpt{CHECKPOINT_FORMAT}",
        ))

    def _run_sampled(
        self,
        benchmark: str,
        mechanisms: MechanismConfig,
        warmup: int,
        measure: int,
        seed: int,
        sampling: SamplingConfig,
    ) -> SimulationResult:
        """Interval-sampled run: warmed warm-up (or a restored µarch
        checkpoint), then alternating detail/warming over the window."""
        trace = self.trace_for(benchmark, seed, warmup + measure + _TRACE_SLACK)
        pipeline = Pipeline(trace, self.core_config, mechanisms, seed)
        run = SampledRun(pipeline, sampling)
        store = self.trace_store
        use_checkpoints = (
            store is not None and sampling.checkpoints and warmup > 0
        )
        restored = False
        token = ""
        if use_checkpoints:
            token = self._checkpoint_token(mechanisms, warmup)
            payload = store.load_checkpoint(benchmark, seed, token)
            if payload is not None:
                try:
                    restore_checkpoint(pipeline, payload)
                    restored = True
                except Exception:
                    # Stale/foreign payload: the pipeline may be half
                    # mutated — rebuild and warm from scratch.
                    pipeline = Pipeline(
                        trace, self.core_config, mechanisms, seed
                    )
                    run = SampledRun(pipeline, sampling)
        if not restored and warmup > 0:
            run.warm_up(warmup)
            if use_checkpoints:
                store.save_checkpoint(
                    capture_checkpoint(pipeline), benchmark, seed, token
                )
        stats = run.measure(measure)
        self._collect_telemetry(benchmark, mechanisms, seed, pipeline)
        return SimulationResult(benchmark, mechanisms.name, seed, stats)

    def run_trace(
        self,
        trace: Trace,
        mechanisms: MechanismConfig,
        warmup: int = 0,
        measure: int | None = None,
        seed: int = 1,
    ) -> SimulationResult:
        """Run an explicit trace (used by tests and examples)."""
        if measure is None:
            measure = len(trace)
        pipeline = Pipeline(trace, self.core_config, mechanisms, seed)
        stats = pipeline.run(measure, warmup)
        return SimulationResult(trace.name, mechanisms.name, seed, stats)
