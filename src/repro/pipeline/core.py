"""The cycle-level out-of-order pipeline (Fig. 3 with Table I resources).

Trace-driven timing model: the committed-path instruction stream from the
functional interpreter is replayed through real structural resources —
8-wide fetch/rename/commit, 192-entry ROB, 60-entry IQ, 72/48-entry LQ/SQ,
235+235 physical registers, the Table I port mix, TAGE front end and the
three-level cache hierarchy.  All speculation (branch direction/target,
zero, distance/equality, value) uses real predictors and is resolved
against trace ground truth; mispredictions squash exactly as the paper
prescribes (commit-time validation, full flush).

Stage order within a cycle is commit → issue → rename → fetch, which
enforces the usual one-cycle minimum between dispatch and issue and between
writeback and commit.
"""

from __future__ import annotations

from collections import deque

from repro.backend.fu import IssuePorts
from repro.backend.iq import IssueQueue
from repro.backend.lsq import LoadStoreQueues
from repro.backend.rob import ReorderBuffer
from repro.backend.store_sets import StoreSets
from repro.common.history import GlobalHistory, PathHistory
from repro.common.rng import XorShift64
from repro.core.rsep import RsepUnit
from repro.core.sharing import ProducerWindow
from repro.core.validation import ValidationMode, ValidationQueue
from repro.core.vp_engine import VpEngine
from repro.frontend.branch_unit import BranchUnit
from repro.isa.instruction import DynInst, NO_REG
from repro.isa.opcodes import FuClass
from repro.isa.registers import reg_class
from repro.memory.cache import LINE_SHIFT
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import CoreConfig, MechanismConfig
from repro.pipeline.stats import Stats
from repro.predictors.zero import ZeroPredictor
from repro.rename.free_list import FreeList
from repro.rename.isrb import Isrb
from repro.rename.map_table import RenameMap
from repro.rename.move_elim import MoveEliminator
from repro.rename.zero_idiom import ZeroIdiomEliminator
from repro.workloads.trace import Trace

_INF = 1 << 60


class PipelineError(RuntimeError):
    """Raised on internal inconsistencies (bugs) or deadlock."""


class InflightOp:
    """Timing and rename state of one in-flight dynamic instruction."""

    __slots__ = (
        "d", "trace_index", "rename_ready_cycle",
        "src_pregs", "dest_preg", "old_preg",
        "allocated", "shared", "eliminated",
        "zero_pred", "zero_pred_used",
        "dist_pred", "dist_used", "likely_candidate",
        "producer", "equality_ok",
        "vp_pred", "vp_used", "vp_ok",
        "fetch_outcome", "fetch_cycle",
        "issued", "issue_cycle", "complete_cycle",
        "executed", "validation_done_cycle", "retained",
        "store_dep", "forward_from",
        "committed", "squashed",
    )

    def __init__(self, d: DynInst, trace_index: int, fetch_cycle: int,
                 rename_ready_cycle: int) -> None:
        self.d = d
        self.trace_index = trace_index
        self.fetch_cycle = fetch_cycle
        self.rename_ready_cycle = rename_ready_cycle
        self.src_pregs: tuple = ()
        self.dest_preg = NO_REG
        self.old_preg = NO_REG
        self.allocated = False
        self.shared = False
        self.eliminated = None
        self.zero_pred = None
        self.zero_pred_used = False
        self.dist_pred = None
        self.dist_used = False
        self.likely_candidate = False
        self.producer = None
        self.equality_ok = False
        self.vp_pred = None
        self.vp_used = False
        self.vp_ok = False
        self.fetch_outcome = None
        self.issued = False
        self.issue_cycle = None
        self.complete_cycle = None
        self.executed = False
        self.validation_done_cycle = None
        self.retained = False
        self.store_dep = None
        self.forward_from = None
        self.committed = False
        self.squashed = False

    @property
    def validation_required(self) -> bool:
        return self.dist_used or (
            self.likely_candidate and self.producer is not None
        )


class Pipeline:
    """One simulated core running one trace."""

    def __init__(
        self,
        trace: Trace,
        config: CoreConfig | None = None,
        mechanisms: MechanismConfig | None = None,
        seed: int = 1,
    ) -> None:
        self.trace = trace
        self.config = config or CoreConfig()
        self.mechanisms = mechanisms or MechanismConfig.baseline()
        c = self.config
        m = self.mechanisms

        rng = XorShift64(0xFACE ^ (seed * 0x9E3779B97F4A7C15))
        self.history = GlobalHistory()
        self.path = PathHistory()
        self.branch_unit = BranchUnit(
            self.history, self.path, rng.fork(0xB4), c.tage
        )
        self.hierarchy = MemoryHierarchy(c.memory)
        self.free_list = FreeList(c.int_pregs, c.fp_pregs)
        self.zero_preg = self.free_list.zero_preg
        self.rename_map = RenameMap(self.free_list)
        isrb_entries = m.rsep.isrb_entries if m.rsep else 24
        isrb_counter_bits = m.rsep.isrb_counter_bits if m.rsep else 6
        self.isrb = Isrb(isrb_entries, isrb_counter_bits)
        self.zero_idiom_elim = ZeroIdiomEliminator(self.zero_preg)
        self.move_eliminator = MoveEliminator(self.rename_map, self.isrb)
        self.rsep = (
            RsepUnit(m.rsep, self.history, self.path, rng.fork(0x27),
                     m.confidence)
            if m.rsep
            else None
        )
        self.vp = (
            VpEngine(m.vp, self.history, self.path, rng.fork(0x99),
                     m.confidence)
            if m.vp
            else None
        )
        self.zero_predictor = (
            ZeroPredictor(rng=rng.fork(0x2E), scale=m.confidence)
            if m.zero_pred
            else None
        )
        validation_mode = m.rsep.validation if m.rsep else ValidationMode.IDEAL
        self.validation_queue = ValidationQueue(validation_mode)
        self.store_sets = StoreSets()
        self.rob = ReorderBuffer(c.rob_entries)
        self.iq = IssueQueue(c.iq_entries)
        self.lsq = LoadStoreQueues(c.lq_entries, c.sq_entries, c.stlf_latency)
        self.ports = IssuePorts(c.ports)
        self.producer_window = ProducerWindow(c.rob_entries)
        self.stats = Stats()

        self._reg_ready: dict[int, int] = {}
        self._fetch_buffer: deque[InflightOp] = deque()
        self._cursor = 0
        self._next_fetch_cycle = 0
        self._fetch_stalled_by: InflightOp | None = None
        self._last_fetch_line = -1
        self.cycle = 0
        self._total_committed = 0
        self._last_progress_cycle = 0

    # ==================================================================
    # Public driver
    # ==================================================================

    def run(self, instructions: int, warmup: int = 0) -> Stats:
        """Warm up, then measure a window of *instructions* commits."""
        while self._total_committed < warmup and not self._finished():
            self._step()
        self.stats.reset_window()
        target = self._total_committed + instructions
        while self._total_committed < target and not self._finished():
            self._step()
        return self.stats

    def _finished(self) -> bool:
        return (
            self._cursor >= len(self.trace)
            and self.rob.empty
            and not self._fetch_buffer
        )

    def _step(self) -> None:
        cycle = self.cycle
        self._commit(cycle)
        self._issue(cycle)
        self._rename(cycle)
        self._fetch(cycle)
        self.stats.cycles += 1
        self.cycle = cycle + 1
        if cycle - self._last_progress_cycle > self.config.watchdog_cycles:
            raise PipelineError(
                f"deadlock: no commit for {self.config.watchdog_cycles} "
                f"cycles (cycle {cycle}, ROB {len(self.rob)}, "
                f"IQ {len(self.iq)}, head "
                f"{self.rob.head().d if not self.rob.empty else None})"
            )

    # ==================================================================
    # Commit
    # ==================================================================

    def _commit(self, cycle: int) -> None:
        stats = self.stats
        committed = 0
        producers_group: list[InflightOp] = []
        squash = None  # (first_seq, refetch_index, cause)

        while committed < self.config.commit_width and not self.rob.empty:
            op = self.rob.head()
            if op.complete_cycle is None or op.complete_cycle >= cycle:
                break
            if op.validation_required and (
                op.validation_done_cycle is None
                or op.validation_done_cycle >= cycle
            ):
                break
            d = op.d

            # --- commit-time validation failures -----------------------
            if op.dist_used and not op.equality_ok:
                # §IV.G: flush once the mispredicted instruction reaches
                # the ROB head; it re-executes unpredicted.
                self.rsep.on_mispredict(op.dist_pred)
                self.rsep.on_commit_used(op, False)
                stats.rsep_mispredicts += 1
                stats.squashes_rsep += 1
                squash = (d.seq, op.trace_index, "rsep")
                break
            if op.zero_pred_used and d.result != 0:
                self.zero_predictor.on_mispredict(op.zero_pred)
                stats.zero_mispredicts += 1
                stats.squashes_zero += 1
                squash = (d.seq, op.trace_index, "zero")
                break

            # --- commit the instruction --------------------------------
            self.rob.pop_head()
            op.committed = True
            committed += 1
            stats.committed += 1
            self._total_committed += 1

            if d.is_branch:
                stats.branches += 1
                if op.fetch_outcome is not None:
                    if op.fetch_outcome.mispredicted:
                        stats.branch_mispredicts += 1
                    self.branch_unit.commit_branch(op.fetch_outcome)
            if d.is_load:
                stats.loads += 1
                self.lsq.remove(op)
            elif d.is_store:
                stats.stores += 1
                self.lsq.remove(op)
                self.store_sets.store_completed(d.pc, op)
                self.hierarchy.store(d.pc, d.addr, cycle)

            produces = op.dest_preg != NO_REG
            if produces:
                self.producer_window.retire_head(op)
                stats.committed_producers += 1
                producers_group.append(op)
                self._dereference(op.old_preg)
            if d.rsep_eligible():
                stats.committed_eligible += 1

            # --- coverage classification (Fig. 5) ----------------------
            if op.eliminated == "zero_idiom":
                stats.zero_idiom_elim += 1
            elif op.eliminated == "move":
                stats.move_elim += 1
            elif op.zero_pred_used:
                stats.zero_pred += 1
                if d.is_load:
                    stats.zero_pred_load += 1
            elif op.dist_used:
                stats.dist_pred += 1
                if d.is_load:
                    stats.dist_pred_load += 1
                self.rsep.on_commit_used(op, True)
            elif op.vp_used and op.vp_ok:
                stats.value_pred += 1
                if d.is_load:
                    stats.value_pred_load += 1

            # --- predictor training ------------------------------------
            if op.zero_pred is not None:
                self.zero_predictor.train(op.zero_pred, d.result == 0)
            if op.vp_pred is not None:
                if op.vp_used:
                    self.vp.on_commit_used(op.vp_ok)
                    if not op.vp_ok:
                        self.vp.on_mispredict(op.vp_pred)
                self.vp.train(op.vp_pred, d.result)

            if op.vp_used and not op.vp_ok:
                # [7]: the instruction commits its correct result, then the
                # pipeline is flushed behind it.
                stats.vp_mispredicts += 1
                stats.squashes_vp += 1
                squash = (d.seq + 1, op.trace_index + 1, "vp")
                break

        if self.rsep is not None and producers_group:
            self.rsep.observe_commit_group(producers_group)
        if committed:
            self._last_progress_cycle = cycle
        if squash is not None:
            self._squash_from_seq(squash[0], squash[1], cycle)
            if squash[2] == "memory_order":  # pragma: no cover - not here
                stats.squashes_memory_order += 1

    def _dereference(self, old_preg: int) -> None:
        """A committed instruction's previous mapping dies."""
        if old_preg == NO_REG or old_preg == self.zero_preg:
            return
        status = self.isrb.dereference(old_preg)
        if status in ("untracked", "freed"):
            self.free_list.release(old_preg)

    # ==================================================================
    # Issue
    # ==================================================================

    def _issue(self, cycle: int) -> None:
        ports = self.ports
        ports.new_cycle(cycle)

        validated = self.validation_queue.issue_cycle(cycle, ports)
        if validated:
            self.iq.remove_issued(validated)

        issue_width = self.config.ports.issue_width
        issued: list[InflightOp] = []
        violation_load = None
        violating_store = None
        for op in self.iq:
            if ports.issued_this_cycle >= issue_width:
                break
            if op.issued:
                continue
            if not self._op_ready(op, cycle):
                continue
            if not ports.try_issue(op.d.fu, cycle):
                continue
            self._do_issue(op, cycle)
            issued.append(op)
            if op.d.is_store:
                violators = self.lsq.find_violations(op)
                if violators:
                    violation_load = violators[0]
                    violating_store = op
                    break

        self.iq.remove_issued([op for op in issued if not op.retained])

        if violation_load is not None:
            self.store_sets.train_violation(
                violation_load.d.pc, violating_store.d.pc
            )
            self.stats.squashes_memory_order += 1
            self._squash_from_seq(
                violation_load.d.seq, violation_load.trace_index, cycle
            )

    def _op_ready(self, op: InflightOp, cycle: int) -> bool:
        reg_ready = self._reg_ready
        for preg in op.src_pregs:
            if reg_ready.get(preg, 0) > cycle:
                return False
        if (op.dist_used or op.likely_candidate) and op.producer is not None:
            # §IV.F: the predicted instruction is made dependent on the
            # producer so validation can catch the value on the bypass.
            producer = op.producer
            if producer.complete_cycle is None or (
                producer.complete_cycle > cycle
            ):
                return False
        if op.d.is_load:
            dep = op.store_dep
            if dep is not None and not dep.squashed and not dep.executed:
                return False
            blocking = self.lsq.blocking_store(op)
            if blocking is not None:
                return False
            forward = self.lsq.forwarding_store(op, cycle)
            if forward is not None and forward.complete_cycle > cycle:
                return False
            op.forward_from = forward
        return True

    def _do_issue(self, op: InflightOp, cycle: int) -> None:
        op.issued = True
        op.issue_cycle = cycle
        d = op.d
        if d.is_load:
            if op.forward_from is not None:
                latency = self.config.stlf_latency
                self.stats.load_forwards += 1
            else:
                latency = self.hierarchy.load(d.pc, d.addr, cycle)
            op.complete_cycle = cycle + latency
            op.executed = True
        elif d.is_store:
            op.complete_cycle = cycle + 1
            op.executed = True
        else:
            op.complete_cycle = cycle + d.latency
        if op.allocated and not op.vp_used:
            self._reg_ready[op.dest_preg] = op.complete_cycle
        if op.validation_required:
            self.validation_queue.request(op)
            if self.validation_queue.mode is not ValidationMode.IDEAL:
                # §IV.F.b: predicted instructions retain their scheduler
                # entry until the validation µ-op has issued.
                op.retained = True

    # ==================================================================
    # Rename / dispatch
    # ==================================================================

    def _rename(self, cycle: int) -> None:
        c = self.config
        m = self.mechanisms
        stats = self.stats
        fetch_buffer = self._fetch_buffer
        renamed = 0

        while renamed < c.rename_width and fetch_buffer:
            op = fetch_buffer[0]
            if op.rename_ready_cycle > cycle:
                break
            d = op.d
            produces = d.dest != NO_REG

            # ---- capacity checks (stall in order) ---------------------
            if self.rob.full:
                stats.stall_rob += 1
                break
            if d.fu != FuClass.NONE and self.iq.full:
                stats.stall_iq += 1
                break
            if d.is_load and self.lsq.lq_full:
                stats.stall_lsq += 1
                break
            if d.is_store and self.lsq.sq_full:
                stats.stall_lsq += 1
                break
            if produces:
                dest_class = reg_class(d.dest)
                if (
                    not d.zero_idiom
                    and self.free_list.available(dest_class) == 0
                ):
                    stats.stall_regs += 1
                    break

            # ---- source operands (old map) ----------------------------
            sources = []
            if d.src1 != NO_REG:
                sources.append(self.rename_map.lookup(d.src1))
            if d.src2 != NO_REG:
                sources.append(self.rename_map.lookup(d.src2))
            op.src_pregs = tuple(sources)

            needs_iq = d.fu != FuClass.NONE

            # ---- destination handling & mechanisms --------------------
            if produces:
                dest_preg = NO_REG
                eligible = d.rsep_eligible()

                if c.zero_idiom_elimination and d.zero_idiom:
                    dest_preg = self.zero_preg
                    op.eliminated = "zero_idiom"
                    self.zero_idiom_elim.eliminated += 1
                    needs_iq = False
                elif m.move_elim and d.move:
                    shared_preg = self.move_eliminator.try_eliminate(d)
                    if shared_preg is not None:
                        dest_preg = shared_preg
                        op.eliminated = "move"
                        op.shared = True
                        needs_iq = False

                if self.rsep is not None and eligible and op.eliminated is None:
                    prediction = self.rsep.lookup(d.pc)
                    op.dist_pred = prediction
                    if prediction.use_pred and dest_preg == NO_REG:
                        dest_preg = self._try_share(op, prediction, dest_class)
                    elif (
                        prediction.likely_candidate
                        and self.rsep.config.sampling
                    ):
                        producer = self.producer_window.producer_at(
                            prediction.distance
                        )
                        if producer is not None:
                            op.likely_candidate = True
                            op.producer = producer

                if self.zero_predictor is not None and eligible:
                    zero_prediction = self.zero_predictor.predict(d.pc)
                    op.zero_pred = zero_prediction
                    if zero_prediction.use_pred and dest_preg == NO_REG:
                        dest_preg = self.zero_preg
                        op.zero_pred_used = True  # executes to validate

                if self.vp is not None and eligible:
                    value_prediction = self.vp.lookup(d.pc)
                    op.vp_pred = value_prediction
                    if value_prediction.predicted() and dest_preg == NO_REG:
                        op.vp_used = True
                        op.vp_ok = value_prediction.value == d.result
                        self.vp.stats.used += 1

                if dest_preg == NO_REG:
                    dest_preg = self.free_list.allocate(dest_class)
                    op.allocated = True
                    self._reg_ready[dest_preg] = (
                        cycle if op.vp_used else _INF
                    )
                op.dest_preg = dest_preg
                op.old_preg = self.rename_map.rename_dest(d.dest, dest_preg)

            if not needs_iq:
                op.complete_cycle = cycle
                op.executed = True

            # ---- structures -------------------------------------------
            self.rob.push(op)
            if needs_iq:
                self.iq.insert(op)
            if d.is_load:
                self.lsq.add_load(op)
                dep = self.store_sets.load_dependency(d.pc)
                if dep is not None and not dep.committed and not dep.squashed:
                    op.store_dep = dep
            elif d.is_store:
                self.lsq.add_store(op)
                self.store_sets.store_dispatched(d.pc, op)
            if produces:
                self.producer_window.push(op)

            fetch_buffer.popleft()
            renamed += 1

    def _try_share(self, op: InflightOp, prediction, dest_class) -> int:
        """Attempt RSEP register sharing; returns the shared preg or NO_REG."""
        rsep = self.rsep
        producer = self.producer_window.producer_at(prediction.distance)
        if producer is None:
            rsep.stats.out_of_window += 1
            return NO_REG
        if reg_class(producer.d.dest) != dest_class:
            rsep.stats.class_mismatch += 1
            return NO_REG
        producer_preg = producer.dest_preg
        if producer_preg == self.zero_preg:
            rsep.stats.zero_reg_shares += 1
        elif not self.isrb.share(producer_preg):
            rsep.stats.isrb_rejected += 1
            return NO_REG
        else:
            op.shared = True
        op.dist_used = True
        op.producer = producer
        op.equality_ok = op.d.result == producer.d.result
        rsep.stats.used += 1
        return producer_preg

    # ==================================================================
    # Fetch
    # ==================================================================

    def _fetch(self, cycle: int) -> None:
        c = self.config
        if self._fetch_stalled_by is not None:
            blocked_on = self._fetch_stalled_by
            if blocked_on.complete_cycle is None:
                return  # mispredicted branch not resolved yet
            self._next_fetch_cycle = max(
                self._next_fetch_cycle,
                blocked_on.complete_cycle + c.redirect_delay,
            )
            self._fetch_stalled_by = None
        if cycle < self._next_fetch_cycle:
            return

        trace = self.trace
        fetch_buffer = self._fetch_buffer
        fetched = 0
        taken_seen = 0
        while (
            fetched < c.fetch_width
            and len(fetch_buffer) < c.fetch_buffer_size
            and self._cursor < len(trace)
        ):
            d = trace[self._cursor]
            line = d.pc >> LINE_SHIFT
            if line != self._last_fetch_line:
                bubble = self.hierarchy.fetch(d.pc, cycle)
                if bubble > 0:
                    self._next_fetch_cycle = cycle + bubble
                    break
                self._last_fetch_line = line
            op = InflightOp(
                d, self._cursor, cycle, cycle + c.frontend_depth
            )
            if d.is_branch:
                outcome = self.branch_unit.fetch_branch(d)
                op.fetch_outcome = outcome
                fetch_buffer.append(op)
                self._cursor += 1
                fetched += 1
                if outcome.mispredicted:
                    self._fetch_stalled_by = op
                    break
                if outcome.decode_redirect:
                    self._next_fetch_cycle = (
                        cycle + c.decode_redirect_bubble
                    )
                    break
                if d.taken:
                    taken_seen += 1
                    self._last_fetch_line = -1  # fetch redirects to target
                    if taken_seen >= 2:
                        break  # 8-wide fetch over at most 1 taken branch
                continue
            fetch_buffer.append(op)
            self._cursor += 1
            fetched += 1

    # ==================================================================
    # Squash
    # ==================================================================

    def _squash_from_seq(
        self, first_seq: int, refetch_index: int, cycle: int
    ) -> None:
        """Flush every in-flight instruction with seq >= *first_seq*."""
        restore_outcome = None

        while not self.rob.empty and self.rob.tail().d.seq >= first_seq:
            op = self.rob.pop_tail()
            op.squashed = True
            self.stats.squashed_ops += 1
            if op.fetch_outcome is not None:
                restore_outcome = op.fetch_outcome
            if op.vp_pred is not None:
                self.vp.release(op.vp_pred)
            if op.dest_preg != NO_REG:
                installed = self.rename_map.undo_rename(
                    op.d.dest, op.old_preg
                )
                if installed != op.dest_preg:
                    raise PipelineError(
                        f"rename undo mismatch at seq {op.d.seq}"
                    )
                if op.allocated:
                    self.free_list.release(op.dest_preg)
                elif op.shared:
                    if self.isrb.unshare(op.dest_preg):
                        self.free_list.release(op.dest_preg)
                self.producer_window.squash_tail(op)

        if restore_outcome is None:
            for op in self._fetch_buffer:
                if op.fetch_outcome is not None:
                    restore_outcome = op.fetch_outcome
                    break
        if restore_outcome is not None:
            self.branch_unit.squash_to(restore_outcome)

        for op in self._fetch_buffer:
            op.squashed = True
        self._fetch_buffer.clear()
        self.iq.squash(lambda o: o.d.seq >= first_seq)
        self.lsq.squash(first_seq)
        self.validation_queue.squash(first_seq)
        self._fetch_stalled_by = None
        self._cursor = refetch_index
        self._last_fetch_line = -1
        self._next_fetch_cycle = max(
            self._next_fetch_cycle, cycle + self.config.redirect_delay
        )
