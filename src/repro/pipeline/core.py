"""The cycle-level out-of-order pipeline (Fig. 3 with Table I resources).

Trace-driven timing model: the committed-path instruction stream from the
functional interpreter is replayed through real structural resources —
8-wide fetch/rename/commit, 192-entry ROB, 60-entry IQ, 72/48-entry LQ/SQ,
235+235 physical registers, the Table I port mix, TAGE front end and the
three-level cache hierarchy.  All speculation (branch direction/target,
zero, distance/equality, value) uses real predictors and is resolved
against trace ground truth; mispredictions squash exactly as the paper
prescribes (commit-time validation, full flush).

Stage order within a cycle is commit → issue → rename → fetch, which
enforces the usual one-cycle minimum between dispatch and issue and between
writeback and commit.

Scheduling is event-driven (see DESIGN.md §3): instead of re-evaluating
operand readiness for every IQ entry on every cycle, each dispatched
instruction is parked on the structure that will produce its wakeup —

* a per-preg waiter list while a source's completion cycle is unknown
  (its producer has not issued yet);
* a wakeup map keyed by completion cycle once every source's ready time
  is known;
* the ready list (kept oldest-first) once it can actually issue.

Loads additionally depend on LSQ state (store-set dependences, same-word
blocking stores, forwarding timing), which is not a pure function of
completion times, so a register-ready load stays in the ready list and has
those conditions re-checked each cycle — exactly the conditions the old
poll-everything scheduler evaluated, on a far smaller set of candidates.
Selection order, port arbitration and all readiness predicates are
unchanged, which is what keeps statistics bit-identical.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush

from repro.backend.fu import IssuePorts
from repro.backend.iq import IssueQueue
from repro.backend.lsq import WORD_SHIFT, LoadStoreQueues
from repro.backend.rob import ReorderBuffer
from repro.backend.store_sets import StoreSets
from repro.common.history import GlobalHistory, PathHistory
from repro.common.rng import XorShift64
from repro.core.rsep import RsepUnit
from repro.core.sharing import ProducerWindow
from repro.core.validation import ValidationMode, ValidationQueue
from repro.core.vp_engine import VpEngine
from repro.frontend.branch_unit import BranchUnit
from repro.isa.instruction import DynInst, NO_REG
from repro.isa.opcodes import FuClass
from repro.isa.registers import FP_BASE, RegClass, reg_class
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import CoreConfig, MechanismConfig
from repro.pipeline.stats import Stats
from repro.predictors.zero import ZeroPredictor
from repro.rename.free_list import FreeList
from repro.rename.isrb import Isrb
from repro.rename.map_table import RenameMap
from repro.rename.move_elim import MoveEliminator
from repro.rename.zero_idiom import ZeroIdiomEliminator
from repro.workloads.columnar import KIND_BRANCH, ColumnarTrace
from repro.workloads.trace import Trace

_INF = 1 << 60


def _op_seq(op) -> int:
    """Sort key: age order == trace sequence order."""
    return op.d.seq


class PipelineError(RuntimeError):
    """Raised on internal inconsistencies (bugs) or deadlock."""


class InflightOp:
    """Timing and rename state of one in-flight dynamic instruction."""

    # Dispatch-creation cost was re-examined for PR 4 (DESIGN.md §9):
    # prototype-clone (__dict__ copy), class-default fallback and a
    # hybrid (hot slots + cold class defaults) were all measured slower
    # than flat __slots__ with an explicit __init__ on CPython 3.11 —
    # slot access specialisation outweighs the creation-time writes,
    # and dict-backed variants regress the rsep configs outright.  The
    # creation path is instead inlined into columnar fetch (no
    # call/frame overhead), which is what "slim dispatch" ended up
    # meaning; edit both together.
    __slots__ = (
        "d", "trace_index", "rename_ready_cycle",
        "src_preg1", "src_preg2", "dest_preg", "old_preg",
        "allocated", "shared", "eliminated",
        "zero_pred", "zero_pred_used",
        "dist_pred", "dist_used", "likely_candidate",
        "producer", "equality_ok",
        "vp_pred", "vp_used", "vp_ok",
        "fetch_outcome",
        "issued", "complete_cycle",
        "executed", "validation_done_cycle", "retained",
        "store_dep", "forward_from",
        "committed", "squashed",
        "waiters", "iq_index",
    )

    def __init__(self, d: DynInst, trace_index: int,
                 rename_ready_cycle: int) -> None:
        self.d = d
        self.trace_index = trace_index
        self.rename_ready_cycle = rename_ready_cycle
        # Renamed source pregs (NO_REG = fewer than 1/2 sources); two
        # scalar slots instead of a tuple keep dispatch allocation-free.
        self.src_preg1 = NO_REG
        self.src_preg2 = NO_REG
        self.dest_preg = NO_REG
        self.old_preg = NO_REG
        self.allocated = False
        self.shared = False
        self.eliminated = None
        self.zero_pred = None
        self.zero_pred_used = False
        self.dist_pred = None
        self.dist_used = False
        self.likely_candidate = False
        self.producer = None
        self.equality_ok = False
        self.vp_pred = None
        self.vp_used = False
        self.vp_ok = False
        self.fetch_outcome = None
        self.issued = False
        self.complete_cycle = None
        self.executed = False
        self.validation_done_cycle = None
        self.retained = False
        self.store_dep = None
        self.forward_from = None
        self.committed = False
        self.squashed = False
        # Scheduler subscribers: ops whose issue eligibility becomes
        # computable once this op's completion cycle is known.
        self.waiters = None
        self.iq_index = -1

    @property
    def validation_required(self) -> bool:
        return self.dist_used or (
            self.likely_candidate and self.producer is not None
        )


class Pipeline:
    """One simulated core running one trace."""

    def __init__(
        self,
        trace: Trace | ColumnarTrace,
        config: CoreConfig | None = None,
        mechanisms: MechanismConfig | None = None,
        seed: int = 1,
    ) -> None:
        self.trace = trace
        if isinstance(trace, ColumnarTrace):
            # Columnar trace plane (DESIGN.md §9): fetch reads the packed
            # columns directly; rows materialise lazily per fetched
            # index.  Bound as an instance attribute so the per-cycle
            # dispatch costs nothing.
            self._fetch = self._fetch_columnar
        self.config = config or CoreConfig()
        self.mechanisms = mechanisms or MechanismConfig.baseline()
        c = self.config
        m = self.mechanisms

        rng = XorShift64(0xFACE ^ (seed * 0x9E3779B97F4A7C15))
        self.history = GlobalHistory()
        self.path = PathHistory()
        self.branch_unit = BranchUnit(
            self.history, self.path, rng.fork(0xB4), c.tage
        )
        self.hierarchy = MemoryHierarchy(c.memory)
        self.free_list = FreeList(c.int_pregs, c.fp_pregs)
        self.zero_preg = self.free_list.zero_preg
        self.rename_map = RenameMap(self.free_list)
        isrb_entries = m.rsep.isrb_entries if m.rsep else 24
        isrb_counter_bits = m.rsep.isrb_counter_bits if m.rsep else 6
        self.isrb = Isrb(isrb_entries, isrb_counter_bits)
        self.zero_idiom_elim = ZeroIdiomEliminator(self.zero_preg)
        self.move_eliminator = MoveEliminator(self.rename_map, self.isrb)
        self.rsep = (
            RsepUnit(m.rsep, self.history, self.path, rng.fork(0x27),
                     m.confidence)
            if m.rsep
            else None
        )
        self.vp = (
            VpEngine(m.vp, self.history, self.path, rng.fork(0x99),
                     m.confidence)
            if m.vp
            else None
        )
        self.zero_predictor = (
            ZeroPredictor(rng=rng.fork(0x2E), scale=m.confidence)
            if m.zero_pred
            else None
        )
        validation_mode = m.rsep.validation if m.rsep else ValidationMode.IDEAL
        self.validation_queue = ValidationQueue(validation_mode)
        self.store_sets = StoreSets()
        self.rob = ReorderBuffer(c.rob_entries)
        self.iq = IssueQueue(c.iq_entries)
        self.lsq = LoadStoreQueues(c.lq_entries, c.sq_entries, c.stlf_latency)
        self.ports = IssuePorts(c.ports)
        self.producer_window = ProducerWindow(c.rob_entries)
        self.stats = Stats()

        # Known ready cycle per physical register, indexed by preg id
        # (INT pool, then FP pool, then the hardwired zero register).
        # _INF encodes "producer has not issued yet".
        self._reg_ready: list[int] = [0] * (c.int_pregs + c.fp_pregs + 1)
        # Event-driven scheduler state (see module docstring).
        self._ready: list[InflightOp] = []
        self._ready_dirty = False
        self._wakeup: dict[int, list[InflightOp]] = {}
        # Min-heap of wakeup cycles with lazy deletion (keys stay behind
        # after their bucket is drained); gives O(1)-ish "next wakeup"
        # queries to the idle fast-forward.
        self._wakeup_heap: list[int] = []
        self._preg_waiters: dict[int, list[InflightOp]] = {}

        self._fetch_buffer: deque[InflightOp] = deque()
        self._cursor = 0
        self._next_fetch_cycle = 0
        self._fetch_stalled_by: InflightOp | None = None
        self._last_fetch_line = -1
        self.cycle = 0
        self._total_committed = 0
        self._last_progress_cycle = 0

        # Generated compute plane (DESIGN.md §12): bind per-mechanism
        # specialised rename/issue loops as instance attributes, exactly
        # like the columnar fetch binding above.  REPRO_GENRENAME=0
        # keeps the generic methods live as the differential oracle.
        from repro.api.env import genrename_enabled

        if genrename_enabled():
            from repro.pipeline.genrename import install_fast_stages

            install_fast_stages(self)

        # Telemetry plane (DESIGN.md §13): a metrics hub samples this
        # pipeline every N committed instructions — but only when an
        # observability runtime is active (REPRO_OBS, or an enabled
        # ObsSpec on the executing session).  None — the default — keeps
        # run_until on its unchunked fast path: zero per-step cost.
        from repro.obs.runtime import metrics_hub_for_pipeline

        self._metrics = metrics_hub_for_pipeline()

    # ==================================================================
    # Public driver
    # ==================================================================

    def run(self, instructions: int, warmup: int = 0) -> Stats:
        """Warm up, then measure a window of *instructions* commits.

        The cyclic garbage collector is paused for the duration of the
        run: the hot loop allocates millions of short-lived,
        reference-counted objects (in-flight ops, predictions) that
        refcounting alone reclaims, so generation-0 passes — which also
        rescan the long-lived trace — are pure overhead.  The previous
        GC state is restored on exit, enabled or not.
        """
        import gc

        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self.run_until(warmup)
            self.stats.reset_window()
            self.run_until(self._total_committed + instructions)
        finally:
            if gc_was_enabled:
                gc.enable()
        return self.stats

    def run_until(self, target_committed: int) -> None:
        """Step until *target_committed* total commits (or the trace ends).

        No window reset, no GC management: chaining ``run_until`` calls
        with increasing targets executes exactly the step sequence of one
        call with the final target, which is what lets the sampled-
        simulation controller chunk a window into intervals while its
        100%-duty degenerate case stays bit-identical to :meth:`run`.
        The metrics hub rides the same invariant: with observability on,
        the target is chunked at sample boundaries and the unmodified
        step loop runs between them, so the step sequence — and every
        stat — is bit-identical to the unobserved run.
        """
        hub = self._metrics
        if hub is not None:
            self._run_until_metered(target_committed, hub)
            return
        while self._total_committed < target_committed and not self._finished():
            self._step()

    def _run_until_metered(self, target_committed: int, hub) -> None:
        """:meth:`run_until` chunked at the hub's sample boundaries.

        Commit is up-to-width per cycle, so a boundary may be overshot
        by at most ``commit_width - 1`` instructions — deterministically,
        which is all the series' x-axis (``total_committed``) needs.
        """
        step = self._step
        while (self._total_committed < target_committed
               and not self._finished()):
            bound = hub.next_due
            if bound > target_committed:
                bound = target_committed
            while self._total_committed < bound and not self._finished():
                step()
            if self._total_committed >= hub.next_due:
                hub.sample(self)

    @property
    def total_committed(self) -> int:
        """Instructions committed since construction (warm-up included)."""
        return self._total_committed

    # ------------------------------------------------------------------
    # Sampled-simulation hooks (see repro.sampling; DESIGN.md §8)
    # ------------------------------------------------------------------

    def drain_inflight(self) -> int:
        """Flush all speculation back to the committed frontier.

        Used at a sampling-interval boundary before handing the trace to
        the functional warmer: every in-flight instruction is squashed
        (restoring the rename map, free list, ISRB and branch history to
        the committed point) and the trace cursor rewinds to the oldest
        flushed instruction, which is where warming resumes.  The squash
        is *stats-neutral* — interval boundaries are a measurement
        artifact, not microarchitectural events.  Returns the resume
        trace index.
        """
        rob = self.rob
        fetch_buffer = self._fetch_buffer
        if rob.empty and not fetch_buffer:
            return self._cursor
        head = rob.head() if not rob.empty else fetch_buffer[0]
        squashed_before = self.stats.squashed_ops
        self._squash_from_seq(head.d.seq, head.trace_index, self.cycle)
        self.stats.squashed_ops = squashed_before
        # Every parked op is now squashed, so the scheduler's wakeup
        # state is dead weight; clearing it also keeps stale past-cycle
        # buckets from pinning the idle fast-forward after the warmer
        # advances the clock past them.
        self._ready.clear()
        self._wakeup.clear()
        self._wakeup_heap.clear()
        self._preg_waiters.clear()
        return self._cursor

    def skip_to(self, index: int, cycle: int) -> None:
        """Resume fetch at trace *index* after an externally warmed span.

        The warmer advances a pseudo-clock (one cycle per warmed
        instruction) so downstream cycle-stamped state — MSHR fills, DRAM
        bank timers — stays monotone; the pipeline adopts that clock here.
        ``Stats.cycles`` is untouched: measured cycles accumulate only
        while detailed intervals step.
        """
        if not (self.rob.empty and not self._fetch_buffer):
            raise PipelineError("skip_to requires a drained pipeline")
        self._cursor = index
        if cycle > self.cycle:
            self.cycle = cycle
        if self._next_fetch_cycle < self.cycle:
            self._next_fetch_cycle = self.cycle
        self._fetch_stalled_by = None
        self._last_fetch_line = -1
        self._last_progress_cycle = self.cycle

    def _finished(self) -> bool:
        return (
            self._cursor >= len(self.trace)
            and self.rob.empty
            and not self._fetch_buffer
        )

    def _step(self) -> None:
        if not self._ready:
            self._fast_forward_idle()
        cycle = self.cycle
        self._commit(cycle)
        self._issue(cycle)
        self._rename(cycle)
        self._fetch(cycle)
        self.stats.cycles += 1
        self.cycle = cycle + 1
        if cycle - self._last_progress_cycle > self.config.watchdog_cycles:
            raise PipelineError(
                f"deadlock: no commit for {self.config.watchdog_cycles} "
                f"cycles (cycle {cycle}, ROB {len(self.rob)}, "
                f"IQ {len(self.iq)}, head "
                f"{self.rob.head().d if not self.rob.empty else None})"
            )

    def _rename_stall_cause(self, d: DynInst) -> str | None:
        """The stats field rename charges when *d* cannot rename, or None.

        This is the canonical form of the capacity checks; the 8-wide
        rename loop inlines the same predicate over hoisted locals (kept
        bit-identical by the golden-stats tests — edit both together).
        """
        if self.rob.full:
            return "stall_rob"
        if d.fu != FuClass.NONE and self.iq.full:
            return "stall_iq"
        if d.is_load and self.lsq.lq_full:
            return "stall_lsq"
        if d.is_store and self.lsq.sq_full:
            return "stall_lsq"
        if (
            d.dest != NO_REG
            and not d.zero_idiom
            and self.free_list.available(reg_class(d.dest)) == 0
        ):
            return "stall_regs"
        return None

    def _fast_forward_idle(self) -> None:
        """Skip cycles during which no pipeline stage can change state.

        Every state change is tied to a knowable future cycle: the ROB
        head's completion/validation, a scheduler wakeup, a validation
        µ-op becoming eligible, fetch resuming, or the fetch-buffer head
        becoming rename-ready.  When the ready list is empty and every
        such event lies in the future, the intervening cycles only tick
        counters — so tick them in one step and jump to the next event.
        Per-cycle rename-stall accounting (the capacity-blocked cause
        cannot change while no event fires) is preserved exactly.
        """
        cycle = self.cycle
        rob = self.rob
        fetch_buffer = self._fetch_buffer
        stall_field = None
        head_wait_cycle = -1
        if fetch_buffer:
            # Cheapest (and most common) exit first: the fetch-buffer
            # head renames this cycle, so no cycle can be skipped.  The
            # checks are pure reads, so hoisting them above the event
            # scan only saves work, never changes the outcome.
            head = fetch_buffer[0]
            if head.rename_ready_cycle > cycle:
                head_wait_cycle = head.rename_ready_cycle
            else:
                stall_field = self._rename_stall_cause(head.d)
                if stall_field is None:
                    return  # rename makes progress this cycle: no skip
        nxt = _INF
        if head_wait_cycle >= 0:
            nxt = head_wait_cycle
        if not rob.empty:
            head = rob.head()
            t = head.complete_cycle
            if t is not None:
                event = t + 1
                if head.validation_required:
                    v = head.validation_done_cycle
                    if v is None:
                        # Gated on a validation µ-op that has not issued;
                        # its eligibility is an event below.
                        event = _INF
                    elif v + 1 > event:
                        event = v + 1
                if event < nxt:
                    nxt = event
        t = self.validation_queue.next_ready_cycle()
        if t is not None and t < nxt:
            nxt = t
        wakeup = self._wakeup
        if wakeup:
            heap = self._wakeup_heap
            while heap and heap[0] not in wakeup:
                heappop(heap)  # stale key: bucket already drained
            if heap and heap[0] < nxt:
                nxt = heap[0]
        c = self.config
        if (
            self._cursor < len(self.trace)
            and len(fetch_buffer) < c.fetch_buffer_size
        ):
            stalled = self._fetch_stalled_by
            if stalled is None:
                t = self._next_fetch_cycle
                if t < nxt:
                    nxt = t
            elif stalled.complete_cycle is not None:
                t = stalled.complete_cycle + c.redirect_delay
                if t < self._next_fetch_cycle:
                    t = self._next_fetch_cycle
                if t < nxt:
                    nxt = t
            # else: fetch waits on an unissued branch — covered by the
            # scheduler events above.
        if nxt <= cycle:
            return
        limit = self._last_progress_cycle + c.watchdog_cycles + 1
        if nxt > limit:
            nxt = limit  # let the watchdog fire at its usual cycle
            if nxt <= cycle:
                return
        skip = nxt - cycle
        stats = self.stats
        stats.cycles += skip
        if stall_field is not None:
            setattr(stats, stall_field, getattr(stats, stall_field) + skip)
        self.cycle = nxt

    # ==================================================================
    # Commit
    # ==================================================================

    def _commit(self, cycle: int) -> None:
        # Hot-loop inlining: the ROB's backing deque is drained directly
        # (head peeks and popleft), skipping per-op method dispatch.
        rob_entries = self.rob._entries
        if not rob_entries:
            return
        stats = self.stats
        lsq = self.lsq
        rsep = self.rsep
        producer_window = self.producer_window
        commit_width = self.config.commit_width
        zero_preg = self.zero_preg
        isrb = self.isrb
        isrb_entries = isrb._entries
        isrb_counter_max = isrb.counter_max
        free_release = self.free_list.release
        committed = 0
        n_producers = 0
        n_eligible = 0
        n_branches = 0
        n_loads = 0
        n_stores = 0
        producers_group: list[InflightOp] | None = None
        squash = None  # (first_seq, refetch_index, cause)

        while committed < commit_width and rob_entries:
            op = rob_entries[0]
            complete_cycle = op.complete_cycle
            if complete_cycle is None or complete_cycle >= cycle:
                break
            if (
                op.dist_used
                or (op.likely_candidate and op.producer is not None)
            ) and (
                op.validation_done_cycle is None
                or op.validation_done_cycle >= cycle
            ):
                break
            d = op.d

            # --- commit-time validation failures -----------------------
            if op.dist_used and not op.equality_ok:
                # §IV.G: flush once the mispredicted instruction reaches
                # the ROB head; it re-executes unpredicted.
                rsep.on_mispredict(op.dist_pred)
                rsep.on_commit_used(op, False)
                stats.rsep_mispredicts += 1
                stats.squashes_rsep += 1
                squash = (d.seq, op.trace_index, "rsep")
                break
            if op.zero_pred_used and d.result != 0:
                self.zero_predictor.on_mispredict(op.zero_pred)
                stats.zero_mispredicts += 1
                stats.squashes_zero += 1
                squash = (d.seq, op.trace_index, "zero")
                break

            # --- commit the instruction --------------------------------
            rob_entries.popleft()
            op.committed = True
            committed += 1

            if d.is_branch:
                n_branches += 1
                if op.fetch_outcome is not None:
                    if op.fetch_outcome.mispredicted:
                        stats.branch_mispredicts += 1
                    self.branch_unit.commit_branch(op.fetch_outcome)
            if d.is_load:
                n_loads += 1
                lsq.remove(op)
            elif d.is_store:
                n_stores += 1
                lsq.remove(op)
                self.store_sets.store_completed(d.pc, op)
                self.hierarchy.store(d.pc, d.addr, cycle)

            if op.dest_preg != NO_REG:
                pw_window = producer_window._window
                if not pw_window or pw_window[0] is not op:
                    raise PipelineError(
                        "producer window commit order violated"
                    )
                pw_window.popleft()
                n_producers += 1
                if producers_group is None:
                    producers_group = [op]
                else:
                    producers_group.append(op)
                # Inlined ISRB dereference (the committed op's old
                # mapping dies).  Untracked registers — the overwhelmingly
                # common case — free directly; shared ones bump their
                # committed count and free when the last owner is gone or
                # the counter overflows (Isrb.dereference, verbatim).
                old_preg = op.old_preg
                if old_preg != NO_REG and old_preg != zero_preg:
                    entry = isrb_entries.get(old_preg)
                    if entry is None:
                        free_release(old_preg)
                    else:
                        entry.committed += 1
                        if (
                            entry.committed > entry.referenced
                            or entry.committed > isrb_counter_max
                        ):
                            del isrb_entries[old_preg]
                            isrb.frees += 1
                            free_release(old_preg)
            if d.eligible:
                n_eligible += 1

            # --- coverage classification (Fig. 5) ----------------------
            if op.eliminated == "zero_idiom":
                stats.zero_idiom_elim += 1
            elif op.eliminated == "move":
                stats.move_elim += 1
            elif op.zero_pred_used:
                stats.zero_pred += 1
                if d.is_load:
                    stats.zero_pred_load += 1
            elif op.dist_used:
                stats.dist_pred += 1
                if d.is_load:
                    stats.dist_pred_load += 1
                rsep.on_commit_used(op, True)
            elif op.vp_used and op.vp_ok:
                stats.value_pred += 1
                if d.is_load:
                    stats.value_pred_load += 1

            # --- predictor training ------------------------------------
            if op.zero_pred is not None:
                self.zero_predictor.train(op.zero_pred, d.result == 0)
            if op.vp_pred is not None:
                if op.vp_used:
                    self.vp.on_commit_used(op.vp_ok)
                    if not op.vp_ok:
                        self.vp.on_mispredict(op.vp_pred)
                self.vp.train(op.vp_pred, d.result)

            if op.vp_used and not op.vp_ok:
                # [7]: the instruction commits its correct result, then the
                # pipeline is flushed behind it.
                stats.vp_mispredicts += 1
                stats.squashes_vp += 1
                squash = (d.seq + 1, op.trace_index + 1, "vp")
                break

        if rsep is not None and producers_group:
            rsep.observe_commit_group(producers_group)
        if committed:
            stats.committed += committed
            stats.committed_producers += n_producers
            stats.committed_eligible += n_eligible
            stats.branches += n_branches
            stats.loads += n_loads
            stats.stores += n_stores
            self._total_committed += committed
            self._last_progress_cycle = cycle
        if squash is not None:
            self._squash_from_seq(squash[0], squash[1], cycle)
            if squash[2] == "memory_order":  # pragma: no cover - not here
                stats.squashes_memory_order += 1

    # ==================================================================
    # Issue
    # ==================================================================

    def _schedule_op(self, op: InflightOp, cycle: int) -> None:
        """Park *op* where its next wakeup will find it.

        Computes the earliest cycle at which every *known* readiness
        condition is met.  If some source's completion is still unknown
        the op subscribes to that producer (preg waiter list / producer
        waiter list) and is rescheduled when the producer issues.
        """
        reg_ready = self._reg_ready
        wake = 0
        preg = op.src_preg1
        if preg >= 0:
            t = reg_ready[preg]
            if t > wake:
                if t >= _INF:
                    waiters = self._preg_waiters.get(preg)
                    if waiters is None:
                        self._preg_waiters[preg] = [op]
                    else:
                        waiters.append(op)
                    return
                wake = t
        preg = op.src_preg2
        if preg >= 0:
            t = reg_ready[preg]
            if t > wake:
                if t >= _INF:
                    waiters = self._preg_waiters.get(preg)
                    if waiters is None:
                        self._preg_waiters[preg] = [op]
                    else:
                        waiters.append(op)
                    return
                wake = t
        if (op.dist_used or op.likely_candidate) and op.producer is not None:
            # §IV.F: the predicted instruction is made dependent on the
            # producer so validation can catch the value on the bypass.
            producer = op.producer
            t = producer.complete_cycle
            if t is None:
                if producer.waiters is None:
                    producer.waiters = [op]
                else:
                    producer.waiters.append(op)
                return
            if t > wake:
                wake = t
        if wake <= cycle:
            # Ready now.  Only dispatch-time scheduling can reach this
            # branch (wakeups triggered from _do_issue always target a
            # future cycle — completion is at least cycle + 1), and a
            # dispatching op is the youngest in flight, so appending
            # keeps the ready list seq-sorted without a re-sort.
            self._ready.append(op)
        else:
            bucket = self._wakeup.get(wake)
            if bucket is None:
                self._wakeup[wake] = [op]
                heappush(self._wakeup_heap, wake)
            else:
                bucket.append(op)

    def _issue(self, cycle: int) -> None:
        bucket = self._wakeup.pop(cycle, None)
        if bucket is not None:
            # Ops were parked here with every readiness condition known to
            # be met by this cycle, and known ready times never move (a
            # source preg cannot be reallocated while a non-squashed
            # consumer is in flight), so no re-evaluation is needed.
            ready_append = self._ready.append
            for op in bucket:
                if not (op.issued or op.squashed):
                    ready_append(op)
            self._ready_dirty = True

        validation_queue = self.validation_queue
        ready = self._ready
        pending_validation = len(validation_queue) != 0
        if not ready and not pending_validation:
            return
        ports = self.ports
        ports.new_cycle(cycle)

        if pending_validation:
            validated = validation_queue.issue_cycle(cycle, ports)
            if validated:
                self.iq.remove_issued(validated)
        if not ready:
            return
        if self._ready_dirty:
            ready.sort(key=_op_seq)
            self._ready_dirty = False

        issue_width = self.config.ports.issue_width
        op_ready = self._op_ready
        try_issue = ports.try_issue
        alu_count = ports._alu_count
        ldst_ports = ports._ldst_ports
        fu_int_alu = FuClass.INT_ALU
        fu_branch = FuClass.BRANCH
        fu_load = FuClass.MEM_LOAD
        lsq = self.lsq
        # _do_issue, hand-inlined (this is the per-issued-op hot path):
        # completion timing, validation request, scoreboard update and
        # waiter wakeups run with all structures in locals.
        stats = self.stats
        stlf_latency = self.config.stlf_latency
        hierarchy_load = self.hierarchy.load
        validation_ideal = validation_queue.mode is ValidationMode.IDEAL
        reg_ready = self._reg_ready
        preg_waiters = self._preg_waiters
        issued: list[InflightOp] | None = None
        to_wake: list[InflightOp] | None = None
        violation_load = None
        violating_store = None
        for op in ready:
            if ports._total >= issue_width:
                break
            d = op.d
            # Non-loads in the ready list are ready by construction
            # (register/producer times were known when they were parked);
            # only loads carry LSQ conditions that must be re-evaluated.
            if d.is_load and not op_ready(op, cycle):
                continue
            # Inlined IssuePorts.try_issue for the two dominant port
            # classes (ALU-family and loads); the loop's break condition
            # already guarantees a free issue slot.  Other FU classes
            # keep the full method.
            fu = d.fu
            if fu is fu_int_alu or fu is fu_branch:
                if ports._alu >= alu_count:
                    continue
                ports._alu += 1
                ports._total += 1
            elif fu is fu_load:
                if ports._ldst >= ldst_ports:
                    continue
                ports._ldst += 1
                ports._total += 1
            elif not try_issue(fu, cycle):
                continue
            op.issued = True
            if d.is_load:
                if op.forward_from is not None:
                    latency = stlf_latency
                    stats.load_forwards += 1
                else:
                    latency = hierarchy_load(d.pc, d.addr, cycle)
                complete = cycle + latency
                op.executed = True
            elif d.is_store:
                complete = cycle + 1
                op.executed = True
            else:
                complete = cycle + d.latency
            op.complete_cycle = complete
            if op.dist_used or (
                op.likely_candidate and op.producer is not None
            ):
                validation_queue.request(op)
                if not validation_ideal:
                    # §IV.F.b: predicted instructions retain their
                    # scheduler entry until the validation µ-op issued.
                    op.retained = True
            if op.allocated and not op.vp_used:
                dest = op.dest_preg
                reg_ready[dest] = complete
                waiters = preg_waiters.pop(dest, None)
                if waiters is not None:
                    # Wakeup re-insertions are batched: waiters collect
                    # here and re-park in one flat pass after the issue
                    # loop (the popped list seeds the batch).
                    if to_wake is None:
                        to_wake = waiters
                    else:
                        to_wake.extend(waiters)
            waiters = op.waiters
            if waiters is not None:
                op.waiters = None
                if to_wake is None:
                    to_wake = waiters
                else:
                    to_wake.extend(waiters)
            if issued is None:
                issued = [op]
            else:
                issued.append(op)
            if d.is_store:
                violators = lsq.find_violations(op)
                if violators:
                    violation_load = violators[0]
                    violating_store = op
                    break

        if to_wake is not None:
            # Batched _schedule_op re-insertion, one flat pass per
            # completion cycle: every deferred call's body runs here with
            # all scheduler structures in locals and no per-waiter call.
            # Deferral past the issue loop is behaviour-preserving:
            # reg_ready entries written this cycle are final before the
            # pass runs, wakeup buckets are seq-sorted when drained, and
            # a waiter parks in exactly one place either way (the golden
            # and equivalence suites pin this bit-identical).
            wakeup = self._wakeup
            wakeup_heap = self._wakeup_heap
            ready_append = ready.append
            for waiter in to_wake:
                if waiter.issued or waiter.squashed:
                    continue
                wake = 0
                preg = waiter.src_preg1
                if preg >= 0:
                    t = reg_ready[preg]
                    if t > wake:
                        if t >= _INF:
                            parked = preg_waiters.get(preg)
                            if parked is None:
                                preg_waiters[preg] = [waiter]
                            else:
                                parked.append(waiter)
                            continue
                        wake = t
                preg = waiter.src_preg2
                if preg >= 0:
                    t = reg_ready[preg]
                    if t > wake:
                        if t >= _INF:
                            parked = preg_waiters.get(preg)
                            if parked is None:
                                preg_waiters[preg] = [waiter]
                            else:
                                parked.append(waiter)
                            continue
                        wake = t
                if (
                    waiter.dist_used or waiter.likely_candidate
                ) and waiter.producer is not None:
                    producer = waiter.producer
                    t = producer.complete_cycle
                    if t is None:
                        if producer.waiters is None:
                            producer.waiters = [waiter]
                        else:
                            producer.waiters.append(waiter)
                        continue
                    if t > wake:
                        wake = t
                if wake <= cycle:
                    ready_append(waiter)
                else:
                    bucket = wakeup.get(wake)
                    if bucket is None:
                        wakeup[wake] = [waiter]
                        heappush(wakeup_heap, wake)
                    else:
                        bucket.append(waiter)

        if issued is not None:
            # In-place filter: the ready list's identity is stable for the
            # pipeline's life (the generated issue loop closes over it).
            ready[:] = [op for op in ready if not op.issued]
            # Inlined iq.remove_issued over the issued list (retained
            # ops keep their entry until their validation µ-op issues).
            iq = self.iq
            entries = iq._entries
            live = iq._live
            for op in issued:
                if op.retained:
                    continue
                index = op.iq_index
                if index >= 0 and entries[index] is op:
                    entries[index] = None
                    op.iq_index = -1
                    live -= 1
            iq._live = live
            if len(entries) > 2 * live + 16:
                iq._compact()

        if violation_load is not None:
            self.store_sets.train_violation(
                violation_load.d.pc, violating_store.d.pc
            )
            self.stats.squashes_memory_order += 1
            self._squash_from_seq(
                violation_load.d.seq, violation_load.trace_index, cycle
            )

    def _op_ready(self, op: InflightOp, cycle: int) -> bool:
        reg_ready = self._reg_ready
        preg = op.src_preg1
        if preg >= 0 and reg_ready[preg] > cycle:
            return False
        preg = op.src_preg2
        if preg >= 0 and reg_ready[preg] > cycle:
            return False
        if (op.dist_used or op.likely_candidate) and op.producer is not None:
            # §IV.F: the predicted instruction is made dependent on the
            # producer so validation can catch the value on the bypass.
            producer = op.producer
            if producer.complete_cycle is None or (
                producer.complete_cycle > cycle
            ):
                return False
        if op.d.is_load:
            dep = op.store_dep
            if dep is not None and not dep.squashed and not dep.executed:
                return False
            blocking = self.lsq.blocking_store(op)
            if blocking is not None:
                return False
            forward = self.lsq.forwarding_store(op, cycle)
            if forward is not None and forward.complete_cycle > cycle:
                return False
            op.forward_from = forward
        return True

    # ==================================================================
    # Rename / dispatch
    # ==================================================================

    def _rename(self, cycle: int) -> None:
        fetch_buffer = self._fetch_buffer
        if not fetch_buffer:
            return
        c = self.config
        m = self.mechanisms
        stats = self.stats
        rob = self.rob
        iq = self.iq
        lsq = self.lsq
        free_list = self.free_list
        rsep = self.rsep
        zero_predictor = self.zero_predictor
        vp = self.vp
        producer_window = self.producer_window
        store_sets = self.store_sets
        reg_ready = self._reg_ready
        rename_width = c.rename_width
        renamed = 0
        # Hot-loop inlining: the backing containers of the rename map,
        # ROB, producer window and LSQ are hoisted here so the 8-wide
        # per-cycle loop skips method/property dispatch.  Semantics are
        # those of the wrapped calls (capacity was checked, and `d.dest`
        # is never XZR in a trace — the interpreter strips such dests).
        rmap = self.rename_map._map
        rob_entries = rob._entries
        rob_capacity = rob.capacity
        rob_len = len(rob_entries)
        iq_entries = iq._entries
        iq_live = iq._live
        iq_capacity = iq.capacity
        preg_waiters = self._preg_waiters
        ready_append = self._ready.append
        wakeup = self._wakeup
        wakeup_heap = self._wakeup_heap
        lq_capacity = lsq.lq_capacity
        sq_capacity = lsq.sq_capacity
        free_int_pool = free_list._free_int
        free_fp_pool = free_list._free_fp
        free_allocated = free_list._allocated
        pw_append = producer_window._window.append
        lsq_loads = lsq._loads
        lsq_stores = lsq._stores
        loads_by_word = lsq._loads_by_word
        stores_by_word = lsq._stores_by_word
        lq_len = len(lsq_loads)
        sq_len = len(lsq_stores)
        zero_idiom_elimination = c.zero_idiom_elimination
        move_elim = m.move_elim
        zero_preg = self.zero_preg
        zero_idiom_eliminator = self.zero_idiom_elim
        move_eliminator = self.move_eliminator
        producer_at = producer_window.producer_at
        rsep_sampling = False
        if rsep is not None:
            rsep_predict = rsep.predictor.predict
            rsep_stats = rsep.stats
            rsep_sampling = rsep.config.sampling

        while renamed < rename_width and fetch_buffer:
            op = fetch_buffer[0]
            if op.rename_ready_cycle > cycle:
                break
            d = op.d
            produces = d.dest != NO_REG

            # ---- capacity checks (stall in order) ---------------------
            # Inlined over hoisted locals; must mirror
            # _rename_stall_cause exactly (golden-stats gated).
            if rob_len >= rob_capacity:
                stats.stall_rob += 1
                break
            if d.fu != FuClass.NONE and iq_live >= iq_capacity:
                stats.stall_iq += 1
                break
            if d.is_load and lq_len >= lq_capacity:
                stats.stall_lsq += 1
                break
            if d.is_store and sq_len >= sq_capacity:
                stats.stall_lsq += 1
                break
            if produces:
                dest_class = (
                    RegClass.FP if d.dest >= FP_BASE else RegClass.INT
                )
                if not d.zero_idiom and not (
                    free_fp_pool if d.dest >= FP_BASE else free_int_pool
                ):
                    stats.stall_regs += 1
                    break

            # ---- source operands (old map) ----------------------------
            src1 = d.src1
            src2 = d.src2
            if src1 != NO_REG:
                op.src_preg1 = rmap[src1]
                if src2 != NO_REG:
                    op.src_preg2 = rmap[src2]
            elif src2 != NO_REG:
                op.src_preg1 = rmap[src2]

            needs_iq = d.fu != FuClass.NONE

            # ---- destination handling & mechanisms --------------------
            if produces:
                dest_preg = NO_REG
                eligible = d.eligible

                if zero_idiom_elimination and d.zero_idiom:
                    dest_preg = zero_preg
                    op.eliminated = "zero_idiom"
                    zero_idiom_eliminator.eliminated += 1
                    needs_iq = False
                elif move_elim and d.move:
                    shared_preg = move_eliminator.try_eliminate(d)
                    if shared_preg is not None:
                        dest_preg = shared_preg
                        op.eliminated = "move"
                        op.shared = True
                        needs_iq = False

                if rsep is not None and eligible and op.eliminated is None:
                    # Inlined RsepUnit.lookup (prediction + accounting).
                    prediction = rsep_predict(d.pc)
                    rsep_stats.lookups += 1
                    if prediction.use_pred:
                        rsep_stats.confident += 1
                        op.dist_pred = prediction
                        if dest_preg == NO_REG:
                            dest_preg = self._try_share(
                                op, prediction, dest_class
                            )
                    else:
                        op.dist_pred = prediction
                        if prediction.likely_candidate and rsep_sampling:
                            producer = producer_at(prediction.distance)
                            if producer is not None:
                                op.likely_candidate = True
                                op.producer = producer

                if zero_predictor is not None and eligible:
                    zero_prediction = zero_predictor.predict(d.pc)
                    op.zero_pred = zero_prediction
                    if zero_prediction.use_pred and dest_preg == NO_REG:
                        dest_preg = zero_preg
                        op.zero_pred_used = True  # executes to validate

                if vp is not None and eligible:
                    value_prediction = vp.lookup(d.pc)
                    op.vp_pred = value_prediction
                    if value_prediction.predicted() and dest_preg == NO_REG:
                        op.vp_used = True
                        op.vp_ok = value_prediction.value == d.result
                        vp.stats.used += 1

                if dest_preg == NO_REG:
                    # Inlined free_list.allocate (pool non-emptiness was
                    # established by the stall guard above).
                    dest_preg = (
                        free_fp_pool if d.dest >= FP_BASE else free_int_pool
                    ).pop()
                    free_allocated[dest_preg] = True
                    op.allocated = True
                    reg_ready[dest_preg] = (
                        cycle if op.vp_used else _INF
                    )
                op.dest_preg = dest_preg
                dest = d.dest
                op.old_preg = rmap[dest]
                rmap[dest] = dest_preg

            if not needs_iq:
                op.complete_cycle = cycle
                op.executed = True

            # ---- structures -------------------------------------------
            rob_entries.append(op)
            rob_len += 1
            if needs_iq:
                # Inlined iq.insert (capacity was checked above).
                op.iq_index = len(iq_entries)
                iq_entries.append(op)
                iq_live += 1
                iq._live = iq_live
                # Inlined _schedule_op for the dispatch case.  The op is
                # the youngest in flight, so when it is ready now it is
                # appended to the (seq-sorted) ready list without a
                # re-sort — the same invariant the method relies on.
                preg = op.src_preg1
                t1 = reg_ready[preg] if preg >= 0 else 0
                if t1 >= _INF:
                    waiters = preg_waiters.get(preg)
                    if waiters is None:
                        preg_waiters[preg] = [op]
                    else:
                        waiters.append(op)
                else:
                    preg = op.src_preg2
                    t2 = reg_ready[preg] if preg >= 0 else 0
                    if t2 >= _INF:
                        waiters = preg_waiters.get(preg)
                        if waiters is None:
                            preg_waiters[preg] = [op]
                        else:
                            waiters.append(op)
                    else:
                        wake = t1 if t1 > t2 else t2
                        parked = False
                        if (
                            op.dist_used or op.likely_candidate
                        ) and op.producer is not None:
                            # §IV.F: depend on the producer so validation
                            # can catch the value on the bypass.
                            producer = op.producer
                            t = producer.complete_cycle
                            if t is None:
                                if producer.waiters is None:
                                    producer.waiters = [op]
                                else:
                                    producer.waiters.append(op)
                                parked = True
                            elif t > wake:
                                wake = t
                        if not parked:
                            if wake <= cycle:
                                ready_append(op)
                            else:
                                bucket = wakeup.get(wake)
                                if bucket is None:
                                    wakeup[wake] = [op]
                                    heappush(wakeup_heap, wake)
                                else:
                                    bucket.append(op)
            if d.is_load:
                # Inlined lsq.add_load (LQ capacity was checked above).
                lsq_loads.append(op)
                word = d.addr >> WORD_SHIFT
                bucket = loads_by_word.get(word)
                if bucket is None:
                    loads_by_word[word] = [op]
                else:
                    bucket.append(op)
                lq_len += 1
                dep = store_sets.load_dependency(d.pc)
                if dep is not None and not dep.committed and not dep.squashed:
                    op.store_dep = dep
            elif d.is_store:
                # Inlined lsq.add_store (SQ capacity was checked above).
                lsq_stores.append(op)
                word = d.addr >> WORD_SHIFT
                bucket = stores_by_word.get(word)
                if bucket is None:
                    stores_by_word[word] = [op]
                else:
                    bucket.append(op)
                sq_len += 1
                store_sets.store_dispatched(d.pc, op)
            if produces:
                pw_append(op)

            fetch_buffer.popleft()
            renamed += 1

    def _try_share(self, op: InflightOp, prediction, dest_class) -> int:
        """Attempt RSEP register sharing; returns the shared preg or NO_REG."""
        rsep = self.rsep
        producer = self.producer_window.producer_at(prediction.distance)
        if producer is None:
            rsep.stats.out_of_window += 1
            return NO_REG
        if reg_class(producer.d.dest) != dest_class:
            rsep.stats.class_mismatch += 1
            return NO_REG
        producer_preg = producer.dest_preg
        if producer_preg == self.zero_preg:
            rsep.stats.zero_reg_shares += 1
        elif not self.isrb.share(producer_preg):
            rsep.stats.isrb_rejected += 1
            return NO_REG
        else:
            op.shared = True
        op.dist_used = True
        op.producer = producer
        op.equality_ok = op.d.result == producer.d.result
        rsep.stats.used += 1
        return producer_preg

    # ==================================================================
    # Fetch
    # ==================================================================

    def _fetch(self, cycle: int) -> None:
        c = self.config
        if self._fetch_stalled_by is not None:
            blocked_on = self._fetch_stalled_by
            if blocked_on.complete_cycle is None:
                return  # mispredicted branch not resolved yet
            self._next_fetch_cycle = max(
                self._next_fetch_cycle,
                blocked_on.complete_cycle + c.redirect_delay,
            )
            self._fetch_stalled_by = None
        if cycle < self._next_fetch_cycle:
            return

        trace = self.trace.instructions
        num_instructions = len(trace)
        fetch_buffer = self._fetch_buffer
        append = fetch_buffer.append
        hierarchy = self.hierarchy
        branch_unit = self.branch_unit
        fetch_width = c.fetch_width
        fetch_buffer_size = c.fetch_buffer_size
        frontend_depth = c.frontend_depth
        rename_ready = cycle + frontend_depth
        fetched = 0
        taken_seen = 0
        buffered = len(fetch_buffer)
        while (
            fetched < fetch_width
            and buffered < fetch_buffer_size
            and self._cursor < num_instructions
        ):
            d = trace[self._cursor]
            line = d.line
            if line != self._last_fetch_line:
                bubble = hierarchy.fetch(d.pc, cycle)
                if bubble > 0:
                    self._next_fetch_cycle = cycle + bubble
                    break
                self._last_fetch_line = line
            op = InflightOp(d, self._cursor, rename_ready)
            if d.is_branch:
                outcome = branch_unit.fetch_branch(d)
                op.fetch_outcome = outcome
                append(op)
                buffered += 1
                self._cursor += 1
                fetched += 1
                if outcome.mispredicted:
                    self._fetch_stalled_by = op
                    break
                if outcome.decode_redirect:
                    self._next_fetch_cycle = (
                        cycle + c.decode_redirect_bubble
                    )
                    break
                if d.taken:
                    taken_seen += 1
                    self._last_fetch_line = -1  # fetch redirects to target
                    if taken_seen >= 2:
                        break  # 8-wide fetch over at most 1 taken branch
                continue
            append(op)
            buffered += 1
            self._cursor += 1
            fetched += 1

    def _fetch_columnar(self, cycle: int) -> None:
        """Fetch straight from the packed trace columns (DESIGN.md §9).

        Mirrors :meth:`_fetch` decision for decision — same line checks,
        same branch handling, same stall exits — but the per-instruction
        reads come from the flat columns (``lines``/``pcs``/``kinds``)
        and the ``DynInst`` row is materialised lazily, only for indices
        that actually enter the pipeline (cached across squash refetches
        and across every later cell replaying this trace).  The
        equivalence suite pins this path bit-identical to the legacy
        one.
        """
        c = self.config
        if self._fetch_stalled_by is not None:
            blocked_on = self._fetch_stalled_by
            if blocked_on.complete_cycle is None:
                return  # mispredicted branch not resolved yet
            self._next_fetch_cycle = max(
                self._next_fetch_cycle,
                blocked_on.complete_cycle + c.redirect_delay,
            )
            self._fetch_stalled_by = None
        if cycle < self._next_fetch_cycle:
            return

        trace = self.trace
        num_instructions = trace.n
        lines = trace.lines
        pcs = trace.pcs
        kinds = trace.kinds
        rows = trace.rows
        row = trace.row
        fetch_buffer = self._fetch_buffer
        append = fetch_buffer.append
        hierarchy_fetch = self.hierarchy.fetch
        fetch_branch = self.branch_unit.fetch_branch
        fetch_width = c.fetch_width
        fetch_buffer_size = c.fetch_buffer_size
        rename_ready = cycle + c.frontend_depth
        fetched = 0
        taken_seen = 0
        buffered = len(fetch_buffer)
        cursor = self._cursor
        last_line = self._last_fetch_line
        inflight = InflightOp
        new_op = InflightOp.__new__
        no_reg = NO_REG
        while (
            fetched < fetch_width
            and buffered < fetch_buffer_size
            and cursor < num_instructions
        ):
            line = lines[cursor]
            if line != last_line:
                bubble = hierarchy_fetch(pcs[cursor], cycle)
                if bubble > 0:
                    self._next_fetch_cycle = cycle + bubble
                    break
                last_line = line
            d = rows[cursor]
            if d is None:
                d = row(cursor)
            # Inlined InflightOp.__init__, seeded from the columnar row:
            # same stores, no call/frame per fetched instruction (edit
            # together with the constructor).
            op = new_op(inflight)
            op.d = d
            op.trace_index = cursor
            op.rename_ready_cycle = rename_ready
            op.src_preg1 = no_reg
            op.src_preg2 = no_reg
            op.dest_preg = no_reg
            op.old_preg = no_reg
            op.allocated = False
            op.shared = False
            op.eliminated = None
            op.zero_pred = None
            op.zero_pred_used = False
            op.dist_pred = None
            op.dist_used = False
            op.likely_candidate = False
            op.producer = None
            op.equality_ok = False
            op.vp_pred = None
            op.vp_used = False
            op.vp_ok = False
            op.fetch_outcome = None
            op.issued = False
            op.complete_cycle = None
            op.executed = False
            op.validation_done_cycle = None
            op.retained = False
            op.store_dep = None
            op.forward_from = None
            op.committed = False
            op.squashed = False
            op.waiters = None
            op.iq_index = -1
            if kinds[cursor] & KIND_BRANCH:
                outcome = fetch_branch(d)
                op.fetch_outcome = outcome
                append(op)
                buffered += 1
                cursor += 1
                fetched += 1
                if outcome.mispredicted:
                    self._fetch_stalled_by = op
                    break
                if outcome.decode_redirect:
                    self._next_fetch_cycle = (
                        cycle + c.decode_redirect_bubble
                    )
                    break
                if d.taken:
                    taken_seen += 1
                    last_line = -1  # fetch redirects to target
                    if taken_seen >= 2:
                        break  # 8-wide fetch over at most 1 taken branch
                continue
            append(op)
            buffered += 1
            cursor += 1
            fetched += 1
        self._cursor = cursor
        self._last_fetch_line = last_line

    # ==================================================================
    # Squash
    # ==================================================================

    def _squash_from_seq(
        self, first_seq: int, refetch_index: int, cycle: int
    ) -> None:
        """Flush every in-flight instruction with seq >= *first_seq*."""
        restore_outcome = None

        while not self.rob.empty and self.rob.tail().d.seq >= first_seq:
            op = self.rob.pop_tail()
            op.squashed = True
            self.stats.squashed_ops += 1
            if op.fetch_outcome is not None:
                restore_outcome = op.fetch_outcome
            if op.vp_pred is not None:
                self.vp.release(op.vp_pred)
            if op.dest_preg != NO_REG:
                installed = self.rename_map.undo_rename(
                    op.d.dest, op.old_preg
                )
                if installed != op.dest_preg:
                    raise PipelineError(
                        f"rename undo mismatch at seq {op.d.seq}"
                    )
                if op.allocated:
                    self.free_list.release(op.dest_preg)
                elif op.shared:
                    if self.isrb.unshare(op.dest_preg):
                        self.free_list.release(op.dest_preg)
                self.producer_window.squash_tail(op)

        if restore_outcome is None:
            for op in self._fetch_buffer:
                if op.fetch_outcome is not None:
                    restore_outcome = op.fetch_outcome
                    break
        if restore_outcome is not None:
            self.branch_unit.squash_to(restore_outcome)

        for op in self._fetch_buffer:
            op.squashed = True
        self._fetch_buffer.clear()
        self.iq.squash(lambda o: o.d.seq >= first_seq)
        # Squashed ops elsewhere in the scheduler (wakeup buckets, preg /
        # producer waiter lists) are dropped lazily via their squashed
        # flag; the ready list is filtered eagerly since it is iterated
        # every issue cycle.
        self._ready[:] = [o for o in self._ready if o.d.seq < first_seq]
        self.lsq.squash(first_seq)
        self.validation_queue.squash(first_seq)
        self._fetch_stalled_by = None
        self._cursor = refetch_index
        self._last_fetch_line = -1
        self._next_fetch_cycle = max(
            self._next_fetch_cycle, cycle + self.config.redirect_delay
        )
