"""The cycle-level pipeline: configuration, core, simulator, statistics."""

from repro.pipeline.config import CoreConfig, MechanismConfig
from repro.pipeline.core import InflightOp, Pipeline, PipelineError
from repro.pipeline.simulator import (
    SimulationResult,
    Simulator,
    default_windows,
)
from repro.pipeline.stats import Stats

__all__ = [
    "CoreConfig",
    "InflightOp",
    "MechanismConfig",
    "Pipeline",
    "PipelineError",
    "SimulationResult",
    "Simulator",
    "Stats",
    "default_windows",
]
