"""Per-mechanism code generation of the rename and issue loops (DESIGN.md §12).

``Pipeline._rename`` and ``Pipeline._issue`` are the two largest tottime
blocks of a detailed run, and most of what they execute per instruction
is *configuration dispatch*: is RSEP on, is there a zero predictor, is
validation ideal, is sharing sampled.  None of those answers change
during a run, so — exactly like the predictors' generated fast paths
(``DistancePredictor._build_fast_predict``,
``GlobalHistory._build_fast_push``) — this module emits a specialised
source body per mechanism/core configuration with every such branch
constant-folded away, compiles it once per configuration fingerprint
(module-level code cache), and binds it per pipeline by ``exec``-ing the
cached code object against an environment of that pipeline's live
structures.

The contract that makes the binding safe (enforced by the differential
tests and documented in DESIGN.md §12):

* every container the generated code closes over is mutated strictly in
  place for the pipeline's life (ready list, wakeup map/heap, preg-waiter
  map, ROB deque, producer-window deque, free-list pools, scoreboard);
* containers that *are* rebound elsewhere (the IQ entry list compacts,
  the LSQ lists/buckets rebuild on squash) are re-hoisted from their
  owner on every call, never embedded;
* generated bodies mirror the generic loops statement for statement —
  the generic ``_rename``/``_issue`` stay live as the differential
  oracle behind ``REPRO_GENRENAME=0`` and the golden suites pin both
  planes digest-identical.
"""

from __future__ import annotations

from heapq import heappush

from repro.backend.lsq import WORD_SHIFT
from repro.core.validation import ValidationMode
from repro.isa.registers import FP_BASE, RegClass

_INF = 1 << 60

#: (repr(CoreConfig), MechanismConfig.fingerprint()) -> (rename, issue)
#: compiled code objects.  One compile per configuration per process; the
#: per-pipeline work is a dict of bindings plus two execs.
_CODE_CACHE: dict[tuple[str, str], tuple] = {}


class _Spec:
    """The constant-foldable facts of one (core, mechanism) configuration."""

    def __init__(self, config, mechanisms) -> None:
        self.rename_width = config.rename_width
        self.rob_capacity = config.rob_entries
        self.iq_capacity = config.iq_entries
        self.lq_capacity = config.lq_entries
        self.sq_capacity = config.sq_entries
        self.stlf_latency = config.stlf_latency
        self.issue_width = config.ports.issue_width
        self.alu_count = config.ports.alu_count
        self.ldst_ports = config.ports.ldst_ports
        # The hardwired zero register sits after both pools (FreeList).
        self.zero_preg = config.int_pregs + config.fp_pregs
        self.fp_base = FP_BASE
        self.zie = config.zero_idiom_elimination
        self.move_elim = mechanisms.move_elim
        self.has_zp = mechanisms.zero_pred
        self.has_vp = mechanisms.vp is not None
        self.has_rsep = mechanisms.rsep is not None
        self.rsep_sampling = (
            self.has_rsep and mechanisms.rsep.sampling
        )
        self.validation_real = (
            self.has_rsep
            and mechanisms.rsep.validation is not ValidationMode.IDEAL
        )


# ---------------------------------------------------------------------------
# Rename
# ---------------------------------------------------------------------------


def _rename_source(s: _Spec) -> str:
    """The specialised ``_rename`` body (mirror of ``Pipeline._rename``)."""
    any_mech = s.has_rsep or s.has_zp or s.has_vp
    w: list[str] = []
    a = w.append
    a("def fast_rename(cycle):")
    a("    fetch_buffer = _fetch_buffer")
    a("    if not fetch_buffer:")
    a("        return")
    a("    stats = _stats")
    a("    rob_entries = _rob_entries")
    a("    rob_len = len(rob_entries)")
    a("    iq = _iq")
    a("    iq_entries = iq._entries")
    a("    iq_live = iq._live")
    a("    preg_waiters = _preg_waiters")
    a("    ready_append = _ready.append")
    a("    wakeup = _wakeup")
    a("    wakeup_heap = _wakeup_heap")
    a("    reg_ready = _reg_ready")
    a("    rmap = _rename_map._map")
    a("    lsq_loads = _lsq._loads")
    a("    lsq_stores = _lsq._stores")
    a("    loads_by_word = _lsq._loads_by_word")
    a("    stores_by_word = _lsq._stores_by_word")
    a("    lq_len = len(lsq_loads)")
    a("    sq_len = len(lsq_stores)")
    a("    renamed = 0")
    a(f"    while renamed < {s.rename_width} and fetch_buffer:")
    a("        op = fetch_buffer[0]")
    a("        if op.rename_ready_cycle > cycle:")
    a("            break")
    a("        d = op.d")
    a("        produces = d.dest != -1")
    # ---- capacity checks (stall in order), mirroring _rename_stall_cause
    a(f"        if rob_len >= {s.rob_capacity}:")
    a("            stats.stall_rob += 1")
    a("            break")
    a(f"        if d.fu != 9 and iq_live >= {s.iq_capacity}:")
    a("            stats.stall_iq += 1")
    a("            break")
    a(f"        if d.is_load and lq_len >= {s.lq_capacity}:")
    a("            stats.stall_lsq += 1")
    a("            break")
    a(f"        if d.is_store and sq_len >= {s.sq_capacity}:")
    a("            stats.stall_lsq += 1")
    a("            break")
    a("        if produces and not d.zero_idiom and not (")
    a(f"            _free_fp if d.dest >= {s.fp_base} else _free_int")
    a("        ):")
    a("            stats.stall_regs += 1")
    a("            break")
    # ---- source operands (old map)
    a("        src1 = d.src1")
    a("        src2 = d.src2")
    a("        if src1 != -1:")
    a("            op.src_preg1 = rmap[src1]")
    a("            if src2 != -1:")
    a("                op.src_preg2 = rmap[src2]")
    a("        elif src2 != -1:")
    a("            op.src_preg1 = rmap[src2]")
    a("        needs_iq = d.fu != 9")
    # ---- destination handling & mechanisms (config branches folded)
    a("        if produces:")
    a("            dest_preg = -1")
    if any_mech:
        a("            eligible = d.eligible")
    eliminators = s.zie or s.move_elim
    if s.zie:
        a("            if d.zero_idiom:")
        a(f"                dest_preg = {s.zero_preg}")
        a("                op.eliminated = 'zero_idiom'")
        a("                _zie.eliminated += 1")
        a("                needs_iq = False")
    if s.move_elim:
        a(f"            {'elif' if s.zie else 'if'} d.move:")
        a("                shared_preg = _move_try(d)")
        a("                if shared_preg is not None:")
        a("                    dest_preg = shared_preg")
        a("                    op.eliminated = 'move'")
        a("                    op.shared = True")
        a("                    needs_iq = False")
    if s.has_rsep:
        guard = (
            "eligible and op.eliminated is None" if eliminators
            else "eligible"
        )
        a(f"            if {guard}:")
        a("                prediction = _rsep_predict(d.pc)")
        a("                _rsep_stats.lookups += 1")
        a("                if prediction.use_pred:")
        a("                    _rsep_stats.confident += 1")
        a("                    op.dist_pred = prediction")
        a("                    if dest_preg == -1:")
        a("                        dest_preg = _try_share(")
        a("                            op, prediction,")
        a(f"                            _RC_FP if d.dest >= {s.fp_base}"
          " else _RC_INT,")
        a("                        )")
        a("                else:")
        a("                    op.dist_pred = prediction")
        if s.rsep_sampling:
            a("                    if prediction.likely_candidate:")
            a("                        producer = _producer_at("
              "prediction.distance)")
            a("                        if producer is not None:")
            a("                            op.likely_candidate = True")
            a("                            op.producer = producer")
    if s.has_zp:
        a("            if eligible:")
        a("                zero_prediction = _zp_predict(d.pc)")
        a("                op.zero_pred = zero_prediction")
        a("                if zero_prediction.use_pred and dest_preg == -1:")
        a(f"                    dest_preg = {s.zero_preg}")
        a("                    op.zero_pred_used = True")
    if s.has_vp:
        a("            if eligible:")
        a("                value_prediction = _vp_lookup(d.pc)")
        a("                op.vp_pred = value_prediction")
        a("                if value_prediction.predicted()"
          " and dest_preg == -1:")
        a("                    op.vp_used = True")
        a("                    op.vp_ok = value_prediction.value == d.result")
        a("                    _vp_stats.used += 1")
    a("            if dest_preg == -1:")
    a(f"                dest_preg = (_free_fp if d.dest >= {s.fp_base}"
      " else _free_int).pop()")
    a("                _free_allocated[dest_preg] = True")
    a("                op.allocated = True")
    if s.has_vp:
        a(f"                reg_ready[dest_preg] = cycle if op.vp_used"
          f" else {_INF}")
    else:
        a(f"                reg_ready[dest_preg] = {_INF}")
    a("            op.dest_preg = dest_preg")
    a("            dest = d.dest")
    a("            op.old_preg = rmap[dest]")
    a("            rmap[dest] = dest_preg")
    a("        if not needs_iq:")
    a("            op.complete_cycle = cycle")
    a("            op.executed = True")
    # ---- structures
    a("        rob_entries.append(op)")
    a("        rob_len += 1")
    a("        if needs_iq:")
    a("            op.iq_index = len(iq_entries)")
    a("            iq_entries.append(op)")
    a("            iq_live += 1")
    a("            iq._live = iq_live")
    a("            preg = op.src_preg1")
    a("            t1 = reg_ready[preg] if preg >= 0 else 0")
    a(f"            if t1 >= {_INF}:")
    a("                waiters = preg_waiters.get(preg)")
    a("                if waiters is None:")
    a("                    preg_waiters[preg] = [op]")
    a("                else:")
    a("                    waiters.append(op)")
    a("            else:")
    a("                preg = op.src_preg2")
    a("                t2 = reg_ready[preg] if preg >= 0 else 0")
    a(f"                if t2 >= {_INF}:")
    a("                    waiters = preg_waiters.get(preg)")
    a("                    if waiters is None:")
    a("                        preg_waiters[preg] = [op]")
    a("                    else:")
    a("                        waiters.append(op)")
    a("                else:")
    a("                    wake = t1 if t1 > t2 else t2")
    if s.has_rsep:
        a("                    parked = False")
        a("                    if (")
        a("                        op.dist_used or op.likely_candidate")
        a("                    ) and op.producer is not None:")
        a("                        producer = op.producer")
        a("                        t = producer.complete_cycle")
        a("                        if t is None:")
        a("                            if producer.waiters is None:")
        a("                                producer.waiters = [op]")
        a("                            else:")
        a("                                producer.waiters.append(op)")
        a("                            parked = True")
        a("                        elif t > wake:")
        a("                            wake = t")
        a("                    if not parked:")
        extra = "    "
    else:
        extra = ""
    a(f"                    {extra}if wake <= cycle:")
    a(f"                        {extra}ready_append(op)")
    a(f"                    {extra}else:")
    a(f"                        {extra}bucket = wakeup.get(wake)")
    a(f"                        {extra}if bucket is None:")
    a(f"                            {extra}wakeup[wake] = [op]")
    a(f"                            {extra}_heappush(wakeup_heap, wake)")
    a(f"                        {extra}else:")
    a(f"                            {extra}bucket.append(op)")
    a("        if d.is_load:")
    a("            lsq_loads.append(op)")
    a(f"            word = d.addr >> {WORD_SHIFT}")
    a("            bucket = loads_by_word.get(word)")
    a("            if bucket is None:")
    a("                loads_by_word[word] = [op]")
    a("            else:")
    a("                bucket.append(op)")
    a("            lq_len += 1")
    a("            dep = _load_dependency(d.pc)")
    a("            if dep is not None and not dep.committed"
      " and not dep.squashed:")
    a("                op.store_dep = dep")
    a("        elif d.is_store:")
    a("            lsq_stores.append(op)")
    a(f"            word = d.addr >> {WORD_SHIFT}")
    a("            bucket = stores_by_word.get(word)")
    a("            if bucket is None:")
    a("                stores_by_word[word] = [op]")
    a("            else:")
    a("                bucket.append(op)")
    a("            sq_len += 1")
    a("            _store_dispatched(d.pc, op)")
    a("        if produces:")
    a("            _pw_append(op)")
    a("        fetch_buffer.popleft()")
    a("        renamed += 1")
    return "\n".join(w)


# ---------------------------------------------------------------------------
# Issue
# ---------------------------------------------------------------------------


def _issue_source(s: _Spec) -> str:
    """The specialised ``_issue`` body (mirror of ``Pipeline._issue``)."""
    w: list[str] = []
    a = w.append
    a("def fast_issue(cycle):")
    a("    ready = _ready")
    a("    bucket = _wakeup.pop(cycle, None)")
    a("    if bucket is not None:")
    a("        ready_append = ready.append")
    a("        for op in bucket:")
    a("            if not (op.issued or op.squashed):")
    a("                ready_append(op)")
    a("        _p._ready_dirty = True")
    if s.validation_real:
        a("    pending_validation = len(_vq) != 0")
        a("    if not ready and not pending_validation:")
        a("        return")
        a("    ports = _ports")
        a("    ports.new_cycle(cycle)")
        a("    if pending_validation:")
        a("        validated = _vq.issue_cycle(cycle, ports)")
        a("        if validated:")
        a("            _iq.remove_issued(validated)")
        a("    if not ready:")
        a("        return")
    else:
        # IDEAL (or no RSEP): the validation queue never holds entries.
        a("    if not ready:")
        a("        return")
        a("    ports = _ports")
        a("    ports.new_cycle(cycle)")
    a("    if _p._ready_dirty:")
    a("        ready.sort(key=_op_seq)")
    a("        _p._ready_dirty = False")
    a("    stats = _stats")
    a("    reg_ready = _reg_ready")
    a("    preg_waiters = _preg_waiters")
    a("    issued = None")
    a("    to_wake = None")
    a("    violation_load = None")
    a("    violating_store = None")
    a("    for op in ready:")
    a(f"        if ports._total >= {s.issue_width}:")
    a("            break")
    a("        d = op.d")
    # Inlined _op_ready for loads (producer dependence folded per config).
    a("        if d.is_load:")
    a("            preg = op.src_preg1")
    a("            if preg >= 0 and reg_ready[preg] > cycle:")
    a("                continue")
    a("            preg = op.src_preg2")
    a("            if preg >= 0 and reg_ready[preg] > cycle:")
    a("                continue")
    if s.has_rsep:
        a("            if (op.dist_used or op.likely_candidate)"
          " and op.producer is not None:")
        a("                producer = op.producer")
        a("                if producer.complete_cycle is None or (")
        a("                    producer.complete_cycle > cycle")
        a("                ):")
        a("                    continue")
    a("            dep = op.store_dep")
    a("            if dep is not None and not dep.squashed"
      " and not dep.executed:")
    a("                continue")
    a("            if _blocking_store(op) is not None:")
    a("                continue")
    a("            forward = _forwarding_store(op, cycle)")
    a("            if forward is not None and forward.complete_cycle > cycle:")
    a("                continue")
    a("            op.forward_from = forward")
    # Inlined IssuePorts.try_issue INT_ALU/BRANCH/NONE and MEM_LOAD arms
    # (the break above guarantees a free issue slot).
    a("        fu = d.fu")
    a("        if fu == 0 or fu == 8 or fu == 9:")
    a(f"            if ports._alu >= {s.alu_count}:")
    a("                continue")
    a("            ports._alu += 1")
    a("            ports._total += 1")
    a("        elif fu == 6:")
    a(f"            if ports._ldst >= {s.ldst_ports}:")
    a("                continue")
    a("            ports._ldst += 1")
    a("            ports._total += 1")
    a("        elif not _try_issue(fu, cycle):")
    a("            continue")
    a("        op.issued = True")
    a("        if d.is_load:")
    a("            if op.forward_from is not None:")
    a(f"                latency = {s.stlf_latency}")
    a("                stats.load_forwards += 1")
    a("            else:")
    a("                latency = _hierarchy_load(d.pc, d.addr, cycle)")
    a("            complete = cycle + latency")
    a("            op.executed = True")
    a("        elif d.is_store:")
    a("            complete = cycle + 1")
    a("            op.executed = True")
    a("        else:")
    a("            complete = cycle + d.latency")
    a("        op.complete_cycle = complete")
    if s.has_rsep:
        a("        if op.dist_used or (")
        a("            op.likely_candidate and op.producer is not None")
        a("        ):")
        if s.validation_real:
            a("            _vq_request(op)")
            a("            op.retained = True")
        else:
            # ValidationQueue.request in IDEAL mode, inlined.
            a("            op.validation_done_cycle = complete")
    if s.has_vp:
        a("        if op.allocated and not op.vp_used:")
    else:
        a("        if op.allocated:")
    a("            dest = op.dest_preg")
    a("            reg_ready[dest] = complete")
    a("            waiters = preg_waiters.pop(dest, None)")
    a("            if waiters is not None:")
    a("                if to_wake is None:")
    a("                    to_wake = waiters")
    a("                else:")
    a("                    to_wake.extend(waiters)")
    a("        waiters = op.waiters")
    a("        if waiters is not None:")
    a("            op.waiters = None")
    a("            if to_wake is None:")
    a("                to_wake = waiters")
    a("            else:")
    a("                to_wake.extend(waiters)")
    a("        if issued is None:")
    a("            issued = [op]")
    a("        else:")
    a("            issued.append(op)")
    a("        if d.is_store:")
    a("            violators = _find_violations(op)")
    a("            if violators:")
    a("                violation_load = violators[0]")
    a("                violating_store = op")
    a("                break")
    # Batched waiter re-insertion (mirror of the generic flat pass).
    a("    if to_wake is not None:")
    a("        wakeup = _wakeup")
    a("        wakeup_heap = _wakeup_heap")
    a("        ready_append = ready.append")
    a("        for waiter in to_wake:")
    a("            if waiter.issued or waiter.squashed:")
    a("                continue")
    a("            wake = 0")
    a("            preg = waiter.src_preg1")
    a("            if preg >= 0:")
    a("                t = reg_ready[preg]")
    a("                if t > wake:")
    a(f"                    if t >= {_INF}:")
    a("                        parked = preg_waiters.get(preg)")
    a("                        if parked is None:")
    a("                            preg_waiters[preg] = [waiter]")
    a("                        else:")
    a("                            parked.append(waiter)")
    a("                        continue")
    a("                    wake = t")
    a("            preg = waiter.src_preg2")
    a("            if preg >= 0:")
    a("                t = reg_ready[preg]")
    a("                if t > wake:")
    a(f"                    if t >= {_INF}:")
    a("                        parked = preg_waiters.get(preg)")
    a("                        if parked is None:")
    a("                            preg_waiters[preg] = [waiter]")
    a("                        else:")
    a("                            parked.append(waiter)")
    a("                        continue")
    a("                    wake = t")
    if s.has_rsep:
        a("            if (")
        a("                waiter.dist_used or waiter.likely_candidate")
        a("            ) and waiter.producer is not None:")
        a("                producer = waiter.producer")
        a("                t = producer.complete_cycle")
        a("                if t is None:")
        a("                    if producer.waiters is None:")
        a("                        producer.waiters = [waiter]")
        a("                    else:")
        a("                        producer.waiters.append(waiter)")
        a("                    continue")
        a("                if t > wake:")
        a("                    wake = t")
    a("            if wake <= cycle:")
    a("                ready_append(waiter)")
    a("            else:")
    a("                bucket = wakeup.get(wake)")
    a("                if bucket is None:")
    a("                    wakeup[wake] = [waiter]")
    a("                    _heappush(wakeup_heap, wake)")
    a("                else:")
    a("                    bucket.append(waiter)")
    a("    if issued is not None:")
    a("        ready[:] = [op for op in ready if not op.issued]")
    a("        iq = _iq")
    a("        entries = iq._entries")
    a("        live = iq._live")
    a("        for op in issued:")
    if s.validation_real:
        a("            if op.retained:")
        a("                continue")
    a("            index = op.iq_index")
    a("            if index >= 0 and entries[index] is op:")
    a("                entries[index] = None")
    a("                op.iq_index = -1")
    a("                live -= 1")
    a("        iq._live = live")
    a("        if len(entries) > 2 * live + 16:")
    a("            iq._compact()")
    a("    if violation_load is not None:")
    a("        _train_violation(violation_load.d.pc, violating_store.d.pc)")
    a("        stats.squashes_memory_order += 1")
    a("        _p._squash_from_seq(")
    a("            violation_load.d.seq, violation_load.trace_index, cycle")
    a("        )")
    return "\n".join(w)


# ---------------------------------------------------------------------------
# Compilation and per-pipeline binding
# ---------------------------------------------------------------------------


def compiled_stages(config, mechanisms) -> tuple:
    """(rename, issue) code objects for this configuration, cached."""
    key = (repr(config), mechanisms.fingerprint())
    codes = _CODE_CACHE.get(key)
    if codes is None:
        spec = _Spec(config, mechanisms)
        codes = (
            compile(_rename_source(spec), "<genrename:rename>", "exec"),
            compile(_issue_source(spec), "<genrename:issue>", "exec"),
        )
        _CODE_CACHE[key] = codes
    return codes


def install_fast_stages(pipeline) -> None:
    """Bind the generated rename/issue loops onto *pipeline*.

    The environment maps every name the generated bodies read to the
    pipeline's live structures (identity-stable ones directly, owners of
    rebindable containers so those are re-hoisted per call).  Bound as
    instance attributes, exactly like the columnar fetch binding.
    """
    from repro.pipeline.core import _op_seq

    rename_code, issue_code = compiled_stages(
        pipeline.config, pipeline.mechanisms
    )
    env = {
        "_p": pipeline,
        "_stats": pipeline.stats,
        "_fetch_buffer": pipeline._fetch_buffer,
        "_rob_entries": pipeline.rob._entries,
        "_iq": pipeline.iq,
        "_lsq": pipeline.lsq,
        "_rename_map": pipeline.rename_map,
        "_preg_waiters": pipeline._preg_waiters,
        "_ready": pipeline._ready,
        "_wakeup": pipeline._wakeup,
        "_wakeup_heap": pipeline._wakeup_heap,
        "_reg_ready": pipeline._reg_ready,
        "_free_int": pipeline.free_list._free_int,
        "_free_fp": pipeline.free_list._free_fp,
        "_free_allocated": pipeline.free_list._allocated,
        "_pw_append": pipeline.producer_window._window.append,
        "_load_dependency": pipeline.store_sets.load_dependency,
        "_store_dispatched": pipeline.store_sets.store_dispatched,
        "_train_violation": pipeline.store_sets.train_violation,
        "_blocking_store": pipeline.lsq.blocking_store,
        "_forwarding_store": pipeline.lsq.forwarding_store,
        "_find_violations": pipeline.lsq.find_violations,
        "_hierarchy_load": pipeline.hierarchy.load,
        "_ports": pipeline.ports,
        "_try_issue": pipeline.ports.try_issue,
        "_vq": pipeline.validation_queue,
        "_vq_request": pipeline.validation_queue.request,
        "_heappush": heappush,
        "_op_seq": _op_seq,
        "_RC_INT": RegClass.INT,
        "_RC_FP": RegClass.FP,
        "_zie": pipeline.zero_idiom_elim,
        "_move_try": pipeline.move_eliminator.try_eliminate,
        "_try_share": pipeline._try_share,
    }
    if pipeline.rsep is not None:
        env["_rsep_predict"] = pipeline.rsep.predictor.predict
        env["_rsep_stats"] = pipeline.rsep.stats
        env["_producer_at"] = pipeline.producer_window.producer_at
    if pipeline.zero_predictor is not None:
        env["_zp_predict"] = pipeline.zero_predictor.predict
    if pipeline.vp is not None:
        env["_vp_lookup"] = pipeline.vp.lookup
        env["_vp_stats"] = pipeline.vp.stats
    exec(rename_code, env)  # noqa: S102 - static template, no external input
    exec(issue_code, env)  # noqa: S102 - static template, no external input
    pipeline._rename = env["fast_rename"]
    pipeline._issue = env["fast_issue"]
