"""Simulation statistics: IPC, coverage, squash and speculation accounting.

Coverage categories follow Fig. 5's legend exactly: zero-idiom elimination,
move elimination, zero prediction (load / other), distance prediction
(load / other) and value prediction (load / other), all as fractions of
committed instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Stats:
    """Counters for one measurement window."""

    cycles: int = 0
    committed: int = 0
    committed_producers: int = 0
    committed_eligible: int = 0

    # Fig. 5 coverage categories.
    zero_idiom_elim: int = 0
    move_elim: int = 0
    zero_pred: int = 0
    zero_pred_load: int = 0
    dist_pred: int = 0
    dist_pred_load: int = 0
    value_pred: int = 0
    value_pred_load: int = 0

    # Speculation outcomes.
    rsep_mispredicts: int = 0
    vp_mispredicts: int = 0
    zero_mispredicts: int = 0

    # Squashes.
    squashes_rsep: int = 0
    squashes_vp: int = 0
    squashes_zero: int = 0
    squashes_memory_order: int = 0
    squashed_ops: int = 0

    # Branches.
    branches: int = 0
    branch_mispredicts: int = 0

    # Memory.
    loads: int = 0
    stores: int = 0
    load_forwards: int = 0

    # Stall accounting (rename-blocked cycles by cause).
    stall_rob: int = 0
    stall_iq: int = 0
    stall_regs: int = 0
    stall_lsq: int = 0

    # Interval-sampling aggregation (DESIGN.md §8).  The raw counters
    # above cover the *detailed* intervals only; these fields describe
    # how those intervals sample the full window.  All four stay zero
    # unless functional warming actually skipped instructions, so a
    # 100%-duty-cycle (degenerate) sampled run and a plain full-detail
    # run produce bit-identical ``Stats``.
    intervals: int = 0        # detailed intervals aggregated
    warmed: int = 0           # instructions covered by functional warming
    sampled_window: int = 0   # window covered (committed + warmed)
    ipc_ci: float = 0.0       # confidence-interval half-width on ipc

    extra: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def sampled(self) -> bool:
        """True iff this window was measured by interval sampling."""
        return self.warmed > 0

    @property
    def branch_mpki(self) -> float:
        if not self.committed:
            return 0.0
        return 1000.0 * self.branch_mispredicts / self.committed

    def coverage_fraction(self, count: int) -> float:
        return count / self.committed if self.committed else 0.0

    @property
    def rsep_accuracy(self) -> float:
        total = self.dist_pred + self.rsep_mispredicts
        return self.dist_pred / total if total else 1.0

    @property
    def rsep_coverage_of_eligible(self) -> float:
        """Distance-predicted fraction of eligible instructions (§VI.B)."""
        if not self.committed_eligible:
            return 0.0
        return self.dist_pred / self.committed_eligible

    def coverage_summary(self) -> dict[str, float]:
        """Fig. 5's bar segments for this run."""
        return {
            "zero_idiom_elim": self.coverage_fraction(self.zero_idiom_elim),
            "move_elim": self.coverage_fraction(self.move_elim),
            "zero_pred": self.coverage_fraction(
                self.zero_pred - self.zero_pred_load
            ),
            "zero_pred_load": self.coverage_fraction(self.zero_pred_load),
            "dist_pred": self.coverage_fraction(
                self.dist_pred - self.dist_pred_load
            ),
            "dist_pred_load": self.coverage_fraction(self.dist_pred_load),
            "value_pred": self.coverage_fraction(
                self.value_pred - self.value_pred_load
            ),
            "value_pred_load": self.coverage_fraction(self.value_pred_load),
        }

    def reset_window(self) -> None:
        """Zero the counters at the end of warm-up (state is retained)."""
        extra = self.extra
        self.__init__()
        self.extra = extra
