"""CI smoke gate for the cluster: ``repro sweep --smoke --hosts loopback``.

The golden cluster property, end to end with *real* processes: two
``repro serve --tcp`` children on 127.0.0.1, a coordinator sweep with an
injected remote-host crash (``os._exit`` in the child — the connection
genuinely dies) and one corrupt artifact, and the merged result must be
digest-identical to an unfaulted in-process run.  Then the artifact
plane: the hosts' written-back lake entries must let a *fresh
coordinator process* on the same lake simulate zero cells and reproduce
the identical stats.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.api import env as api_env
from repro.api.spec import (
    ExperimentSpec,
    StoreSpec,
    WindowSpec,
    default_mechanisms,
)
from repro.service.faults import FaultPlan

#: Injected when ``REPRO_FAULTS`` is unset: the host serving shard 0's
#: first attempt crashes (host death + reassignment), shard 1's first
#: artifact comes back corrupt (digest rejection + retry).
DEFAULT_FAULTS = "crash:0,corrupt:1"

_ANNOUNCE = re.compile(r"tcp=([0-9.]+):(\d+)")


def _grid_digest(result) -> str:
    """The digest ``repro.harness.sweep --lake-child`` prints, computed
    from a :class:`~repro.api.result.RunResult` — one digest definition
    for "same stats" across the clustered run and the fresh-coordinator
    child."""
    grouped: dict[str, list] = {}
    for cell in sorted(
        result.cells, key=lambda c: (c.benchmark, c.mechanism, c.seed)
    ):
        grouped.setdefault(f"{cell.benchmark}|{cell.mechanism}", []).append(
            dataclasses.asdict(cell.stats)
        )
    payload = dict(sorted(grouped.items()))
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()[:16]


def _child_env() -> dict:
    env = dict(os.environ)
    import repro

    src = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    # Hosts are hermetic: no persistent store, no ambient cluster or
    # fault state (the coordinator's faults travel inside requests).
    env["REPRO_TRACE_STORE"] = "off"
    env.pop("REPRO_HOSTS", None)
    env.pop("REPRO_FAULTS", None)
    return env


def _spawn_host(env: dict) -> tuple[subprocess.Popen, str] | None:
    """One ``repro serve --tcp 127.0.0.1:0`` child; returns (process,
    "host:port") once the ephemeral port is announced."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--tcp", "127.0.0.1:0", "--no-socket"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if process.poll() is not None:
            print("cluster smoke: serve child exited before announcing "
                  f"(code {process.returncode})")
            return None
        line = process.stdout.readline()
        match = _ANNOUNCE.search(line or "")
        if match:
            return process, f"{match.group(1)}:{match.group(2)}"
    process.kill()
    print("cluster smoke: serve child never announced its port")
    return None


def cluster_smoke() -> int:
    """Gate: a crash-and-corruption cluster run must merge
    digest-identical, and its lake write-back must warm a fresh
    coordinator to zero simulations."""
    from repro.api.session import Session
    from repro.cluster.dispatch import run_clustered
    from repro.service.supervisor import ShardSupervisor

    plan = FaultPlan.parse(api_env.faults_from_env() or DEFAULT_FAULTS)
    env = _child_env()
    hosts: list[tuple[subprocess.Popen, str]] = []
    try:
        for _ in range(2):
            spawned = _spawn_host(env)
            if spawned is None:
                return 1
            hosts.append(spawned)
        host_list = ",".join(address for _, address in hosts)
        with tempfile.TemporaryDirectory(
            prefix="repro-smoke-cluster-"
        ) as lake_root:
            spec = ExperimentSpec(
                benchmarks=("mcf", "dealII"),
                mechanisms=default_mechanisms(),
                window=WindowSpec(warmup=512, measure=2000),
                store=StoreSpec(path=lake_root, result_lake=True),
            )
            # The reference runs store-less so it cannot pre-warm the
            # coordinator lake the clustered run is about to prove out.
            reference_spec = dataclasses.replace(
                spec, store=StoreSpec(enabled=False)
            )
            reference = Session.for_spec(reference_spec).run(reference_spec)
            supervisor = ShardSupervisor(faults=plan, backoff_base=0.01)
            outcome = run_clustered(
                spec, hosts=host_list, shards=2, supervisor=supervisor,
            )
            if outcome.mode != "clustered":
                print("cluster smoke: expected a clustered run, got "
                      f"{outcome.mode}")
                return 1
            if not outcome.complete:
                print("cluster smoke: holes after retries: "
                      f"{list(outcome.holes)} "
                      f"(failures: {list(outcome.failures)})")
                return 1
            faulted = {
                fault.shard for fault in plan.faults
                if fault.shard in outcome.attempts
            }
            undertried = [
                shard for shard in sorted(faulted)
                if outcome.attempts[shard] < 2
            ]
            if not faulted or undertried:
                print("cluster smoke: injected faults did not force "
                      f"retries (plan {plan.render()!r}, attempts "
                      f"{outcome.attempts})")
                return 1
            dead = [
                label for label, report in outcome.host_reports.items()
                if report["status"] == "dead"
            ]
            if not dead:
                print("cluster smoke: the crash fault killed no host "
                      f"(host reports: {outcome.host_reports})")
                return 1
            if outcome.digest() != reference.digest():
                print("cluster smoke: faulted clustered digest "
                      f"{outcome.digest()} != in-process "
                      f"{reference.digest()}")
                return 1
            lake_cells = list(Path(lake_root).glob("*.cell"))
            if len(lake_cells) != spec.cells:
                print("cluster smoke: lake write-back left "
                      f"{len(lake_cells)} cell(s), expected {spec.cells}")
                return 1
            # Phase 2: a fresh coordinator process on the written-back
            # lake must simulate nothing and reproduce the same stats.
            child = subprocess.run(
                [sys.executable, "-m", "repro.harness.sweep",
                 "--lake-child", lake_root, "on"],
                capture_output=True, text=True, env=env,
            )
            if child.returncode != 0 or not child.stdout.strip():
                print("cluster smoke: fresh-coordinator child failed:\n"
                      f"{child.stdout}{child.stderr}")
                return 1
            line = child.stdout.strip().splitlines()[-1]
            fields = dict(part.split("=", 1) for part in line.split())
            if int(fields["simulated"]) != 0:
                print("cluster smoke: fresh coordinator re-simulated "
                      f"{fields['simulated']} cell(s) on the written-back "
                      "lake")
                return 1
            if fields["digest"] != _grid_digest(reference):
                print("cluster smoke: fresh-coordinator digest "
                      f"{fields['digest']} != reference "
                      f"{_grid_digest(reference)}")
                return 1
            print(
                "cluster smoke: survived "
                f"{plan.render()!r} across 2 real hosts "
                f"({sum(outcome.attempts.values())} attempts, "
                f"host(s) {', '.join(dead)} died) — merged digest "
                f"{outcome.digest()} == in-process; written-back lake "
                f"warmed a fresh coordinator to 0 simulations"
            )
            return 0
    finally:
        for process, _ in hosts:
            if process.poll() is None:
                process.terminate()
                try:
                    process.wait(timeout=10.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    process.kill()
                    process.wait(timeout=10.0)
            if process.stdout is not None:
                process.stdout.close()
