"""The service wire protocol: one newline-delimited JSON object per turn.

This module is the single implementation of the framing both listeners
(Unix socket and TCP) and both clients (the blocking sweep client and
the async remote dispatcher) share.  The protocol itself is deliberately
tiny — one request line in, one response line out, UTF-8 JSON objects —
so everything interesting lives in the *failure* surface:

* **oversized** — a line longer than :data:`STREAM_LIMIT` is refused
  without buffering the remainder;
* **truncated** — the peer closed the connection mid-line;
* **closed** — the peer closed before sending anything (a racing server
  restart looks like this);
* **malformed** — the line is not a JSON object.

Every failure raises :class:`FrameError` with a machine-readable
``kind``, so servers can answer a structured ``ok: false`` and keep
serving, and clients can decide which kinds are safely retriable.
"""

from __future__ import annotations

import asyncio
import json
import socket

#: Protocol version, exchanged in the capability handshake.  Bump when
#: a request/response shape changes incompatibly; the host pool refuses
#: hosts that answer with a different version.
PROTOCOL_VERSION = 1

#: Stream limit: full-grid specs and multi-hundred-cell artifacts are
#: far below this, but the asyncio default (64 KiB) is not enough.
STREAM_LIMIT = 64 * 1024 * 1024


class FrameError(ValueError):
    """A frame could not be read or decoded.

    ``kind`` is the machine-readable class: ``oversized``, ``truncated``,
    ``closed`` or ``malformed``.
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(message)
        self.kind = kind


# ---------------------------------------------------------------------------
# Async side (servers, remote dispatch could use it too)
# ---------------------------------------------------------------------------


async def read_frame(reader: asyncio.StreamReader) -> str:
    """One request line, or ``""`` on a clean EOF (no bytes at all).

    The reader's own ``limit`` (set when the server was started) bounds
    the line; exceeding it, or closing mid-line, raises a
    :class:`FrameError` the server turns into a structured error
    response instead of a logged-and-dropped connection.
    """
    try:
        raw = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return ""
        raise FrameError(
            "truncated",
            f"connection closed mid-request after {len(error.partial)} "
            "byte(s) (no terminating newline)",
        ) from error
    except asyncio.LimitOverrunError as error:
        raise FrameError(
            "oversized",
            f"request line exceeds the stream limit "
            f"({error.consumed} byte(s) buffered); requests are capped "
            f"at {STREAM_LIMIT} bytes",
        ) from error
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as error:
        raise FrameError("malformed", f"request is not UTF-8: {error}") \
            from error


async def write_frame(writer: asyncio.StreamWriter, message: dict) -> None:
    """Send one response object and flush it."""
    writer.write(encode_frame(message))
    await writer.drain()


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def encode_frame(message: dict) -> bytes:
    """One protocol object as wire bytes (sorted keys, one line)."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode_frame(text: str) -> dict:
    """Parse one frame's text; anything but a JSON object is malformed."""
    try:
        message = json.loads(text)
    except ValueError as error:
        raise FrameError("malformed", f"request is not JSON: {error}") \
            from error
    if not isinstance(message, dict):
        raise FrameError(
            "malformed",
            f"request must be a JSON object, not {type(message).__name__}",
        )
    return message


# ---------------------------------------------------------------------------
# Blocking side (clients)
# ---------------------------------------------------------------------------


def connect(
    address,
    *,
    connect_timeout: float,
    timeout: float,
) -> socket.socket:
    """Dial *address* and return a connected socket.

    *address* is a Unix-socket path (``str``/``os.PathLike``) or a
    ``(host, port)`` tuple / object with an ``address`` attribute (a
    :class:`~repro.cluster.hosts.HostSpec`).  The connect itself is
    bounded by *connect_timeout*; subsequent I/O by *timeout*.
    """
    endpoint = getattr(address, "address", address)
    if isinstance(endpoint, tuple):
        sock = socket.create_connection(endpoint, timeout=connect_timeout)
    else:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.settimeout(connect_timeout)
            sock.connect(str(endpoint))
        except BaseException:
            sock.close()
            raise
    sock.settimeout(timeout)
    return sock


def send_frame(sock: socket.socket, message: dict) -> None:
    sock.sendall(encode_frame(message))


def recv_frame(sock: socket.socket, limit: int = STREAM_LIMIT) -> dict:
    """Read one newline-terminated response object.

    Raises :class:`FrameError` with kind ``closed`` (EOF before any
    byte — the retriable "server restarted under us" case),
    ``truncated`` (EOF mid-line) or ``oversized`` (response exceeds
    *limit*); JSON errors surface as ``malformed``.
    """
    chunks: list[bytes] = []
    total = 0
    while True:
        chunk = sock.recv(1 << 20)
        if not chunk:
            if total == 0:
                raise FrameError(
                    "closed", "connection closed before any response byte"
                )
            raise FrameError(
                "truncated",
                f"connection closed mid-response after {total} byte(s)",
            )
        chunks.append(chunk)
        total += len(chunk)
        if total > limit:
            raise FrameError(
                "oversized",
                f"response exceeds the stream limit ({total} byte(s) "
                f"received, cap {limit})",
            )
        if chunk.endswith(b"\n"):
            break
    return decode_frame(b"".join(chunks).decode("utf-8"))
