"""Host addressing and the capability handshake contract.

A :class:`HostSpec` names one remote ``repro serve --tcp`` instance.
``REPRO_HOSTS`` (and ``repro sweep --hosts``) is a comma-separated list
of ``host:port`` entries — :func:`parse_hosts` is its one parser.

:func:`local_capabilities` is what a host answers to the ``hello``
handshake and what a coordinator demands of every host before
dispatching work: protocol version, workload-code version and the lake
cell format must all match, because a host running different workload
code would compute *different traces* for the same cell (the digest
check at merge would catch it, but only after wasting the whole shard)
and a different cell format could never warm the coordinator's lake.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.framing import PROTOCOL_VERSION


@dataclass(frozen=True)
class HostSpec:
    """One remote host: where to dial it."""

    host: str
    port: int

    def __post_init__(self) -> None:
        if not self.host:
            raise ValueError("a host needs a non-empty name/address")
        if not (0 <= self.port <= 65535):
            raise ValueError(f"port {self.port} outside 0..65535")

    @classmethod
    def parse(cls, text: str) -> "HostSpec":
        """``"host:port"`` (IPv6 literals in brackets: ``[::1]:9091``)."""
        text = text.strip()
        host, sep, port_text = text.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"host entry {text!r} is not host:port "
                "(e.g. 127.0.0.1:9091)"
            )
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(
                f"host entry {text!r} has a non-numeric port"
            ) from None
        if host.startswith("[") and host.endswith("]"):
            host = host[1:-1]
        return cls(host=host, port=port)

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def label(self) -> str:
        """Render for logs/reports (round-trips through :meth:`parse`)."""
        host = f"[{self.host}]" if ":" in self.host else self.host
        return f"{host}:{self.port}"


def parse_hosts(text: str | None) -> tuple[HostSpec, ...]:
    """The ``REPRO_HOSTS`` / ``--hosts`` grammar: comma-separated
    ``host:port`` entries; duplicates are rejected (one pool slot per
    host — dispatch balance would silently skew otherwise)."""
    if text is None or not text.strip():
        return ()
    specs: list[HostSpec] = []
    for entry in text.split(","):
        if not entry.strip():
            continue
        spec = HostSpec.parse(entry)
        if spec in specs:
            raise ValueError(f"duplicate host entry {spec.label}")
        specs.append(spec)
    if not specs:
        raise ValueError(f"host list {text!r} names no hosts")
    return tuple(specs)


def local_capabilities() -> dict:
    """What this build answers to (and demands from) the handshake."""
    from repro.workloads.store import CELL_FORMAT, workload_code_version

    return {
        "protocol": PROTOCOL_VERSION,
        "workload_version": workload_code_version(),
        "cell_format": CELL_FORMAT,
    }


def capability_mismatch(theirs: dict) -> str | None:
    """Why *theirs* is incompatible with this build (``None`` = it is
    compatible).  Unknown extra keys are ignored — forward compatible —
    but every local capability must be present and equal."""
    if not isinstance(theirs, dict):
        return "handshake carried no capability object"
    for key, value in local_capabilities().items():
        remote = theirs.get(key)
        if remote != value:
            return (
                f"{key} mismatch (host {remote!r}, coordinator {value!r})"
            )
    return None
