"""Remote shard dispatch: the supervisor's cluster execution backend.

:class:`RemoteDispatcher` slots into
:class:`~repro.service.supervisor.ShardSupervisor` in place of forked
worker processes: each attempt ships the shard's work order to a pooled
host over the wire protocol and verifies what comes back exactly as the
spool-file path would (digest on load, then
:func:`~repro.service.shards.validate_shard_result`).  Because the
``ShardSpec``/``ShardResult`` JSON contract is unchanged, every
supervisor robustness property — per-shard deadlines, backoff retry,
reassignment, quarantine, the digest-verified merge — transfers to the
cluster without new code.  Failures classify onto the same ladder:

* **hang** — no response within the shard deadline (the host may be
  alive but stuck; it is *not* marked dead on a timeout alone);
* **host-death** — connection refused/reset or EOF: the host is marked
  dead in the pool, so the shard's retry lands on another host
  (reassignment) and the pool re-pings it later (rejoin);
* **corrupt / foreign** — the response parsed but failed the digest,
  fingerprint or cell-set checks; retried like a corrupt spool artifact;
* **no healthy hosts** — graceful degradation: the shard executes
  inline on the coordinator's own engine, serialised, so a sweep never
  fails just because the cluster did.

The lake write-back is deliberately paranoid: a host publishes candidate
``.cell`` entries beside its artifact, but the coordinator files an
entry only after recomputing the cell token *locally* and checking the
stats against the digest-verified shard result — a compromised or buggy
host can waste write-back bandwidth, never poison the lake.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json

from repro.api import env as api_env
from repro.cluster import client
from repro.cluster.framing import FrameError
from repro.cluster.hosts import parse_hosts
from repro.cluster.pool import HostPool
from repro.obs import runtime as obs_runtime
from repro.obs.runtime import obs_tracer
from repro.service.shards import (
    ShardResult,
    ShardSpec,
    validate_shard_result,
)
from repro.service.worker import execute_shard


def _normalized(stats: dict) -> str:
    """Stats as canonical JSON text (tuples/lists fold together)."""
    return json.dumps(stats, sort_keys=True, default=list)


class RemoteDispatcher:
    """Executes shard attempts on a :class:`HostPool` for a supervisor."""

    #: What the supervisor labels results produced through us.
    mode = "clustered"

    def __init__(
        self,
        pool: HostPool,
        engine,
        *,
        deadline: float | None = None,
    ) -> None:
        self.pool = pool
        #: The coordinator's engine: token verification for lake
        #: write-back, lake storage, and the inline degradation path.
        self.engine = engine
        self.deadline = (
            api_env.shard_timeout_from_env() if deadline is None
            else deadline
        )
        self.lake = engine.lake_enabled()
        self.lake_writebacks = 0
        self.lake_dropped = 0
        self.inline_shards = 0
        self._inline_lock = asyncio.Lock()

    @property
    def width(self) -> int:
        """Concurrent supervisor slots worth running: one per host, at
        least two so a retry can overlap a healthy host's work."""
        return max(2, len(self.pool.states))

    # ------------------------------------------------------------------

    async def attempt(
        self, shard: ShardSpec, attempt: int, fault: str | None
    ) -> ShardResult | tuple[str, str]:
        """One attempt at one shard on the cluster.

        Same contract as the supervisor's process path: a
        :class:`ShardResult` on success, a ``(kind, reason)`` tuple on a
        retriable failure.  *fault* travels to the remote worker, so the
        deterministic fault plane drives real remote crashes.
        """
        await self.pool.ensure_ready()
        await self.pool.maybe_refresh()
        host = self.pool.acquire()
        if host is None:
            return await self._inline(shard)
        tracer = obs_tracer()
        tracer.event(
            "host.dispatch", host=host.label, shard=shard.index,
            attempt=attempt + 1, cells=len(shard.cells),
        )
        try:
            reply = await asyncio.to_thread(
                client.submit_shard,
                host.spec,
                shard.to_dict(),
                fault=fault,
                lake=self.lake,
                timeout=self.deadline,
                connect_timeout=self.pool.connect_timeout,
            )
        except TimeoutError:
            # Must precede OSError (TimeoutError is one since 3.10): a
            # deadline miss is a hang, not proof the host is gone.
            self.pool.release(host, ok=False)
            return (
                "hang",
                f"host {host.label}: no response within "
                f"{self.deadline:g}s",
            )
        except OSError as error:
            self.pool.release(host, ok=False)
            self.pool.mark_dead(host, f"{type(error).__name__}: {error}")
            tracer.event(
                "host.failover", host=host.label, shard=shard.index,
                kind="host-death",
            )
            return (
                "host-death",
                f"host {host.label} unreachable mid-shard: {error}",
            )
        except FrameError as error:
            self.pool.release(host, ok=False)
            if error.kind in ("closed", "truncated"):
                # The connection died under us — host crash semantics.
                self.pool.mark_dead(host, f"connection {error.kind}")
                tracer.event(
                    "host.failover", host=host.label, shard=shard.index,
                    kind="host-death",
                )
                return (
                    "host-death",
                    f"host {host.label} dropped the connection "
                    f"({error.kind}): {error}",
                )
            return (
                "corrupt",
                f"host {host.label} answered an unframeable response "
                f"({error.kind}): {error}",
            )
        outcome = self._accept(shard, host.label, reply)
        self.pool.release(host, ok=isinstance(outcome, ShardResult))
        return outcome

    def _accept(
        self, shard: ShardSpec, label: str, reply: dict
    ) -> ShardResult | tuple[str, str]:
        """Verify a host's reply exactly like a spool artifact load."""
        if not reply.get("ok"):
            return (
                "corrupt",
                f"host {label} rejected the shard: "
                f"{reply.get('error', 'no reason given')}",
            )
        try:
            result = ShardResult.from_dict(reply["result"])
        except (KeyError, ValueError, TypeError) as error:
            return ("corrupt", f"host {label} artifact rejected: {error}")
        problem = validate_shard_result(shard, result)
        if problem is not None:
            kind, reason = problem
            return (kind, f"host {label}: {reason}")
        if self.lake:
            self._write_back(shard, result, reply.get("lake_cells"))
        return result

    # ------------------------------------------------------------------

    def _write_back(
        self, shard: ShardSpec, result: ShardResult, entries
    ) -> None:
        """File the host's lake entries, trusting none of them.

        For each candidate entry the coordinator recomputes the cell
        token from its *own* spec and engine (a host cannot choose the
        key) and requires the stats to match the digest-verified shard
        artifact byte-for-byte (a host cannot launder tampered stats
        past the digest check).  Anything that fails is dropped and
        counted, never written.
        """
        store = self.engine.simulator.trace_store
        if store is None or not isinstance(entries, list):
            return
        spec = shard.spec
        verified: dict[tuple[str, str, int], object] = {
            (cell.benchmark, cell.mechanism, cell.seed): cell
            for cell in result.cells
        }
        # (benchmark, seed, locally-computed token) -> verified cell.
        expected: dict[tuple[str, int, str], object] = {}
        for benchmark, mech_index, seed in shard.cells:
            mechanism = spec.mechanisms[mech_index]
            cell = verified.get((benchmark, mechanism.name, seed))
            if cell is None:
                continue
            token = self.engine.cell_token(
                mechanism, spec.window.warmup, spec.window.measure,
                spec.sampling,
            )
            expected[(benchmark, seed, token)] = cell
        written = 0
        dropped = 0
        for entry in entries:
            if not isinstance(entry, dict):
                dropped += 1
                continue
            key = (
                entry.get("benchmark"), entry.get("seed"),
                entry.get("token"),
            )
            cell = expected.get(key)
            stats = entry.get("stats")
            if cell is None or not isinstance(stats, dict):
                dropped += 1
                continue
            if _normalized(stats) != _normalized(
                dataclasses.asdict(cell.stats)
            ):
                dropped += 1
                continue
            meta = entry.get("meta")
            store.save_cell(
                stats, entry["benchmark"], entry["seed"], entry["token"],
                meta=meta if isinstance(meta, dict) else None,
            )
            written += 1
        self.lake_writebacks += written
        self.lake_dropped += dropped
        if written or dropped:
            obs_tracer().event(
                "host.lake", shard=shard.index, written=written,
                dropped=dropped,
            )

    # ------------------------------------------------------------------

    async def _inline(
        self, shard: ShardSpec
    ) -> ShardResult | tuple[str, str]:
        """No healthy host: execute on the coordinator's own engine.

        Serialised (the engine is not safe for concurrent threads) and
        fault-free, mirroring the supervisor's spawn-failure degradation
        — injected faults describe worker/host failures, and here there
        is no worker left to fail.
        """
        async with self._inline_lock:
            obs_tracer().event(
                "host.failover", host="(inline)", shard=shard.index,
                kind="no-hosts",
            )
            self.inline_shards += 1
            try:
                return await asyncio.to_thread(
                    execute_shard, shard, self.engine
                )
            except Exception as error:  # noqa: BLE001 - retry ladder
                return (
                    "spawn",
                    "no healthy cluster host and inline execution "
                    f"failed: {error}",
                )


# ---------------------------------------------------------------------------
# Front door
# ---------------------------------------------------------------------------


def run_clustered(
    spec,
    hosts=None,
    shards: int | None = None,
    *,
    session=None,
    supervisor=None,
    connect_timeout: float | None = None,
):
    """Execute *spec* across a host cluster; the coordinator front door.

    *hosts* is a host-list string (``"a:9091,b:9091"``), a sequence of
    :class:`~repro.cluster.hosts.HostSpec`, or ``None`` to read
    ``REPRO_HOSTS``.  Shard planning, retry, reassignment, quarantine
    and the digest-verified merge are all the supervisor's; this wires a
    :class:`RemoteDispatcher` into it and attaches the pool's per-host
    report to the returned
    :class:`~repro.service.supervisor.ShardedSweepResult`.
    """
    from repro.api.session import Session
    from repro.service.supervisor import ShardSupervisor

    if hosts is None:
        hosts = api_env.hosts_from_env()
    specs = parse_hosts(hosts) if isinstance(hosts, str) or hosts is None \
        else tuple(hosts)
    if not specs:
        raise ValueError(
            "run_clustered needs hosts (pass hosts=... or set REPRO_HOSTS)"
        )
    if session is None:
        session = Session.for_spec(spec)
    pool = HostPool(specs, connect_timeout=connect_timeout)
    dispatcher = RemoteDispatcher(pool, session.engine)
    if supervisor is None:
        supervisor = ShardSupervisor(dispatcher=dispatcher)
    else:
        supervisor.dispatcher = dispatcher
    if shards is None:
        shards = spec.shards if spec.shards > 1 else max(2, len(specs))
    with obs_runtime.activated(spec.obs):
        outcome = supervisor.run(spec, shards=shards)
        obs_tracer().event(
            "host.merge", mode=outcome.mode, complete=outcome.complete,
            hosts=len(specs),
            lake_writebacks=dispatcher.lake_writebacks,
        )
    outcome.host_reports = pool.report()
    return outcome
