"""Cross-host sweep cluster (DESIGN.md §15).

One ``repro sweep`` driving many ``repro serve --tcp`` hosts:

* :mod:`repro.cluster.framing` — the newline-JSON wire protocol shared
  by the Unix-socket and TCP listeners (length/limit enforcement,
  structured frame errors);
* :mod:`repro.cluster.client` — blocking dial/send/receive with
  connect timeouts and bounded ECONNREFUSED/EOF retry;
* :mod:`repro.cluster.hosts` — ``HostSpec`` / ``REPRO_HOSTS`` parsing
  and the capability handshake contract;
* :mod:`repro.cluster.pool` — health-checked host pool (handshake,
  periodic re-ping, dead-host bookkeeping);
* :mod:`repro.cluster.dispatch` — the ``RemoteDispatcher`` the
  :class:`~repro.service.supervisor.ShardSupervisor` uses in place of
  forked workers, plus digest-verified lake write-back;
* :mod:`repro.cluster.smoke` — the loopback-cluster CI gate.
"""

from repro.cluster.framing import (  # noqa: F401
    PROTOCOL_VERSION,
    STREAM_LIMIT,
    FrameError,
)
from repro.cluster.hosts import HostSpec, parse_hosts  # noqa: F401
from repro.cluster.pool import HostPool, HostState  # noqa: F401
from repro.cluster.dispatch import (  # noqa: F401
    RemoteDispatcher,
    run_clustered,
)
