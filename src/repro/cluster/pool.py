"""Health-checked host pool: handshake, dispatch balance, failover state.

The pool owns *who may receive work*.  Before any shard is dispatched,
every configured host is pinged with the ``hello`` handshake and sorted
into one of three buckets:

* **alive** — reachable and capability-compatible (protocol version,
  workload-code version, lake cell format all match the coordinator's);
* **rejected** — reachable but *incompatible*: a host running different
  workload code would compute different traces for the same cells, so it
  is excluded for the whole run and its shards route elsewhere;
* **dead** — unreachable.  Dead hosts are re-pinged periodically
  (:meth:`HostPool.maybe_refresh`), so a restarted host rejoins a long
  sweep; rejected hosts stay rejected — a version mismatch does not heal
  without a redeploy.

Dispatch picks the alive host with the fewest in-flight shards (ties by
configuration order), which keeps a two-host pool balanced without any
coordination beyond the coordinator's own bookkeeping.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.api import env as api_env
from repro.cluster import client
from repro.cluster.framing import FrameError
from repro.cluster.hosts import HostSpec, capability_mismatch
from repro.obs.runtime import obs_tracer


@dataclass
class HostState:
    """One host's pool bookkeeping."""

    spec: HostSpec
    status: str = "unknown"  # unknown | alive | dead | rejected
    reason: str = ""
    capabilities: dict = field(default_factory=dict)
    inflight: int = 0
    dispatched: int = 0
    failures: int = 0

    @property
    def label(self) -> str:
        return self.spec.label

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "reason": self.reason,
            "dispatched": self.dispatched,
            "failures": self.failures,
        }


class HostPool:
    """The coordinator's view of its remote ``repro serve`` hosts."""

    def __init__(
        self,
        hosts,
        *,
        connect_timeout: float | None = None,
        handshake_timeout: float = 30.0,
        recheck_interval: float = 5.0,
    ) -> None:
        specs = tuple(hosts)
        if not specs:
            raise ValueError("a host pool needs at least one host")
        self.states = [HostState(spec) for spec in specs]
        self.connect_timeout = (
            api_env.connect_timeout_from_env()
            if connect_timeout is None else connect_timeout
        )
        self.handshake_timeout = handshake_timeout
        #: How long a dead host stays unpinged before the next dispatch
        #: re-checks it (the "periodic health-check" cadence).
        self.recheck_interval = recheck_interval
        self._ready = False
        self._last_check = 0.0
        self._refreshing: asyncio.Lock | None = None

    # ------------------------------------------------------------------
    # Handshake and health
    # ------------------------------------------------------------------

    def _check_blocking(self, state: HostState) -> None:
        """One handshake round trip; classifies the host in place."""
        try:
            capabilities = client.hello(
                state.spec,
                timeout=self.handshake_timeout,
                connect_timeout=self.connect_timeout,
            )
        except (OSError, FrameError) as error:
            state.status = "dead"
            state.reason = f"{type(error).__name__}: {error}"
        else:
            problem = capability_mismatch(capabilities)
            if problem is None:
                state.status = "alive"
                state.reason = ""
                state.capabilities = capabilities
            else:
                state.status = "rejected"
                state.reason = problem
        obs_tracer().event(
            "host.connect", host=state.label, status=state.status,
            reason=state.reason,
        )

    async def _check(self, state: HostState) -> None:
        await asyncio.to_thread(self._check_blocking, state)

    async def refresh(self, statuses=("unknown", "dead")) -> None:
        """Ping every host whose status is in *statuses*, concurrently.

        Rejected hosts are deliberately not in the default: an
        incompatible host stays excluded for the whole run.
        """
        lock = self._refreshing
        if lock is None:
            lock = self._refreshing = asyncio.Lock()
        async with lock:
            targets = [s for s in self.states if s.status in statuses]
            if targets:
                await asyncio.gather(*(self._check(s) for s in targets))
            self._last_check = asyncio.get_running_loop().time()
            self._ready = True

    async def ensure_ready(self) -> None:
        """First-use handshake of the whole pool (idempotent)."""
        if not self._ready:
            await self.refresh(statuses=("unknown",))

    async def maybe_refresh(self) -> None:
        """Re-ping dead hosts when the recheck interval has elapsed —
        how a restarted host rejoins a long-running sweep."""
        if not any(state.status == "dead" for state in self.states):
            return
        now = asyncio.get_running_loop().time()
        if now - self._last_check < self.recheck_interval:
            return
        await self.refresh(statuses=("dead",))

    # ------------------------------------------------------------------
    # Dispatch bookkeeping
    # ------------------------------------------------------------------

    @property
    def alive(self) -> list[HostState]:
        return [state for state in self.states if state.status == "alive"]

    def acquire(self) -> HostState | None:
        """The least-loaded alive host (``None`` = nobody can serve)."""
        candidates = self.alive
        if not candidates:
            return None
        state = min(candidates, key=lambda s: s.inflight)
        state.inflight += 1
        return state

    def release(self, state: HostState, ok: bool) -> None:
        state.inflight = max(0, state.inflight - 1)
        state.dispatched += 1
        if not ok:
            state.failures += 1

    def mark_dead(self, state: HostState, reason: str) -> None:
        state.status = "dead"
        state.reason = reason

    # ------------------------------------------------------------------

    def report(self) -> dict[str, dict]:
        """Per-host summary (status, dispatch/failure counts) keyed by
        host label — travels on the clustered result."""
        return {state.label: state.to_dict() for state in self.states}
