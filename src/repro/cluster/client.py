"""Blocking protocol client: dial, one request, one response, retry.

:func:`call` is the transport every synchronous client shares — the
``repro serve`` sweep client (:func:`repro.service.server.request`), the
host pool's handshake ping and the remote dispatcher's shard submission.
It owns the failure policy:

* **connect timeout** — dialing is bounded separately from request I/O
  (``REPRO_CONNECT_TIMEOUT``); a host that cannot even accept within it
  is unreachable, not slow;
* **bounded retry** — ``ECONNREFUSED`` / a missing socket file / EOF
  before any response byte are what a racing server restart looks like,
  so they retry with exponential backoff up to *retries* times instead
  of failing the whole attempt.  Timeouts and mid-response truncation
  never retry here: the caller (supervisor/dispatcher) owns those
  policies per shard.
"""

from __future__ import annotations

import time

from repro.api import env as api_env
from repro.cluster import framing
from repro.cluster.framing import FrameError

#: Failure classes a racing server restart produces; safe to redial.
_RETRIABLE_OS = (ConnectionRefusedError, ConnectionResetError,
                 FileNotFoundError)


def call(
    address,
    message: dict,
    *,
    timeout: float = 600.0,
    connect_timeout: float | None = None,
    retries: int = 0,
    backoff: float = 0.05,
    backoff_cap: float = 1.0,
) -> dict:
    """Send *message* to *address* and return the decoded response.

    *address* is anything :func:`repro.cluster.framing.connect` accepts
    (Unix-socket path, ``(host, port)``, :class:`HostSpec`).  Raises
    ``OSError``/``TimeoutError`` when the server is unreachable and
    :class:`FrameError` when the response cannot be framed; with
    ``retries > 0``, connection-refused and EOF-before-response redial
    with exponential backoff first.
    """
    if connect_timeout is None:
        connect_timeout = api_env.connect_timeout_from_env()
    attempt = 0
    while True:
        try:
            sock = framing.connect(
                address, connect_timeout=connect_timeout, timeout=timeout
            )
            try:
                framing.send_frame(sock, message)
                return framing.recv_frame(sock)
            finally:
                sock.close()
        except _RETRIABLE_OS:
            if attempt >= retries:
                raise
        except FrameError as error:
            if error.kind != "closed" or attempt >= retries:
                raise
        time.sleep(min(backoff_cap, backoff * (2 ** attempt)))
        attempt += 1


def hello(
    address,
    *,
    timeout: float = 30.0,
    connect_timeout: float | None = None,
) -> dict:
    """The handshake ping: the host's capability object.

    Raises :class:`FrameError` when the host answers ``ok: false`` or
    without a ``hello`` section (it speaks *something*, but not this
    protocol).
    """
    reply = call(
        address, {"op": "hello"},
        timeout=timeout, connect_timeout=connect_timeout,
    )
    if not reply.get("ok") or not isinstance(reply.get("hello"), dict):
        raise FrameError(
            "malformed",
            f"handshake rejected: {reply.get('error', 'no hello section')}",
        )
    return reply["hello"]


def submit_shard(
    address,
    shard_payload: dict,
    *,
    fault: str | None = None,
    lake: bool = False,
    timeout: float = 600.0,
    connect_timeout: float | None = None,
) -> dict:
    """Submit one serialised shard work order; the raw response comes
    back for the dispatcher to verify (digest, fingerprint, cell set).

    *fault* rides along for the deterministic fault plane — the remote
    worker honours it exactly like a forked worker would, which is what
    lets the loopback CI gate crash a real remote host on purpose.
    """
    message: dict = {"op": "shard", "shard": shard_payload}
    if fault is not None:
        message["fault"] = fault
    if lake:
        message["lake"] = True
    return call(
        address, message, timeout=timeout, connect_timeout=connect_timeout,
    )
