"""RSEP core: hashing, pairing, sharing, validation, the RSEP and VP units."""

from repro.core.ddt import DistanceDependencyTable
from repro.core.fifo_history import FifoHistory
from repro.core.hashing import HashRegisterFile, hash_collision_rate
from repro.core.rsep import RsepConfig, RsepStats, RsepUnit
from repro.core.sharing import ProducerWindow
from repro.core.validation import ValidationMode, ValidationQueue
from repro.core.vp_engine import VpConfig, VpEngine, VpStats

__all__ = [
    "DistanceDependencyTable",
    "FifoHistory",
    "HashRegisterFile",
    "ProducerWindow",
    "RsepConfig",
    "RsepStats",
    "RsepUnit",
    "ValidationMode",
    "ValidationQueue",
    "VpConfig",
    "VpEngine",
    "VpStats",
    "hash_collision_rate",
]
