"""Data Dependency Table pairing (§IV.B.1, after Sha et al. [10]).

The DDT alternative indexes a table *by result hash*; each entry holds the
commit sequence number of the last producer of that hash.  A committing
instruction reads the entry to compute its IDist and then overwrites it
with its own CSN.

Two structural weaknesses the paper points out (and the ablation bench
reproduces):

* indexed by value hash, it cannot be banked by PC, so multi-commit
  cycles need a heavily multi-ported table (impractical — §IV.B.1);
* it can only pair with the *most recent* older producer of the hash, so
  per-chance matches (hash noise, transient equalities) displace the
  stable pair the predictor is trying to learn (§VI.A.2).
"""

from __future__ import annotations

from repro.common.bitops import DEFAULT_HASH_BITS
from repro.common.storage import StorageReport


class DistanceDependencyTable:
    """Hash-indexed last-producer table."""

    def __init__(
        self,
        log2_entries: int = 14,
        hash_bits: int = DEFAULT_HASH_BITS,
        csn_bits: int = 10,
    ) -> None:
        entries = 1 << log2_entries
        self.hash_bits = hash_bits
        self.csn_bits = csn_bits
        self._mask = entries - 1
        self._last_index: list[int] = [-1] * entries
        self._count = 0
        self.searches = 0
        self.matches = 0

    @property
    def producer_count(self) -> int:
        return self._count

    def push(self, value_hash: int) -> int:
        """Record one committed producer; returns its producer index."""
        index = self._count
        self._count += 1
        self._last_index[value_hash & self._mask] = index
        return index

    def push_group(self, hashes) -> None:
        """Batch form of ``push`` (interface parity with FifoHistory)."""
        index = self._count
        last_index = self._last_index
        mask = self._mask
        for value_hash in hashes:
            last_index[value_hash & mask] = index
            index += 1
        self._count = index

    def find(
        self,
        value_hash: int,
        max_distance: int,
        preferred_distance: int | None = None,
    ) -> int | None:
        """IDist to the most recent producer of this hash, if in range.

        ``preferred_distance`` is accepted for interface compatibility with
        :class:`~repro.core.fifo_history.FifoHistory` but cannot be
        honoured: the DDT only remembers the most recent producer — that is
        exactly its weakness.
        """
        self.searches += 1
        last = self._last_index[value_hash & self._mask]
        if last < 0:
            return None
        distance = self._count - last
        if distance <= 0 or distance > max_distance:
            return None
        self.matches += 1
        return distance

    def find_push_group(self, hashes, prefs, max_distance: int) -> list:
        """Fused search+push pass (interface parity with FifoHistory).

        ``prefs[i] < 0`` means push-only; otherwise search first (the DDT
        cannot honour a preferred distance — see :meth:`find`).
        """
        results = []
        for value_hash, pref in zip(hashes, prefs):
            results.append(
                self.find(value_hash, max_distance, pref if pref > 0 else None)
                if pref >= 0
                else None
            )
            self.push(value_hash)
        return results

    def record_commit_group(self, eligible_in_group: int) -> None:
        """Interface parity with FifoHistory; the DDT has no comparators."""

    def storage_report(self) -> StorageReport:
        report = StorageReport("Data Dependency Table")
        report.add(
            f"{self._mask + 1} entries × {self.csn_bits}b CSN",
            (self._mask + 1) * self.csn_bits,
        )
        return report
