"""Value prediction engine: D-VTAGE behind the same interface style as RSEP.

Wraps the predictor with the commit-time validation bookkeeping of [7]:
predict at rename, write the predicted value into the freshly allocated
physical register (dependents may issue immediately), validate at commit,
full squash on misprediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.history import GlobalHistory, PathHistory
from repro.common.rng import XorShift64
from repro.common.storage import StorageReport
from repro.predictors.confidence import ConfidenceScale, SCALED
from repro.predictors.dvtage import DVtageConfig, DVtagePredictor, ValuePrediction


@dataclass(frozen=True)
class VpConfig:
    """Value prediction configuration (paper: [6]'s D-VTAGE)."""

    dvtage: DVtageConfig = field(default_factory=DVtageConfig)


@dataclass
class VpStats:
    lookups: int = 0
    confident: int = 0
    used: int = 0
    committed_correct: int = 0
    committed_wrong: int = 0

    @property
    def accuracy(self) -> float:
        total = self.committed_correct + self.committed_wrong
        return self.committed_correct / total if total else 1.0


class VpEngine:
    """D-VTAGE with stats and squash hooks."""

    def __init__(
        self,
        config: VpConfig,
        history: GlobalHistory,
        path: PathHistory,
        rng: XorShift64,
        scale: ConfidenceScale = SCALED,
    ) -> None:
        self.config = config
        self.predictor = DVtagePredictor(
            config.dvtage, history, path, rng.fork(0x7A6E), scale
        )
        self.stats = VpStats()

    def lookup(self, pc: int) -> ValuePrediction:
        self.stats.lookups += 1
        prediction = self.predictor.predict(pc)
        if prediction.predicted():
            self.stats.confident += 1
        return prediction

    def train(self, prediction: ValuePrediction, actual: int) -> None:
        self.predictor.train(prediction, actual)

    def release(self, prediction: ValuePrediction) -> None:
        """Squash path: retire the in-flight occurrence without training."""
        self.predictor.release(prediction)

    def on_commit_used(self, correct: bool) -> None:
        if correct:
            self.stats.committed_correct += 1
        else:
            self.stats.committed_wrong += 1

    def on_mispredict(self, prediction: ValuePrediction) -> None:
        self.predictor.on_mispredict(prediction)

    def storage_report(self) -> StorageReport:
        return self.predictor.storage_report()
