"""The RSEP unit: distance prediction, pairing, sampling and training.

This is the glue of Fig. 3's orange boxes.  At rename the pipeline asks for
an IDist prediction; at commit the pipeline hands over each cycle's group of
committed result producers and the unit drives the FIFO-history (or DDT)
pairing, the sampling policy of §IV.B.3 and predictor training.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.history import GlobalHistory, PathHistory
from repro.common.rng import XorShift64
from repro.common.storage import StorageReport
from repro.core.ddt import DistanceDependencyTable
from repro.core.fifo_history import FifoHistory
from repro.core.hashing import HashRegisterFile
from repro.core.validation import ValidationMode
from repro.predictors.confidence import ConfidenceScale, SCALED
from repro.predictors.distance import (
    DistancePrediction,
    DistancePredictor,
    DistancePredictorConfig,
)
from repro.predictors.gshare_distance import (
    GshareDistanceConfig,
    GshareDistancePredictor,
)


@dataclass(frozen=True)
class RsepConfig:
    """Everything that parameterises RSEP.

    ``ideal()`` matches the Fig. 4 configuration: large predictor, FIFO
    history much deeper than the ROB, free validation, no sampling.
    ``realistic()`` matches §VI.B: 10.1KB predictor, 128-entry history,
    24-entry ISRB, sampling with start-train threshold 63, validation by
    re-issue to any FU.
    """

    predictor_kind: str = "tage"  # "tage" | "gshare"
    predictor: DistancePredictorConfig = field(
        default_factory=DistancePredictorConfig.ideal
    )
    gshare: GshareDistanceConfig = field(default_factory=GshareDistanceConfig)
    pairing: str = "fifo"  # "fifo" | "ddt"
    history_entries: int = 4096  # FIFO depth; ideal uses >> ROB
    ddt_log2_entries: int = 14
    hash_bits: int = 14
    sampling: bool = False
    validation: ValidationMode = ValidationMode.IDEAL
    isrb_entries: int = 24
    isrb_counter_bits: int = 6
    move_elimination: bool = True  # the paper always pairs them

    @classmethod
    def ideal(cls) -> "RsepConfig":
        return cls()

    @classmethod
    def realistic(cls, start_train_threshold: int = 63) -> "RsepConfig":
        return cls(
            predictor=replace(
                DistancePredictorConfig.realistic(),
                start_train_threshold=start_train_threshold,
            ),
            history_entries=128,
            sampling=True,
            validation=ValidationMode.REISSUE_ANY_FU,
        )


@dataclass
class RsepStats:
    """Rename- and commit-side accounting for the RSEP unit."""

    lookups: int = 0
    confident: int = 0
    used: int = 0
    out_of_window: int = 0
    class_mismatch: int = 0
    isrb_rejected: int = 0
    zero_reg_shares: int = 0
    committed_correct: int = 0
    committed_wrong: int = 0

    @property
    def accuracy(self) -> float:
        total = self.committed_correct + self.committed_wrong
        return self.committed_correct / total if total else 1.0


class RsepUnit:
    """Prediction + pairing + training orchestration."""

    def __init__(
        self,
        config: RsepConfig,
        history: GlobalHistory,
        path: PathHistory,
        rng: XorShift64,
        scale: ConfidenceScale = SCALED,
    ) -> None:
        self.config = config
        self._rng = rng.fork(0x5EB)
        if config.predictor_kind == "tage":
            self.predictor = DistancePredictor(
                config.predictor, history, path, rng.fork(0xD157), scale
            )
        elif config.predictor_kind == "gshare":
            self.predictor = GshareDistancePredictor(
                config.gshare, history, rng.fork(0xD157), scale
            )
        else:
            raise ValueError(f"unknown predictor kind {config.predictor_kind!r}")
        if config.pairing == "fifo":
            self.pairing = FifoHistory(config.history_entries, config.hash_bits)
        elif config.pairing == "ddt":
            self.pairing = DistanceDependencyTable(
                config.ddt_log2_entries, config.hash_bits
            )
        else:
            raise ValueError(f"unknown pairing {config.pairing!r}")
        self.hrf = HashRegisterFile(hash_bits=config.hash_bits)
        self._hash_bits = config.hash_bits
        self._hash_mask = (1 << config.hash_bits) - 1
        self._fold_group = self._build_fold_group(config.hash_bits)
        self.stats = RsepStats()

    @staticmethod
    def _build_fold_group(hash_bits: int):
        """Unrolled ``fold_hash`` over a commit group's results.

        The per-value chunk loop (XOR ``hash_bits``-wide slices of a
        64-bit value) is flattened into one masked XOR expression —
        results are already masked to 64 bits by the interpreter, so
        ``ceil(64 / hash_bits)`` shifted terms cover every chunk — and
        the whole group is hashed in a single comprehension, the software
        analogue of the parallel commit-side hash ports.  Cross-checked
        against ``repro.common.bitops.fold_hash`` in the determinism
        tests.
        """
        shifts = range(hash_bits, 64, hash_bits)
        expression = "(v := op.d.result)" + "".join(
            f" ^ (v >> {shift})" for shift in shifts
        )
        namespace: dict = {}
        exec(  # noqa: S102 - static template, no external input
            "def fold_group(ops):\n"
            "    return [({expr}) & {mask} for op in ops]".format(
                expr=expression, mask=(1 << hash_bits) - 1
            ),
            namespace,
        )
        return namespace["fold_group"]

    # ------------------------------------------------------------------
    # Rename side
    # ------------------------------------------------------------------

    def lookup(self, pc: int) -> DistancePrediction:
        """Distance prediction for the instruction at *pc*."""
        self.stats.lookups += 1
        prediction = self.predictor.predict(pc)
        if prediction.use_pred:
            self.stats.confident += 1
        return prediction

    @property
    def max_distance(self) -> int:
        if self.config.predictor_kind == "tage":
            return self.config.predictor.max_distance
        return self.config.gshare.max_distance

    # ------------------------------------------------------------------
    # Commit side
    # ------------------------------------------------------------------

    def observe_commit_group(self, producers: list) -> None:
        """Process one cycle's committed result producers, oldest first.

        Implements §IV.B.2/§IV.B.3: every producer pushes its result hash;
        without sampling every looked-up producer searches the history,
        with sampling a single randomly chosen one does and the *likely
        candidates* train through the validation comparison instead.

        The group is processed batch-wise, mirroring the parallel
        comparators of §IV.D.2: all result hashes are computed up front
        (one unrolled fold expression per value) and history pushes run
        through ``push_group``.  History searches must observe exactly the
        producers older than the searching instruction, so pushes are
        flushed up to each search point; predictor trainings keep their
        original producer order (pushes never touch predictor state, so
        deferring them past a training is behaviour-preserving).
        """
        if not producers:
            return
        pairing = self.pairing
        pairing.record_commit_group(len(producers))

        sampling = self.config.sampling
        selected = None
        if sampling:
            candidates = [op for op in producers if op.dist_pred is not None]
            if candidates:
                selected = candidates[self._rng.next_below(len(candidates))]

        hashes = self._fold_group(producers)
        self.hrf.reads += len(producers)  # one commit-side read each
        predictor = self.predictor
        max_distance = self.max_distance

        if sampling:
            # At most one history search per group: push everything older
            # than the selected producer, search, then push the rest.
            pushed = 0
            for position, op in enumerate(producers):
                prediction = op.dist_pred
                if prediction is None:
                    continue
                if op is selected:
                    if position > pushed:
                        pairing.push_group(hashes[pushed:position])
                        pushed = position
                    observed = pairing.find(
                        hashes[position], max_distance, None
                    )
                    predictor.train_from_pairing(prediction, observed)
                elif op.likely_candidate and op.producer is not None:
                    predictor.train_from_validation(
                        prediction, op.d.result == op.producer.d.result
                    )
            pairing.push_group(hashes[pushed:])
            return

        # No sampling: every looked-up producer searches the history as
        # of its own commit point.  The searches and pushes run as one
        # fused pass inside the pairing structure; trainings follow in
        # producer order (they touch predictor state only, never the
        # pairing, so hoisting them out of the pass is order-safe).
        prefs = [
            -1 if op.dist_pred is None else (op.dist_pred.distance or 0)
            for op in producers
        ]
        observed_list = pairing.find_push_group(hashes, prefs, max_distance)
        train = predictor.train_from_pairing
        for op, observed in zip(producers, observed_list):
            prediction = op.dist_pred
            if prediction is not None:
                train(prediction, observed)

    def on_commit_used(self, op, correct: bool) -> None:
        """Accounting for a committed (or squashing) confident prediction."""
        if correct:
            self.stats.committed_correct += 1
        else:
            self.stats.committed_wrong += 1

    def on_mispredict(self, prediction: DistancePrediction) -> None:
        self.predictor.on_mispredict(prediction)

    # ------------------------------------------------------------------

    def storage_report(self) -> StorageReport:
        """Total RSEP storage (the ~10.8KB accounting of §VI.B)."""
        report = StorageReport("RSEP total")
        for sub in (
            self.predictor.storage_report(),
            self.pairing.storage_report(),
        ):
            report.items.extend(sub.items)
        # Dedicated FIFO propagating predicted distances to Commit so the
        # history search can privilege them (§VI.B: 224B for 224 in-flight
        # instructions × 8-bit distance).
        report.add("predicted-distance FIFO (224 × 8b)", 224 * 8)
        return report
