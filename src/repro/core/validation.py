"""Equality-prediction validation models (paper §IV.F, measured in Fig. 6).

A distance-predicted instruction does not own a destination register, so
its result must be compared against the shared register.  The paper's
implementation re-issues the predicted instruction as a compare µ-op that
catches the result on the bypass network.  Three cost models:

* ``IDEAL`` — validation is free (the potential-measuring mode of Fig. 4);
* ``REISSUE_LOCK_FU`` — the compare must issue to the same port class as
  the instruction it validates (load validations steal load ports — the
  scheme that collapses load-bound benchmarks in Fig. 6);
* ``REISSUE_ANY_FU`` — the compare may issue anywhere via the global
  bypass network, non-load ports first (the recommended scheme).

Validation µ-ops are prioritised by the picker and become eligible only
when the validated instruction's result is available (its completion
cycle), which generalises the fixed/variable-latency handling of §IV.F.1a.
"""

from __future__ import annotations

from enum import Enum

from repro.backend.fu import IssuePorts


class ValidationMode(Enum):
    """How validation µ-ops consume pipeline resources."""

    IDEAL = "ideal"
    REISSUE_LOCK_FU = "reissue_lock_fu"
    REISSUE_ANY_FU = "reissue_any_fu"


class ValidationQueue:
    """Pending validation µ-ops awaiting issue."""

    def __init__(self, mode: ValidationMode) -> None:
        self.mode = mode
        self._pending: list = []  # ops, kept oldest-first
        self.issued = 0
        self.delayed_cycles = 0

    def __len__(self) -> int:
        return len(self._pending)

    def request(self, op) -> None:
        """Register a validation µ-op for *op*.

        In IDEAL mode validation completes with the instruction itself.
        Otherwise the µ-op becomes ready at the instruction's completion
        (its operand arrives on the bypass network) and must win an issue
        port; the compare takes one cycle.
        """
        if self.mode is ValidationMode.IDEAL:
            op.validation_done_cycle = op.complete_cycle
            return
        self._pending.append(op)

    def issue_cycle(self, cycle: int, ports: IssuePorts) -> list:
        """Issue ready validation µ-ops at *cycle* (picker priority).

        Returns the ops whose validation issued.  Must be called before
        normal instruction selection so validations claim ports first
        (§IV.F.1).
        """
        if self.mode is ValidationMode.IDEAL or not self._pending:
            return []
        lock = self.mode is ValidationMode.REISSUE_LOCK_FU
        issued = []
        for op in self._pending:
            if op.complete_cycle is None or op.complete_cycle > cycle:
                continue
            fu = op.d.fu  # already a FuClass (precomputed at trace build)
            if not ports.try_issue_validation(fu, cycle, lock):
                break  # ports exhausted this cycle; keep priority order
            op.validation_done_cycle = cycle + 1
            self.delayed_cycles += cycle - op.complete_cycle
            issued.append(op)
        if issued:
            self.issued += len(issued)
            issued_ids = set(map(id, issued))
            self._pending = [
                op for op in self._pending if id(op) not in issued_ids
            ]
        return issued

    def squash(self, min_seq: int) -> None:
        """Drop validation requests of squashed instructions."""
        self._pending = [op for op in self._pending if op.d.seq < min_seq]
