"""Equality-prediction validation models (paper §IV.F, measured in Fig. 6).

A distance-predicted instruction does not own a destination register, so
its result must be compared against the shared register.  The paper's
implementation re-issues the predicted instruction as a compare µ-op that
catches the result on the bypass network.  Three cost models:

* ``IDEAL`` — validation is free (the potential-measuring mode of Fig. 4);
* ``REISSUE_LOCK_FU`` — the compare must issue to the same port class as
  the instruction it validates (load validations steal load ports — the
  scheme that collapses load-bound benchmarks in Fig. 6);
* ``REISSUE_ANY_FU`` — the compare may issue anywhere via the global
  bypass network, non-load ports first (the recommended scheme).

Validation µ-ops are prioritised by the picker and become eligible only
when the validated instruction's result is available (its completion
cycle), which generalises the fixed/variable-latency handling of §IV.F.1a.

The queue is *indexed by completion cycle*, mirroring the scheduler's
wakeup map: a requested µ-op is parked in a bucket keyed by the cycle its
operand arrives, and the per-cycle issue pass touches only µ-ops that are
actually eligible (due buckets drained into an eligible list) instead of
scanning every pending entry.  Request order is preserved across buckets
with a monotone ticket so the picker's priority — and therefore every
statistic — is identical to the linear-scan implementation.
"""

from __future__ import annotations

from enum import Enum
from heapq import heappop, heappush

from repro.backend.fu import IssuePorts


class ValidationMode(Enum):
    """How validation µ-ops consume pipeline resources."""

    IDEAL = "ideal"
    REISSUE_LOCK_FU = "reissue_lock_fu"
    REISSUE_ANY_FU = "reissue_any_fu"


class ValidationQueue:
    """Pending validation µ-ops, bucketed by operand-arrival cycle."""

    def __init__(self, mode: ValidationMode) -> None:
        self.mode = mode
        # (ticket, op) pairs whose completion cycle has passed, kept in
        # request order; tickets make the order total across buckets.
        self._eligible: list = []
        # completion cycle -> [(ticket, op), ...] not yet eligible.
        self._buckets: dict[int, list] = {}
        # Min-heap of bucket keys with lazy deletion (keys may linger
        # after a squash empties their bucket).
        self._heap: list[int] = []
        self._pending_count = 0
        self._ticket = 0
        self.issued = 0
        self.delayed_cycles = 0

    def __len__(self) -> int:
        return self._pending_count

    def request(self, op) -> None:
        """Register a validation µ-op for *op*.

        In IDEAL mode validation completes with the instruction itself.
        Otherwise the µ-op becomes ready at the instruction's completion
        (its operand arrives on the bypass network) and must win an issue
        port; the compare takes one cycle.  ``op.complete_cycle`` is
        always known here — validation is requested at issue, after the
        completion cycle was assigned — which is what makes the bucket
        key available up front.
        """
        if self.mode is ValidationMode.IDEAL:
            op.validation_done_cycle = op.complete_cycle
            return
        ticket = self._ticket
        self._ticket = ticket + 1
        ready = op.complete_cycle
        bucket = self._buckets.get(ready)
        if bucket is None:
            self._buckets[ready] = [(ticket, op)]
            heappush(self._heap, ready)
        else:
            bucket.append((ticket, op))
        self._pending_count += 1

    def next_ready_cycle(self) -> int | None:
        """Earliest cycle at which a pending µ-op can issue (None if none).

        Used by the idle fast-forward: an already-eligible µ-op means
        "now" (returned as cycle 0, which never allows a skip), otherwise
        the earliest bucket key is the next event.
        """
        if self.mode is ValidationMode.IDEAL or not self._pending_count:
            return None
        if self._eligible:
            return 0
        heap = self._heap
        buckets = self._buckets
        while heap and heap[0] not in buckets:
            heappop(heap)  # stale key: bucket drained or squashed empty
        return heap[0] if heap else None

    def issue_cycle(self, cycle: int, ports: IssuePorts) -> list:
        """Issue ready validation µ-ops at *cycle* (picker priority).

        Returns the ops whose validation issued.  Must be called before
        normal instruction selection so validations claim ports first
        (§IV.F.1).  On port exhaustion the pass stops — request order is
        priority order, exactly like the linear scan.
        """
        if self.mode is ValidationMode.IDEAL or not self._pending_count:
            return []
        eligible = self._eligible
        heap = self._heap
        buckets = self._buckets
        drained = False
        while heap and heap[0] <= cycle:
            bucket = buckets.pop(heappop(heap), None)
            if bucket:
                eligible.extend(bucket)
                drained = True
        if not eligible:
            return []
        if drained and len(eligible) > 1:
            eligible.sort()  # restore request order across buckets
        lock = self.mode is ValidationMode.REISSUE_LOCK_FU
        try_issue_validation = ports.try_issue_validation
        issued = []
        taken = 0
        for ticket, op in eligible:
            # op.d.fu is already a FuClass (precomputed at trace build).
            if not try_issue_validation(op.d.fu, cycle, lock):
                break  # ports exhausted this cycle; keep priority order
            op.validation_done_cycle = cycle + 1
            self.delayed_cycles += cycle - op.complete_cycle
            issued.append(op)
            taken += 1
        if taken:
            del eligible[:taken]
            self.issued += taken
            self._pending_count -= taken
        return issued

    def squash(self, min_seq: int) -> None:
        """Drop validation requests of squashed instructions."""
        if self.mode is ValidationMode.IDEAL or not self._pending_count:
            return
        kept = [
            entry for entry in self._eligible if entry[1].d.seq < min_seq
        ]
        count = len(kept)
        self._eligible = kept
        empty_keys = []
        for key, bucket in self._buckets.items():
            kept = [entry for entry in bucket if entry[1].d.seq < min_seq]
            if kept:
                self._buckets[key] = kept
                count += len(kept)
            else:
                empty_keys.append(key)
        for key in empty_keys:
            del self._buckets[key]  # heap key removed lazily
        self._pending_count = count
