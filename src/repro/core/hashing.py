"""Result hashing and the Hash Register File (paper §IV.A, §IV.D.1).

Pairs of equal-result instructions are identified by comparing *hashes* of
results rather than full 64-bit values: mispredictions are allowed, so a
false positive merely trains a distance that validation will later reject.
The fold width is deliberately not a power of two (14 bits by default) so
that 0x0 and -1 do not collide.

The HRF mirrors the physical register file with one n-bit hash per
register: written at writeback (hash computed at the FU output, off the
critical path), read in-order at commit.  In this simulator the HRF's
*content* is derived on demand from trace ground truth; the class tracks
the structure's geometry, storage cost and port activity so the cost
argument of §IV.D.1 is reproducible.
"""

from __future__ import annotations

from repro.common.bitops import DEFAULT_HASH_BITS, fold_hash
from repro.common.storage import StorageReport, hrf_bits


class HashRegisterFile:
    """Geometry + accounting of the HRF; hashing itself is stateless."""

    def __init__(
        self,
        registers: int = 471,  # 235 INT + 235 FP + zero register
        hash_bits: int = DEFAULT_HASH_BITS,
    ) -> None:
        if registers <= 0:
            raise ValueError("HRF needs at least one register")
        self.registers = registers
        self.hash_bits = hash_bits
        self.writes = 0
        self.reads = 0

    def hash_value(self, value: int) -> int:
        """The hash written to the HRF for one result."""
        return fold_hash(value, self.hash_bits)

    def record_writeback(self) -> None:
        self.writes += 1

    def record_commit_read(self) -> None:
        self.reads += 1

    def storage_report(self) -> StorageReport:
        report = StorageReport("Hash Register File")
        report.add(
            f"{self.registers} registers × {self.hash_bits}-bit hash",
            hrf_bits(self.registers, self.hash_bits),
        )
        return report


def hash_collision_rate(values: list[int], hash_bits: int) -> float:
    """Fraction of distinct-value pairs that collide under the fold hash.

    Used by the hash-width ablation bench: wider (and non-power-of-two)
    folds produce fewer false-positive pairings.
    """
    if len(values) < 2:
        return 0.0
    collisions = 0
    pairs = 0
    hashes = [fold_hash(v, hash_bits) for v in values]
    for i in range(len(values)):
        for j in range(i + 1, len(values)):
            if values[i] == values[j]:
                continue
            pairs += 1
            if hashes[i] == hashes[j]:
                collisions += 1
    return collisions / pairs if pairs else 0.0
