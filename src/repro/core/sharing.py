"""Rename-side producer window: the ROB mirror of §IV.E.1.

With a predicted IDist, RSEP must find the physical register of the
producer sitting that many result-producing instructions back.  The paper
keeps a dedicated FIFO managed with the ROB's head and tail pointers so the
main ROB needs no extra read ports.  Because rename and commit are both
in-order, the in-flight producers always form a contiguous suffix of the
producer sequence: indexing ``window[-distance]`` either lands exactly on
the intended producer or falls off the window (the ``IDist <= ROB
occupancy`` check of Fig. 3).
"""

from __future__ import annotations

from collections import deque


class ProducerWindow:
    """FIFO of in-flight result-producing instructions, rename order."""

    def __init__(self, capacity: int = 192) -> None:
        if capacity <= 0:
            raise ValueError("window needs at least one entry")
        self.capacity = capacity
        self._window: deque = deque()
        self.out_of_window = 0

    def __len__(self) -> int:
        return len(self._window)

    def push(self, op) -> None:
        """Called when a result producer renames."""
        if len(self._window) >= self.capacity:
            # The ROB bounds in-flight producers, so this cannot happen in
            # a consistent pipeline; guard anyway.
            raise OverflowError("producer window overflow")
        self._window.append(op)

    def retire_head(self, op) -> None:
        """Called when a result producer commits (must be the oldest)."""
        if not self._window or self._window[0] is not op:
            raise ValueError("producer window commit order violated")
        self._window.popleft()

    def squash_tail(self, op) -> None:
        """Called when a result producer is squashed (must be the youngest)."""
        if not self._window or self._window[-1] is not op:
            raise ValueError("producer window squash order violated")
        self._window.pop()

    def producer_at(self, distance: int):
        """The producer *distance* result-producers back, or None.

        ``distance`` is relative to the instruction *about to be renamed*
        (distance 1 = youngest in-flight producer).
        """
        if distance <= 0 or distance > len(self._window):
            self.out_of_window += 1
            return None
        return self._window[-distance]
