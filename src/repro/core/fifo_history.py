"""Commit-side FIFO history: pairing instructions by result hash (§IV.B.2).

Each committed result-producing instruction pushes its result hash (plus
its commit sequence number among producers) into a FIFO of the last N
producers.  A committing instruction finds its IDist by comparing its hash
against the FIFO contents.  Matching can return *several* candidate
distances; following §VI.A.2, the search prefers the distance the
instruction was predicted with (propagated in a small dedicated FIFO in
hardware), which filters the noise of per-chance hash matches — the
advantage the FIFO holds over the DDT.

The hardware cost model of §IV.D.2 (comparators per commit group) is
tracked via the commit-group size histogram.
"""

from __future__ import annotations

from collections import deque

from repro.common.bitops import DEFAULT_HASH_BITS
from repro.common.storage import StorageReport, fifo_history_bits


class FifoHistory:
    """Bounded history of (hash, producer-index) with O(1) hash matching.

    Hardware performs N parallel comparisons; software keeps an index from
    hash to recent producer positions, which is behaviourally identical.
    """

    def __init__(
        self,
        entries: int = 128,
        hash_bits: int = DEFAULT_HASH_BITS,
        csn_bits: int = 10,
    ) -> None:
        if entries <= 0:
            raise ValueError("history needs at least one entry")
        self.entries = entries
        self.hash_bits = hash_bits
        self.csn_bits = csn_bits
        self._count = 0  # producers pushed so far (commit order)
        self._positions: dict[int, deque[int]] = {}
        self.searches = 0
        self.matches = 0
        self.preferred_matches = 0
        self.group_size_histogram: dict[int, int] = {}

    # ------------------------------------------------------------------

    @property
    def producer_count(self) -> int:
        return self._count

    def push(self, value_hash: int) -> int:
        """Record one committed producer; returns its producer index."""
        index = self._count
        self._count = index + 1
        positions = self._positions
        bucket = positions.get(value_hash)
        if bucket is None:
            positions[value_hash] = deque((index,))
            return index
        bucket.append(index)
        # Keep buckets trimmed so no bucket exceeds the window by much;
        # the bucket is never empty here (we just appended), so only the
        # age bound needs checking.
        oldest_live = index + 1 - self.entries
        popleft = bucket.popleft
        while bucket[0] < oldest_live:
            popleft()
        return index

    def find(
        self,
        value_hash: int,
        max_distance: int,
        preferred_distance: int | None = None,
    ) -> int | None:
        """IDist to an older producer with a matching hash, if any.

        *Distances are measured before pushing the searching instruction.*
        When the predicted distance is among the matches it is returned
        (§VI.A.2); otherwise the most recent match (smallest distance) is.
        """
        self.searches += 1
        bucket = self._positions.get(value_hash)
        if not bucket:
            return None
        limit = min(self.entries, max_distance)
        count = self._count
        best: int | None = None
        for index in reversed(bucket):
            distance = count - index
            if distance > limit:
                break
            if best is None:
                best = distance
            if preferred_distance is not None and distance == preferred_distance:
                self.matches += 1
                self.preferred_matches += 1
                return distance
        if best is not None:
            self.matches += 1
        return best

    def record_commit_group(self, eligible_in_group: int) -> None:
        """Track commit-group sizes for the comparator-count study."""
        self.group_size_histogram[eligible_in_group] = (
            self.group_size_histogram.get(eligible_in_group, 0) + 1
        )

    def comparator_sufficiency(self, comparators: int) -> float:
        """Fraction of commit groups fully served by *comparators* slots.

        Reproduces §IV.D.2: "6 (resp. 4) comparators are sufficient in more
        than 95% (resp. 70%) of the cases".
        """
        total = sum(self.group_size_histogram.values())
        if not total:
            return 1.0
        served = sum(
            count
            for size, count in self.group_size_histogram.items()
            if size <= comparators
        )
        return served / total

    # ------------------------------------------------------------------

    def storage_report(self) -> StorageReport:
        """Reproduces the 768B (256-entry) / 384B (128-entry) figures."""
        report = StorageReport("FIFO history")
        report.add(
            f"{self.entries} entries × ({self.hash_bits}b hash + "
            f"{self.csn_bits}b CSN)",
            fifo_history_bits(self.entries, self.hash_bits, self.csn_bits),
        )
        return report
