"""Commit-side FIFO history: pairing instructions by result hash (§IV.B.2).

Each committed result-producing instruction pushes its result hash (plus
its commit sequence number among producers) into a FIFO of the last N
producers.  A committing instruction finds its IDist by comparing its hash
against the FIFO contents.  Matching can return *several* candidate
distances; following §VI.A.2, the search prefers the distance the
instruction was predicted with (propagated in a small dedicated FIFO in
hardware), which filters the noise of per-chance hash matches — the
advantage the FIFO holds over the DDT.

The hardware cost model of §IV.D.2 (comparators per commit group) is
tracked via the commit-group size histogram.
"""

from __future__ import annotations

from collections import deque

from repro.common.bitops import DEFAULT_HASH_BITS
from repro.common.storage import StorageReport, fifo_history_bits


class FifoHistory:
    """Bounded history of (hash, producer-index) with O(1) hash matching.

    Hardware performs N parallel comparisons; software keeps an index from
    hash to recent producer positions, which is behaviourally identical.
    """

    def __init__(
        self,
        entries: int = 128,
        hash_bits: int = DEFAULT_HASH_BITS,
        csn_bits: int = 10,
    ) -> None:
        if entries <= 0:
            raise ValueError("history needs at least one entry")
        self.entries = entries
        self.hash_bits = hash_bits
        self.csn_bits = csn_bits
        self._count = 0  # producers pushed so far (commit order)
        self._positions: dict[int, deque[int]] = {}
        self.searches = 0
        self.matches = 0
        self.preferred_matches = 0
        self.group_size_histogram: dict[int, int] = {}

    # ------------------------------------------------------------------

    @property
    def producer_count(self) -> int:
        return self._count

    def push(self, value_hash: int) -> int:
        """Record one committed producer; returns its producer index."""
        index = self._count
        self._count = index + 1
        positions = self._positions
        bucket = positions.get(value_hash)
        if bucket is None:
            positions[value_hash] = deque((index,))
            return index
        bucket.append(index)
        # Keep buckets trimmed so no bucket exceeds the window by much;
        # the bucket is never empty here (we just appended), so only the
        # age bound needs checking.
        oldest_live = index + 1 - self.entries
        popleft = bucket.popleft
        while bucket[0] < oldest_live:
            popleft()
        return index

    def push_group(self, hashes) -> None:
        """Record one commit group's producers in a single pass.

        Equivalent to ``push`` per hash, with the counter and the
        positions dict held in locals across the group — the batch path
        the commit loop uses (§IV.D.2 performs the group's N pushes in
        parallel in hardware).
        """
        index = self._count
        positions = self._positions
        entries = self.entries
        for value_hash in hashes:
            bucket = positions.get(value_hash)
            if bucket is None:
                positions[value_hash] = deque((index,))
            else:
                bucket.append(index)
                oldest_live = index + 1 - entries
                popleft = bucket.popleft
                while bucket[0] < oldest_live:
                    popleft()
            index += 1
        self._count = index

    def find(
        self,
        value_hash: int,
        max_distance: int,
        preferred_distance: int | None = None,
    ) -> int | None:
        """IDist to an older producer with a matching hash, if any.

        *Distances are measured before pushing the searching instruction.*
        When the predicted distance is among the matches it is returned
        (§VI.A.2); otherwise the most recent match (smallest distance) is.
        """
        self.searches += 1
        bucket = self._positions.get(value_hash)
        if not bucket:
            return None
        limit = min(self.entries, max_distance)
        count = self._count
        best: int | None = None
        for index in reversed(bucket):
            distance = count - index
            if distance > limit:
                break
            if best is None:
                best = distance
            if preferred_distance is not None and distance == preferred_distance:
                self.matches += 1
                self.preferred_matches += 1
                return distance
        if best is not None:
            self.matches += 1
        return best

    def find_push_group(
        self, hashes, prefs, max_distance: int
    ) -> list:
        """One fused pass over a commit group: search, then push, per op.

        ``prefs[i]`` encodes the search request for ``hashes[i]``:
        ``-1`` — push only (no search); ``0`` — search without a
        preferred distance; ``> 0`` — search preferring that distance
        (§VI.A.2).  Returns one entry per op (``None`` where no search
        was requested or nothing matched).  Search-then-push order per
        op, and therefore every distance and every counter, is identical
        to interleaved :meth:`find`/:meth:`push` calls; the batch merely
        keeps the window state in locals across the group.
        """
        positions = self._positions
        entries = self.entries
        count = self._count
        limit = min(entries, max_distance)
        searches = 0
        matches = 0
        preferred_matches = 0
        results = []
        append = results.append
        for value_hash, pref in zip(hashes, prefs):
            # ---- search (distances measured before this op's push) ----
            if pref < 0:
                append(None)
            else:
                searches += 1
                observed = None
                bucket = positions.get(value_hash)
                if bucket:
                    best = None
                    for index in reversed(bucket):
                        distance = count - index
                        if distance > limit:
                            break
                        if best is None:
                            best = distance
                        if distance == pref:
                            preferred_matches += 1
                            best = distance
                            break
                    if best is not None:
                        matches += 1
                        observed = best
                append(observed)
            # ---- push -------------------------------------------------
            bucket = positions.get(value_hash)
            if bucket is None:
                positions[value_hash] = deque((count,))
            else:
                bucket.append(count)
                oldest_live = count + 1 - entries
                while bucket[0] < oldest_live:
                    bucket.popleft()
            count += 1
        self._count = count
        self.searches += searches
        self.matches += matches
        self.preferred_matches += preferred_matches
        return results

    def record_commit_group(self, eligible_in_group: int) -> None:
        """Track commit-group sizes for the comparator-count study."""
        self.group_size_histogram[eligible_in_group] = (
            self.group_size_histogram.get(eligible_in_group, 0) + 1
        )

    def comparator_sufficiency(self, comparators: int) -> float:
        """Fraction of commit groups fully served by *comparators* slots.

        Reproduces §IV.D.2: "6 (resp. 4) comparators are sufficient in more
        than 95% (resp. 70%) of the cases".
        """
        total = sum(self.group_size_histogram.values())
        if not total:
            return 1.0
        served = sum(
            count
            for size, count in self.group_size_histogram.items()
            if size <= comparators
        )
        return served / total

    # ------------------------------------------------------------------

    def storage_report(self) -> StorageReport:
        """Reproduces the 768B (256-entry) / 384B (128-entry) figures."""
        report = StorageReport("FIFO history")
        report.add(
            f"{self.entries} entries × ({self.hash_bits}b hash + "
            f"{self.csn_bits}b CSN)",
            fifo_history_bits(self.entries, self.hash_bits, self.csn_bits),
        )
        return report
