"""Shard execution: the worker-process entry point.

A worker receives one serialised :class:`~repro.service.shards.ShardSpec`
and must produce exactly one artifact file: the shard's
:class:`~repro.service.shards.ShardResult` JSON, written crash-safely
(temp file + ``os.replace``), so the supervisor either finds a complete
artifact or none at all — never a torn one.  Everything the worker needs
travels in the payload (spec, cells, fault injection); it reads no
``REPRO_*`` state of its own, so a shard computes identically no matter
which process — or attempt — runs it.

:func:`execute_shard` is the fault-free core, also used directly by the
supervisor's in-process degradation path; :func:`shard_process_main` is
the ``multiprocessing.Process`` target that wraps it with the
deterministic fault plane (crash / hang / corrupt / tamper).
"""

from __future__ import annotations

import json
import os
import time

from repro.api.result import CellResult
from repro.common.atomicio import atomic_write_text
from repro.obs.runtime import obs_tracer
from repro.service.shards import ShardResult, ShardSpec

#: How long a ``hang``-faulted worker sleeps — far past any sane
#: deadline, so the supervisor's kill path is what ends it.
HANG_SLEEP_SECONDS = 3600.0


def execute_shard(shard: ShardSpec, engine=None) -> ShardResult:
    """Simulate every cell of *shard* and return its result.

    With no *engine*, a private session honouring the shard spec's store
    configuration is built (workers share the on-disk trace store when
    the spec enables one, so even a cold sharded sweep interprets each
    trace once per machine).  Passing an engine lets the degradation
    path reuse the caller's memo.
    """
    if engine is None:
        from repro.api.session import Session

        engine = Session(store=shard.spec.store).engine
    spec = shard.spec
    cells = [
        CellResult(
            benchmark,
            spec.mechanisms[mech_index].name,
            seed,
            engine.run_cell(
                benchmark,
                spec.mechanisms[mech_index],
                seed=seed,
                warmup=spec.window.warmup,
                measure=spec.window.measure,
                sampling=spec.sampling,
            ).stats,
        )
        for benchmark, mech_index, seed in shard.cells
    ]
    return ShardResult(
        index=shard.index, fingerprint=shard.fingerprint, cells=cells
    )


def execute_shard_with_lake(
    shard: ShardSpec, engine=None
) -> tuple[ShardResult, list[dict]]:
    """Like :func:`execute_shard`, also returning portable lake entries.

    The cluster path: a remote host runs the shard and ships one
    :meth:`~repro.harness.sweep.SweepEngine.lake_entry` payload per cell
    beside the digest-sealed artifact, so the coordinator can warm its
    own result lake from work it never simulated.  The entries are built
    from the very results the artifact seals — the coordinator
    cross-checks them against the artifact (and recomputes tokens
    locally) before filing anything.
    """
    if engine is None:
        from repro.api.session import Session

        engine = Session(store=shard.spec.store).engine
    spec = shard.spec
    cells: list[CellResult] = []
    entries: list[dict] = []
    for benchmark, mech_index, seed in shard.cells:
        mechanism = spec.mechanisms[mech_index]
        result = engine.run_cell(
            benchmark, mechanism, seed=seed,
            warmup=spec.window.warmup, measure=spec.window.measure,
            sampling=spec.sampling,
        )
        cells.append(
            CellResult(benchmark, mechanism.name, seed, result.stats)
        )
        entries.append(engine.lake_entry(
            result, mechanism,
            spec.window.warmup, spec.window.measure, spec.sampling,
        ))
    shard_result = ShardResult(
        index=shard.index, fingerprint=shard.fingerprint, cells=cells
    )
    return shard_result, entries


def _tampered(text: str) -> str:
    """A well-formed copy of *text* whose first cell's stats were edited
    (the recorded digest is left stale, so loading must reject it)."""
    payload = json.loads(text)
    stats = payload["cells"][0]["stats"]
    stats["committed"] = int(stats.get("committed", 0)) + 1
    return json.dumps(payload, sort_keys=True)


def shard_process_main(
    payload_text: str, out_path: str, fault: str | None
) -> None:
    """Process target: run the shard, honouring an injected *fault*.

    * ``crash``  — die immediately (``os._exit``), as an OOM-killed or
      segfaulted worker would: no artifact, non-zero exit code.
    * ``hang``   — sleep far past any deadline; the supervisor kills us.
    * ``corrupt``— compute, then write a truncated artifact (complete
      file, torn payload — the parse/digest check must reject it).
    * ``tamper`` — compute, then write well-formed JSON whose stats were
      altered under a stale digest (the digest check must reject it).
    """
    if fault == "crash":
        os._exit(13)
    if fault == "hang":
        time.sleep(HANG_SLEEP_SECONDS)
        os._exit(14)  # pragma: no cover - the supervisor kills us first
    shard = ShardSpec.from_json(payload_text)
    # The worker inherits REPRO_OBS through the environment and, thanks
    # to the tracer's ``{pid}`` path template, appends to its *own*
    # event file — no cross-process interleaving.
    with obs_tracer().span(
        "worker.shard", shard=shard.index, cells=len(shard.cells)
    ):
        text = execute_shard(shard).to_json()
    if fault == "corrupt":
        text = text[: len(text) // 2]
    elif fault == "tamper":
        text = _tampered(text)
    atomic_write_text(out_path, text)
