"""``repro serve`` — spec or shard JSON in, digest-verified payload out.

A deliberately small batch service speaking the newline-JSON protocol of
:mod:`repro.cluster.framing` — one request per connection, one response
back — on a local Unix socket, a TCP endpoint (``--tcp HOST:PORT``), or
both at once.  Both listeners share one handler, so the framing
hardening (oversized, truncated and malformed requests each get a
structured ``ok: false`` answer and the server keeps serving) is a
single code path.

Operations::

    {"spec": <ExperimentSpec.to_dict()>, "shards": <int, optional>}
        -> {"ok": true, "sharded": <ShardedSweepResult.to_dict()>}

    {"op": "hello"}
        -> {"ok": true, "hello": {protocol, workload_version, cell_format}}

    {"op": "shard", "shard": <ShardSpec.to_dict()>,
     "fault": <optional>, "lake": <optional bool>}
        -> {"ok": true, "result": <ShardResult.to_dict()>,
            "lake_cells": [<lake entry>, ...]}   # when lake requested

    anything else -> {"ok": false, "error": "<reason>", ...}

The sweep op routes through the same :class:`ShardSupervisor` the CLI
uses, so every robustness property — deadlines, retries, reassignment,
quarantine, in-process degradation — and the digest-verified merge hold
for served requests too.  The shard op is what a cluster coordinator's
:class:`~repro.cluster.dispatch.RemoteDispatcher` sends: the shard runs
on *this host's own* engine and store (the work order's embedded store
path is coordinator-local and deliberately ignored), and honours the
coordinator's injected fault exactly like a forked worker would —
``crash`` really kills the whole server process, which is what makes the
loopback CI gate's host-failover scenario honest.
"""

from __future__ import annotations

import asyncio
import os
from pathlib import Path

from repro.api.spec import ExperimentSpec
from repro.cluster import framing
from repro.cluster.framing import (  # noqa: F401  (re-export: legacy name)
    STREAM_LIMIT,
    FrameError,
)
from repro.cluster.hosts import local_capabilities
from repro.obs.runtime import obs_tracer
from repro.service.shards import ShardSpec
from repro.service.supervisor import ShardedSweepResult, ShardSupervisor
from repro.service.worker import HANG_SLEEP_SECONDS, execute_shard_with_lake


class ServiceError(RuntimeError):
    """The server answered ``ok: false`` (carries its reason)."""


class SweepServer:
    """Serve sweep/shard requests on Unix and/or TCP listeners."""

    def __init__(
        self,
        socket_path: str | os.PathLike | None = None,
        supervisor: ShardSupervisor | None = None,
        shards: int | None = None,
        *,
        tcp: tuple[str, int] | None = None,
        stream_limit: int = STREAM_LIMIT,
    ) -> None:
        if socket_path is None and tcp is None:
            raise ValueError("a server needs a socket path, a TCP "
                             "endpoint, or both")
        self.socket_path = (
            Path(socket_path) if socket_path is not None else None
        )
        #: ``(host, port)`` to listen on; port 0 binds an ephemeral port
        #: (the real one lands in :attr:`bound_address` once serving).
        self.tcp = tcp
        self.supervisor = supervisor or ShardSupervisor()
        #: Server-side default shard count; a request's explicit
        #: ``shards`` beats it, the spec's own ``shards`` field is the
        #: final fallback.
        self.shards = shards
        #: Injectable for tests: a tiny limit makes the oversized path
        #: reachable without shipping 64 MiB.
        self.stream_limit = stream_limit
        self.requests_served = 0
        #: The TCP listener's actual ``(host, port)`` once bound.
        self.bound_address: tuple[str, int] | None = None
        self._once_done: asyncio.Event | None = None
        self._started: asyncio.Event | None = None
        #: Shard execution is serialised per server process: the lazily
        #: built host engine (below) is not safe for concurrent threads,
        #: and one-shard-at-a-time mirrors one-core-per-host anyway.
        self._shard_lock: asyncio.Lock | None = None
        self._engine = None

    # ------------------------------------------------------------------
    # The host-local engine (shard op)
    # ------------------------------------------------------------------

    def _host_engine(self):
        """This host's own engine — its environment's store, not the
        coordinator's: the embedded work-order store path is only
        meaningful on the coordinator's filesystem, and shards are
        benchmark-aligned so each host interprets a trace at most once
        either way."""
        if self._engine is None:
            from repro.api.session import Session

            self._engine = Session().engine
        return self._engine

    # ------------------------------------------------------------------
    # Request handling (shared by both listeners)
    # ------------------------------------------------------------------

    async def _respond(self, request: dict, serial: int) -> dict:
        tracer = obs_tracer()
        op = request.get("op")
        if op == "hello":
            tracer.event("serve.hello", serial=serial)
            return {"ok": True, "hello": local_capabilities()}
        if op == "shard":
            return await self._respond_shard(request, serial)
        if op is not None:
            return {
                "ok": False,
                "error": f"unknown op {op!r} (this build speaks: hello, "
                "shard, and the spec sweep request)",
            }
        # Legacy sweep request: {"spec": ..., "shards": N}.
        try:
            if "spec" not in request:
                raise ValueError('expected {"spec": {...}, "shards": N}')
            spec = ExperimentSpec.from_dict(request["spec"])
            shards = request.get("shards")
            if shards is None:
                shards = self.shards if self.shards is not None \
                    else spec.shards
            outcome = await self.supervisor.run_async(spec, shards=shards)
        except Exception as error:  # noqa: BLE001 - protocol boundary
            tracer.event(
                "serve.response", serial=serial, ok=False,
                error=type(error).__name__,
            )
            return {"ok": False, "error": f"{type(error).__name__}: {error}"}
        tracer.event(
            "serve.response", serial=serial, ok=True,
            mode=outcome.mode, complete=outcome.complete,
        )
        return {"ok": True, "sharded": outcome.to_dict()}

    async def _respond_shard(self, request: dict, serial: int) -> dict:
        """One remote shard attempt, with the worker fault plane.

        Fault semantics match :func:`~repro.service.worker
        .shard_process_main`, scaled up from worker to host: ``crash``
        kills this entire server process (the coordinator sees the
        connection die — real host-death), ``hang`` parks the request
        past any deadline (cancellable, so a test server shuts down
        cleanly), ``corrupt``/``tamper`` mangle the payload under a
        stale digest so the *coordinator's* load check must reject it.
        """
        tracer = obs_tracer()
        fault = request.get("fault")
        if fault == "crash":
            os._exit(13)
        if fault == "hang":
            await asyncio.sleep(HANG_SLEEP_SECONDS)
        try:
            shard = ShardSpec.from_dict(request["shard"])
        except Exception as error:  # noqa: BLE001 - protocol boundary
            return {
                "ok": False,
                "error": f"undecodable shard work order: "
                f"{type(error).__name__}: {error}",
            }
        want_lake = bool(request.get("lake"))
        if self._shard_lock is None:
            self._shard_lock = asyncio.Lock()
        # Handlers interleave, so the span uses the explicit begin/end
        # API (a stack-based span would mis-parent across requests).
        span = tracer.begin(
            "serve.shard", serial=serial, shard=shard.index,
            cells=len(shard.cells),
        )
        try:
            async with self._shard_lock:
                result, entries = await asyncio.to_thread(
                    execute_shard_with_lake, shard, self._host_engine()
                )
        except Exception as error:  # noqa: BLE001 - protocol boundary
            tracer.end(span, "serve.shard", serial=serial, status="failed")
            return {
                "ok": False,
                "error": f"shard execution failed: "
                f"{type(error).__name__}: {error}",
            }
        tracer.end(span, "serve.shard", serial=serial, status="ok")
        payload = result.to_dict()
        if fault == "corrupt":
            # Drop a cell under the already-recorded digest: the
            # coordinator's ShardResult.from_dict must reject it.
            payload["cells"] = payload["cells"][:-1]
        elif fault == "tamper":
            stats = payload["cells"][0]["stats"]
            stats["committed"] = int(stats.get("committed", 0)) + 1
        response: dict = {"ok": True, "result": payload}
        if want_lake:
            response["lake_cells"] = entries
        return response

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection: read a frame, answer it, close.

        Every framing failure — oversized, truncated, malformed — is
        answered with a structured ``ok: false`` carrying the error
        kind, and only this connection ends: the listener (and any
        concurrent request) keeps serving.
        """
        tracer = obs_tracer()
        serial = self.requests_served + 1
        try:
            response: dict | None = None
            try:
                line = await framing.read_frame(reader)
                if line:
                    tracer.event(
                        "serve.request", serial=serial, bytes=len(line)
                    )
                    request = framing.decode_frame(line)
                    response = await self._respond(request, serial)
            except FrameError as error:
                tracer.event(
                    "serve.request.rejected", serial=serial, kind=error.kind
                )
                response = {
                    "ok": False, "kind": error.kind,
                    "error": f"unacceptable request ({error.kind}): {error}",
                }
            if response is not None:
                # Counted before the write so a client that has its
                # response in hand always observes the updated counter.
                self.requests_served += 1
                try:
                    await framing.write_frame(writer, response)
                except OSError:  # pragma: no cover - client went away
                    pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:  # pragma: no cover - client went away first
                pass
            if self._once_done is not None:
                self._once_done.set()

    # ------------------------------------------------------------------

    async def wait_started(self) -> None:
        """Block until the listeners are bound (``bound_address`` is
        populated); for callers driving :meth:`serve` as a task."""
        if self._started is None:
            self._started = asyncio.Event()
        await self._started.wait()

    async def serve(self, once: bool = False) -> None:
        """Bind and serve; with *once*, exit after the first request."""
        if self._started is None:
            self._started = asyncio.Event()
        self._once_done = asyncio.Event() if once else None
        servers = []
        try:
            if self.socket_path is not None:
                # A stale socket file from a crashed server would make
                # bind fail; it is dead weight by definition (connects
                # would ECONNREFUSED).
                try:
                    self.socket_path.unlink()
                except FileNotFoundError:
                    pass
                servers.append(await asyncio.start_unix_server(
                    self._handle, path=str(self.socket_path),
                    limit=self.stream_limit,
                ))
            if self.tcp is not None:
                host, port = self.tcp
                tcp_server = await asyncio.start_server(
                    self._handle, host=host, port=port,
                    limit=self.stream_limit,
                )
                self.bound_address = (
                    tcp_server.sockets[0].getsockname()[:2]
                )
                servers.append(tcp_server)
            self._started.set()
            if self._once_done is not None:
                await self._once_done.wait()
            else:
                await asyncio.gather(
                    *(server.serve_forever() for server in servers)
                )
        finally:
            for server in servers:
                server.close()
                await server.wait_closed()
            if self.socket_path is not None:
                try:
                    self.socket_path.unlink()
                except FileNotFoundError:
                    pass


def request(
    spec: ExperimentSpec,
    socket_path,
    shards: int | None = None,
    timeout: float = 600.0,
    *,
    retries: int = 2,
    connect_timeout: float | None = None,
) -> ShardedSweepResult:
    """Client helper: run *spec* on the server at *socket_path*.

    *socket_path* is a Unix-socket path, a ``(host, port)`` tuple, or a
    :class:`~repro.cluster.hosts.HostSpec` — the transport is
    :func:`repro.cluster.client.call`, so a connection refused, a
    missing socket file or an EOF before any response byte (a racing
    server restart) is redialed with bounded backoff up to *retries*
    times.  Raises :class:`ServiceError` when the server reports a
    failure and ``OSError``/``TimeoutError`` when it stays unreachable;
    a healthy round trip returns the same :class:`ShardedSweepResult` a
    local supervisor would have, digest checks re-run on load.
    """
    from repro.cluster import client

    message: dict = {"spec": spec.to_dict()}
    if shards is not None:
        message["shards"] = shards
    response = client.call(
        socket_path, message,
        timeout=timeout, connect_timeout=connect_timeout, retries=retries,
    )
    if not response.get("ok"):
        raise ServiceError(response.get("error", "unknown server error"))
    return ShardedSweepResult.from_dict(response["sharded"])
