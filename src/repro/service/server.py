"""``repro serve`` — spec JSON in, digest-verified artifact out.

A deliberately small batch service over a local Unix socket: one
newline-delimited JSON request per connection, one newline-delimited
JSON response back.

Request::

    {"spec": <ExperimentSpec.to_dict()>, "shards": <int, optional>}

Response::

    {"ok": true, "sharded": <ShardedSweepResult.to_dict()>}
    {"ok": false, "error": "<reason>"}

The handler routes through the same :class:`ShardSupervisor` the CLI
uses, so every robustness property — deadlines, retries, reassignment,
quarantine, in-process degradation — and the digest-verified merge hold
for served requests too.  A malformed or unserviceable request gets an
``ok: false`` response; it never kills the server.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
from pathlib import Path

from repro.api.spec import ExperimentSpec
from repro.obs.runtime import obs_tracer
from repro.service.supervisor import ShardedSweepResult, ShardSupervisor

#: Stream limit: full-grid specs and multi-hundred-cell artifacts are
#: far below this, but the asyncio default (64 KiB) is not enough.
STREAM_LIMIT = 64 * 1024 * 1024


class ServiceError(RuntimeError):
    """The server answered ``ok: false`` (carries its reason)."""


class SweepServer:
    """Serve sweep requests on a Unix socket until cancelled."""

    def __init__(
        self,
        socket_path: str | os.PathLike,
        supervisor: ShardSupervisor | None = None,
        shards: int | None = None,
    ) -> None:
        self.socket_path = Path(socket_path)
        self.supervisor = supervisor or ShardSupervisor()
        #: Server-side default shard count; a request's explicit
        #: ``shards`` beats it, the spec's own ``shards`` field is the
        #: final fallback.
        self.shards = shards
        self.requests_served = 0
        self._once_done: asyncio.Event | None = None

    # ------------------------------------------------------------------

    async def _respond(self, request_text: str) -> dict:
        tracer = obs_tracer()
        serial = self.requests_served + 1
        tracer.event(
            "serve.request", serial=serial, bytes=len(request_text)
        )
        try:
            request = json.loads(request_text)
            if not isinstance(request, dict) or "spec" not in request:
                raise ValueError('expected {"spec": {...}, "shards": N}')
            spec = ExperimentSpec.from_dict(request["spec"])
            shards = request.get("shards")
            if shards is None:
                shards = self.shards if self.shards is not None \
                    else spec.shards
            outcome = await self.supervisor.run_async(spec, shards=shards)
        except Exception as error:  # noqa: BLE001 - protocol boundary
            tracer.event(
                "serve.response", serial=serial, ok=False,
                error=type(error).__name__,
            )
            return {"ok": False, "error": f"{type(error).__name__}: {error}"}
        tracer.event(
            "serve.response", serial=serial, ok=True,
            mode=outcome.mode, complete=outcome.complete,
        )
        return {"ok": True, "sharded": outcome.to_dict()}

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            line = await reader.readline()
            if line:
                response = await self._respond(line.decode("utf-8"))
                # Counted before the write so a client that has its
                # response in hand always observes the updated counter.
                self.requests_served += 1
                writer.write(
                    (json.dumps(response, sort_keys=True) + "\n").encode()
                )
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:  # pragma: no cover - client went away first
                pass
            if self._once_done is not None:
                self._once_done.set()

    # ------------------------------------------------------------------

    async def serve(self, once: bool = False) -> None:
        """Bind and serve; with *once*, exit after the first request."""
        # A stale socket file from a crashed server would make bind
        # fail; it is dead weight by definition (connects would ECONNREFUSED).
        try:
            self.socket_path.unlink()
        except FileNotFoundError:
            pass
        self._once_done = asyncio.Event() if once else None
        server = await asyncio.start_unix_server(
            self._handle, path=str(self.socket_path), limit=STREAM_LIMIT
        )
        try:
            async with server:
                if self._once_done is not None:
                    await self._once_done.wait()
                else:
                    await server.serve_forever()
        finally:
            try:
                self.socket_path.unlink()
            except FileNotFoundError:
                pass


def request(
    spec: ExperimentSpec,
    socket_path: str | os.PathLike,
    shards: int | None = None,
    timeout: float = 600.0,
) -> ShardedSweepResult:
    """Client helper: run *spec* on the server at *socket_path*.

    Raises :class:`ServiceError` when the server reports a failure and
    ``OSError``/``socket.timeout`` when it is unreachable; a healthy
    round trip returns the same :class:`ShardedSweepResult` a local
    supervisor would have, digest checks re-run on load.
    """
    message = {"spec": spec.to_dict()}
    if shards is not None:
        message["shards"] = shards
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(str(socket_path))
        sock.sendall((json.dumps(message) + "\n").encode("utf-8"))
        chunks = []
        while True:
            chunk = sock.recv(1 << 20)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    response = json.loads(b"".join(chunks).decode("utf-8"))
    if not response.get("ok"):
        raise ServiceError(response.get("error", "unknown server error"))
    return ShardedSweepResult.from_dict(response["sharded"])
