"""The async shard supervisor: the service's robustness core.

Shards go into an :class:`asyncio.Queue`; a bounded set of worker-slot
coroutines drains it, each attempt running in its own worker *process*
(one process per attempt, so one shard's death can never take another
shard's state with it).  The supervisor watches every attempt with a
wall-clock deadline and classifies the outcome:

* **worker death** (non-zero exit, e.g. OOM-kill or segfault) — the
  shard is re-enqueued with exponential backoff and picked up by any
  free slot: reassignment, not restart-the-world;
* **hang** (deadline exceeded) — the worker is killed, then the same
  retry path;
* **corrupt / tampered artifact** (parse failure, digest mismatch,
  foreign fingerprint, wrong cell set) — rejected at the load boundary
  and re-executed;
* **poison shard** (attempt budget exhausted) — quarantined: its cells
  become explicit holes in the merged result instead of aborting the
  sweep;
* **no workers at all** (process spawn fails, or ``max_workers=0``) —
  graceful degradation to the in-process
  :class:`~repro.harness.sweep.SweepEngine` path, same digest-verified
  merge.

Because every cell is deterministic and every artifact digest-verified,
a merged sharded run — even one that crashed, hung and corrupted its way
through retries — is bit-identical to an unfaulted in-process run; the
CI smoke gate (:mod:`repro.service.smoke`) pins exactly that.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.api import env as api_env
from repro.api.result import RunResult
from repro.api.spec import ExperimentSpec
from repro.obs import runtime as obs_runtime
from repro.obs.runtime import obs_tracer
from repro.service.faults import FaultPlan
from repro.service.shards import (
    CellId,
    ShardResult,
    ShardSpec,
    merge_shards,
    plan_shards,
    validate_shard_result,
)
from repro.service.worker import execute_shard, shard_process_main


@dataclass
class ShardReport:
    """One shard's attempt summary: why it retried, for how long.

    The retry/quarantine story used to live only in the supervisor's
    event log; this summary travels inside the merged result, so a hole
    is explainable (`which kinds of failure, how much backoff, was it
    quarantined`) without the event stream.
    """

    attempts: int = 0
    failure_kinds: tuple[str, ...] = ()
    backoff_seconds: float = 0.0
    quarantined: bool = False

    def to_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "failure_kinds": list(self.failure_kinds),
            "backoff_seconds": round(self.backoff_seconds, 4),
            "quarantined": self.quarantined,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardReport":
        return cls(
            attempts=int(payload["attempts"]),
            failure_kinds=tuple(payload["failure_kinds"]),
            backoff_seconds=float(payload["backoff_seconds"]),
            quarantined=bool(payload["quarantined"]),
        )


@dataclass
class ShardedSweepResult:
    """What a sharded sweep returns: the artifact plus its fault story.

    ``result`` carries every cell that completed; ``holes`` explicitly
    enumerates the (benchmark, mechanism, seed) cells lost to
    quarantined shards — an incomplete sweep is a *partial result*, not
    an exception.  ``attempts`` and ``failures`` are the audit trail;
    ``shard_reports`` is its per-shard digest (attempts, failure kinds,
    total backoff, quarantine verdict).
    """

    result: RunResult
    holes: tuple[CellId, ...] = ()
    quarantined: tuple[int, ...] = ()
    attempts: dict[int, int] = field(default_factory=dict)
    failures: tuple[str, ...] = ()
    mode: str = "sharded"
    shard_reports: dict[int, ShardReport] = field(default_factory=dict)
    #: Cluster runs only: per-host status/dispatch summary keyed by host
    #: label (``repro.cluster.pool.HostPool.report``); empty otherwise.
    host_reports: dict[str, dict] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return not self.holes

    def digest(self) -> str:
        return self.result.digest()

    def to_dict(self) -> dict:
        return {
            "result": self.result.to_dict(),
            "holes": [list(hole) for hole in self.holes],
            "quarantined": list(self.quarantined),
            "attempts": {str(k): v for k, v in self.attempts.items()},
            "failures": list(self.failures),
            "mode": self.mode,
            "shard_reports": {
                str(index): report.to_dict()
                for index, report in sorted(self.shard_reports.items())
            },
            "host_reports": dict(sorted(self.host_reports.items())),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardedSweepResult":
        return cls(
            result=RunResult.from_dict(payload["result"]),
            holes=tuple(
                (hole[0], hole[1], hole[2]) for hole in payload["holes"]
            ),
            quarantined=tuple(payload["quarantined"]),
            attempts={int(k): v for k, v in payload["attempts"].items()},
            failures=tuple(payload["failures"]),
            mode=payload["mode"],
            # Absent in pre-telemetry payloads: reports stay empty.
            shard_reports={
                int(index): ShardReport.from_dict(report)
                for index, report in payload.get("shard_reports", {}).items()
            },
            # Absent in pre-cluster (and non-clustered) payloads.
            host_reports=dict(payload.get("host_reports", {})),
        )


class ShardSupervisor:
    """Fans shards out to worker processes and survives their failures."""

    def __init__(
        self,
        *,
        deadline: float | None = None,
        max_attempts: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        max_workers: int | None = None,
        poll_interval: float = 0.01,
        faults: FaultPlan | str | None = None,
        dispatcher=None,
    ) -> None:
        self.deadline = (
            api_env.shard_timeout_from_env() if deadline is None else deadline
        )
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        #: Concurrent worker slots; ``None`` = sized per run, ``0`` =
        #: never spawn processes (forces in-process degradation).
        self.max_workers = max_workers
        self.poll_interval = poll_interval
        if faults is None:
            faults = FaultPlan.parse(api_env.faults_from_env())
        elif isinstance(faults, str):
            faults = FaultPlan.parse(faults)
        self.faults = faults
        #: Execution backend for attempts; ``None`` = fork a worker
        #: process per attempt.  A :class:`~repro.cluster.dispatch
        #: .RemoteDispatcher` routes attempts to pooled hosts instead —
        #: the whole retry/reassignment/quarantine ladder is agnostic.
        self.dispatcher = dispatcher

    # ------------------------------------------------------------------

    def run(
        self, spec: ExperimentSpec, shards: int | None = None
    ) -> ShardedSweepResult:
        """Execute *spec* sharded; blocking front of :meth:`run_async`."""
        return asyncio.run(self.run_async(spec, shards=shards))

    async def run_async(
        self, spec: ExperimentSpec, shards: int | None = None
    ) -> ShardedSweepResult:
        """Async core, callable from a running loop (``repro serve``)."""
        count = spec.shards if shards is None else shards
        # max_workers=0 means "never fork" — which only forces the
        # in-process rung when forking is the backend at all.
        no_backend = self.max_workers == 0 and self.dispatcher is None
        if count <= 1 or no_backend or spec.cells < 2:
            return await asyncio.get_running_loop().run_in_executor(
                None, self._run_in_process, spec
            )
        return await self._run_sharded(spec, count)

    # ------------------------------------------------------------------

    def _run_in_process(self, spec: ExperimentSpec) -> ShardedSweepResult:
        """Degradation ladder's last rung: the classic engine path."""
        from repro.api.session import Session

        result = Session.for_spec(spec).run(spec)
        return ShardedSweepResult(result=result, mode="in-process")

    async def _run_sharded(
        self, spec: ExperimentSpec, count: int
    ) -> ShardedSweepResult:
        shard_specs = plan_shards(spec, count)
        spool = Path(tempfile.mkdtemp(prefix="repro-shards-"))
        results: dict[int, ShardResult] = {}
        attempts: dict[int, int] = {s.index: 0 for s in shard_specs}
        reports: dict[int, ShardReport] = {
            s.index: ShardReport() for s in shard_specs
        }
        failures: list[str] = []
        quarantined: list[int] = []
        queue: asyncio.Queue = asyncio.Queue()
        for shard in shard_specs:
            queue.put_nowait((shard, 0))
        if self.dispatcher is not None:
            slots = min(len(shard_specs), self.dispatcher.width)
        else:
            slots = min(len(shard_specs), self.max_workers or 2)
        outstanding = len(shard_specs)
        loop = asyncio.get_running_loop()
        # Slot coroutines interleave, so spans use the explicit
        # begin/end API (a thread-nested stack would mis-parent them).
        tracer = obs_tracer()
        tracer.event(
            "shard.plan", shards=len(shard_specs), cells=spec.cells,
            fingerprint=spec.fingerprint(),
        )

        def finish_one() -> None:
            nonlocal outstanding
            outstanding -= 1
            if outstanding == 0:
                for _ in range(slots):
                    queue.put_nowait(None)

        async def slot() -> None:
            while True:
                item = await queue.get()
                if item is None:
                    return
                shard, attempt = item
                attempts[shard.index] = attempt + 1
                report = reports[shard.index]
                report.attempts = attempt + 1
                tracer.event(
                    "shard.dispatch", shard=shard.index, attempt=attempt + 1,
                    cells=len(shard.cell_ids()),
                )
                span = tracer.begin(
                    "shard.attempt", shard=shard.index, attempt=attempt + 1
                )
                outcome = await self._attempt(shard, attempt, spool)
                if isinstance(outcome, ShardResult):
                    tracer.end(span, "shard.attempt",
                               shard=shard.index, status="ok")
                    results[shard.index] = outcome
                    finish_one()
                    continue
                kind, reason = outcome
                tracer.end(span, "shard.attempt",
                           shard=shard.index, status="failed", kind=kind)
                report.failure_kinds = report.failure_kinds + (kind,)
                failures.append(
                    f"shard {shard.index} attempt {attempt + 1}/"
                    f"{self.max_attempts}: {reason}"
                )
                if attempt + 1 >= self.max_attempts:
                    report.quarantined = True
                    tracer.event(
                        "shard.quarantine", shard=shard.index,
                        attempts=attempt + 1, kind=kind,
                    )
                    quarantined.append(shard.index)
                    finish_one()
                    continue
                # Exponential backoff, scheduled off-slot so this slot
                # is immediately free for other shards.
                delay = min(
                    self.backoff_cap, self.backoff_base * (2 ** attempt)
                )
                report.backoff_seconds += delay
                tracer.event(
                    "shard.retry", shard=shard.index,
                    next_attempt=attempt + 2, backoff=round(delay, 4),
                    kind=kind,
                )
                loop.call_later(
                    delay, queue.put_nowait, (shard, attempt + 1)
                )

        try:
            await asyncio.gather(*(slot() for _ in range(slots)))
        finally:
            shutil.rmtree(spool, ignore_errors=True)
        with tracer.span(
            "shard.merge", shards=len(results), holes_expected=len(quarantined)
        ):
            merged, holes = merge_shards(
                spec, [results[index] for index in sorted(results)]
            )
        runtime = obs_runtime.current()
        if runtime is not None:
            merged.telemetry = runtime.telemetry_payload(
                extra={
                    "shards": {
                        str(index): report.to_dict()
                        for index, report in sorted(reports.items())
                    }
                }
            )
        return ShardedSweepResult(
            result=merged,
            holes=holes,
            quarantined=tuple(sorted(quarantined)),
            attempts=attempts,
            failures=tuple(failures),
            mode=(
                "sharded" if self.dispatcher is None
                else self.dispatcher.mode
            ),
            shard_reports=reports,
        )

    # ------------------------------------------------------------------

    async def _attempt(
        self, shard: ShardSpec, attempt: int, spool: Path
    ) -> ShardResult | tuple[str, str]:
        """One attempt at one shard; a ``(kind, reason)`` return is a
        retriable failure — ``kind`` is the machine-readable class
        (spawn/hang/death/no-artifact/corrupt/foreign), ``reason`` the
        human-readable line that lands in ``failures``."""
        fault = self.faults.fault_for(shard.index, attempt)
        if self.dispatcher is not None:
            # Cluster backend: the dispatcher runs the attempt remotely
            # and returns the exact same contract, so retry, backoff,
            # reassignment and quarantine above need no cluster
            # awareness at all.
            return await self.dispatcher.attempt(shard, attempt, fault)
        out_path = spool / f"shard-{shard.index}-attempt-{attempt}.json"
        process = multiprocessing.Process(
            target=shard_process_main,
            args=(shard.to_json(), str(out_path), fault),
            daemon=True,
        )
        try:
            process.start()
        except OSError as error:
            # Can't spawn workers at all: degrade to executing the shard
            # inline.  Results stay digest-verified by the merge.
            del process
            try:
                return execute_shard(shard)
            except Exception as inline_error:  # noqa: BLE001
                return (
                    "spawn",
                    f"no worker process ({error}) and inline execution "
                    f"failed: {inline_error}",
                )
        loop = asyncio.get_running_loop()
        deadline_at = loop.time() + self.deadline
        while process.is_alive() and loop.time() < deadline_at:
            await asyncio.sleep(self.poll_interval)
        if process.is_alive():
            process.terminate()
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - SIGTERM sufficed
                process.kill()
                process.join(timeout=5.0)
            return (
                "hang",
                f"deadline exceeded ({self.deadline:g}s); worker killed",
            )
        process.join()
        if process.exitcode != 0:
            return ("death", f"worker died (exit code {process.exitcode})")
        try:
            text = out_path.read_text(encoding="utf-8")
        except OSError as error:
            return (
                "no-artifact",
                f"worker exited cleanly but left no artifact ({error})",
            )
        try:
            result = ShardResult.from_json(text)
        except (ValueError, KeyError, TypeError) as error:
            return ("corrupt", f"shard artifact rejected: {error}")
        return validate_shard_result(shard, result) or result
