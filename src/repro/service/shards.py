"""Shard planning and digest-verified shard artifacts.

A :class:`ShardSpec` is the unit of work the supervisor hands a worker:
the full base :class:`~repro.api.spec.ExperimentSpec` (so the worker can
reconstruct windows, sampling and store settings exactly) plus the
explicit subset of grid cells this shard owns.  Cells are referenced as
``(benchmark, mechanism index, seed)`` — the mechanism *index* into the
base spec's tuple, so mechanism configurations are serialised once, in
the embedded spec, not once per shard.

A :class:`ShardResult` is what comes back: the computed
:class:`~repro.api.result.CellResult` values plus the same content
digest a :class:`~repro.api.result.RunResult` carries
(:func:`~repro.api.result.cells_digest`).  Loading validates the digest
and the spec fingerprint, so a truncated, corrupted or foreign artifact
is rejected at the merge boundary and the shard re-executes instead of
silently poisoning the sweep.

:func:`merge_shards` reassembles shard results into one ``RunResult``
in canonical grid order — bit-identical to an in-process sweep when all
cells arrived, with missing cells returned as explicit holes otherwise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.api import codec
from repro.api.result import CellResult, RunResult, cells_digest
from repro.api.spec import ExperimentSpec

#: A grid cell by position: (benchmark, mechanism index, seed).
CellRef = tuple[str, int, int]

#: A grid cell by name: (benchmark, mechanism name, seed) — the hole
#: representation in partial results.
CellId = tuple[str, str, int]


def canonical_cells(spec: ExperimentSpec) -> list[CellRef]:
    """The grid in in-process sweep order (benchmark-major)."""
    return [
        (benchmark, mech_index, seed)
        for benchmark in spec.benchmarks
        for mech_index in range(len(spec.mechanisms))
        for seed in spec.seeds
    ]


def cell_id(spec: ExperimentSpec, ref: CellRef) -> CellId:
    benchmark, mech_index, seed = ref
    return (benchmark, spec.mechanisms[mech_index].name, seed)


@dataclass(frozen=True)
class ShardSpec:
    """One shard's work order: the base spec plus its cell subset."""

    spec: ExperimentSpec
    index: int
    total: int
    cells: tuple[CellRef, ...]

    def __post_init__(self) -> None:
        if not (0 <= self.index < self.total):
            raise ValueError(
                f"shard index {self.index} outside 0..{self.total - 1}"
            )
        if not self.cells:
            raise ValueError("a shard needs at least one cell")
        mechanisms = len(self.spec.mechanisms)
        seen: set[CellRef] = set()
        for ref in self.cells:
            benchmark, mech_index, seed = ref
            if benchmark not in self.spec.benchmarks:
                raise ValueError(f"cell benchmark {benchmark!r} not in spec")
            if not (0 <= mech_index < mechanisms):
                raise ValueError(f"cell mechanism index {mech_index} "
                                 f"outside 0..{mechanisms - 1}")
            if seed not in self.spec.seeds:
                raise ValueError(f"cell seed {seed} not in spec")
            if ref in seen:
                raise ValueError(f"duplicate cell {ref}")
            seen.add(ref)

    @property
    def fingerprint(self) -> str:
        """The base spec's content fingerprint (shared by all shards)."""
        return self.spec.fingerprint()

    def cell_ids(self) -> list[CellId]:
        return [cell_id(self.spec, ref) for ref in self.cells]

    def to_dict(self) -> dict:
        return codec.encode(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardSpec":
        shard = codec.decode(payload)
        if not isinstance(shard, cls):
            raise ValueError(
                f"payload decodes to {type(shard).__name__}, not "
                f"{cls.__name__}"
            )
        return shard

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ShardSpec":
        return cls.from_dict(json.loads(text))


def plan_shards(spec: ExperimentSpec, shards: int) -> list[ShardSpec]:
    """Split *spec*'s grid into at most *shards* shard specs.

    Cells are grouped into blocks before distribution so each shard
    keeps trace locality (a worker interprets/loads each benchmark's
    trace once): per-benchmark blocks when there are enough shards to
    go around, per-(benchmark, mechanism) blocks when shards outnumber
    benchmarks, individual cells when they outnumber both.  Blocks are
    dealt round-robin, so the plan is deterministic — the same spec and
    shard count always produce the same shards — and fewer shards than
    requested come back when the grid is too small to fill them.
    """
    if shards < 2:
        raise ValueError("plan_shards needs shards >= 2; use the "
                         "in-process engine path for 0/1")
    cells = canonical_cells(spec)
    if shards <= len(spec.benchmarks):
        def block_key(ref: CellRef):
            return ref[0]
    elif shards <= len(spec.benchmarks) * len(spec.mechanisms):
        def block_key(ref: CellRef):
            return (ref[0], ref[1])
    else:
        def block_key(ref: CellRef):
            return ref
    blocks: dict[object, list[CellRef]] = {}
    for ref in cells:
        blocks.setdefault(block_key(ref), []).append(ref)
    assigned: list[list[CellRef]] = [[] for _ in range(shards)]
    for position, block in enumerate(blocks.values()):
        assigned[position % shards].extend(block)
    populated = [refs for refs in assigned if refs]
    return [
        ShardSpec(spec=spec, index=index, total=len(populated),
                  cells=tuple(refs))
        for index, refs in enumerate(populated)
    ]


@dataclass
class ShardResult:
    """One shard's artifact: its cells, digest-sealed like a RunResult."""

    index: int
    fingerprint: str
    cells: list[CellResult]

    def digest(self) -> str:
        return cells_digest(self.cells)

    def to_dict(self) -> dict:
        return {
            "shard": self.index,
            "fingerprint": self.fingerprint,
            "digest": self.digest(),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardResult":
        result = cls(
            index=payload["shard"],
            fingerprint=payload["fingerprint"],
            cells=[CellResult.from_dict(c) for c in payload["cells"]],
        )
        recorded = payload.get("digest")
        if recorded is None:
            raise ValueError(
                "shard artifact has no digest field; refusing to trust it"
            )
        if recorded != result.digest():
            raise ValueError(
                f"shard artifact digest does not match its cells "
                f"({recorded} vs {result.digest()}); the payload was "
                "corrupted or altered"
            )
        return result

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ShardResult":
        return cls.from_dict(json.loads(text))


def validate_shard_result(
    shard: ShardSpec, result: ShardResult
) -> tuple[str, str] | None:
    """Why *result* cannot be accepted as *shard*'s artifact, or ``None``.

    The acceptance checks every transport shares — the supervisor's
    spool-file load and the cluster dispatcher's inline payload both run
    exactly these after the digest check ``ShardResult.from_dict``
    already performed: the artifact must be for this shard, computed
    under this spec's fingerprint, and cover exactly the ordered cell
    set of the work order.  Returns the supervisor's ``(kind, reason)``
    failure tuple so a rejection feeds straight into the retry ladder.
    """
    if result.index != shard.index:
        return (
            "foreign",
            f"artifact is for shard {result.index}, expected "
            f"{shard.index}",
        )
    if result.fingerprint != shard.fingerprint:
        return (
            "foreign",
            f"artifact fingerprint {result.fingerprint} does not match "
            f"the spec ({shard.fingerprint})",
        )
    produced = {
        (cell.benchmark, cell.mechanism, cell.seed)
        for cell in result.cells
    }
    if produced != set(shard.cell_ids()):
        return (
            "corrupt",
            "artifact cell set does not match the shard's work order",
        )
    return None


def merge_shards(
    spec: ExperimentSpec, shard_results
) -> tuple[RunResult, tuple[CellId, ...]]:
    """Reassemble shard artifacts into one verified ``RunResult``.

    Cells are emitted in canonical grid order regardless of shard
    completion order, so a complete merge is bit-identical (digest and
    all) to an in-process ``Session.run``.  Every shard's fingerprint
    must match *spec* — a shard computed for a different experiment is
    an error, not a silent wrong answer — and a cell two shards both
    claim must agree exactly (determinism says it will; disagreement
    means corruption the digest missed, so it raises).  Cells no shard
    delivered come back as the explicit hole list.
    """
    expected = spec.fingerprint()
    collected: dict[CellId, CellResult] = {}
    for shard in shard_results:
        if shard.fingerprint != expected:
            raise ValueError(
                f"shard {shard.index} fingerprint {shard.fingerprint} does "
                f"not match the spec being merged ({expected}); refusing to "
                "merge a foreign artifact"
            )
        for cell in shard.cells:
            key = (cell.benchmark, cell.mechanism, cell.seed)
            duplicate = collected.get(key)
            if duplicate is not None and (
                duplicate.to_dict() != cell.to_dict()
            ):
                raise ValueError(
                    f"shards disagree about cell {key}; determinism is "
                    "violated or an artifact is corrupt"
                )
            collected[key] = cell
    cells: list[CellResult] = []
    holes: list[CellId] = []
    for ref in canonical_cells(spec):
        key = cell_id(spec, ref)
        cell = collected.get(key)
        if cell is None:
            holes.append(key)
        else:
            cells.append(cell)
    return RunResult(spec=spec, cells=cells), tuple(holes)
