"""Deterministic fault injection for the sharded sweep service.

A :class:`FaultPlan` names exactly which shard attempts fail and how, so
every failure path of the supervisor — worker death, hang, corrupt or
tampered artifacts, poison shards — is exercised deterministically by
tests and the CI smoke gate rather than waiting for production to
discover them.  The plan is plain data: it parses from the
``REPRO_FAULTS`` environment variable (or a constructor argument),
serialises back to the same text, and travels to worker processes inside
the shard payload — workers never consult ambient environment state, so
a plan replays identically anywhere.

Grammar (comma-separated entries)::

    kind:shard[:attempt]

* ``kind`` — one of :data:`FAULT_KINDS`:

  - ``crash``   the worker process dies (``os._exit``) mid-shard;
  - ``hang``    the worker sleeps past any deadline (killed, retried);
  - ``corrupt`` the worker writes a truncated artifact (parse-rejected);
  - ``tamper``  the worker writes a well-formed artifact whose stats
    were altered (digest-rejected).

* ``shard`` — the shard index the fault applies to.
* ``attempt`` — which attempt fails: an integer (default ``0``, the
  first), or ``*`` for every attempt (a poison shard: retries are
  exhausted and the supervisor quarantines it).

Examples: ``crash:0,corrupt:1`` (first attempts fail, retries succeed —
the CI gate), ``crash:2:*`` (shard 2 is poison).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Recognised fault kinds (see module docstring).
FAULT_KINDS = ("crash", "hang", "corrupt", "tamper")

#: Sentinel attempt index meaning "every attempt" (a poison shard).
ALL_ATTEMPTS = -1


class FaultPlanError(ValueError):
    """A fault-plan entry does not follow ``kind:shard[:attempt]``."""


@dataclass(frozen=True)
class Fault:
    """One injected failure: *kind* on *shard*, at *attempt* (or all)."""

    kind: str
    shard: int
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r} "
                f"(choose from {', '.join(FAULT_KINDS)})"
            )
        if self.shard < 0:
            raise FaultPlanError(f"shard index must be >= 0: {self.shard}")
        if self.attempt < ALL_ATTEMPTS:
            raise FaultPlanError(f"attempt must be >= 0 or '*': {self.attempt}")

    def matches(self, shard: int, attempt: int) -> bool:
        return self.shard == shard and (
            self.attempt == ALL_ATTEMPTS or self.attempt == attempt
        )

    def render(self) -> str:
        if self.attempt == ALL_ATTEMPTS:
            return f"{self.kind}:{self.shard}:*"
        if self.attempt == 0:
            return f"{self.kind}:{self.shard}"
        return f"{self.kind}:{self.shard}:{self.attempt}"


@dataclass(frozen=True)
class FaultPlan:
    """The full injection schedule; empty by default (no faults)."""

    faults: tuple[Fault, ...] = ()

    @classmethod
    def parse(cls, text: str | None) -> "FaultPlan":
        """Parse ``REPRO_FAULTS`` text; ``None``/blank = no faults."""
        if text is None or not text.strip():
            return cls()
        faults = []
        for entry in text.split(","):
            entry = entry.strip()
            if not entry:
                continue
            parts = entry.split(":")
            if len(parts) not in (2, 3):
                raise FaultPlanError(
                    f"bad fault entry {entry!r}: expected kind:shard[:attempt]"
                )
            kind, shard_text = parts[0].strip().lower(), parts[1].strip()
            attempt_text = parts[2].strip() if len(parts) == 3 else "0"
            try:
                shard = int(shard_text)
            except ValueError:
                raise FaultPlanError(
                    f"bad shard index {shard_text!r} in {entry!r}"
                ) from None
            if attempt_text == "*":
                attempt = ALL_ATTEMPTS
            else:
                try:
                    attempt = int(attempt_text)
                except ValueError:
                    raise FaultPlanError(
                        f"bad attempt {attempt_text!r} in {entry!r} "
                        "(an integer or '*')"
                    ) from None
            faults.append(Fault(kind, shard, attempt))
        return cls(tuple(faults))

    def render(self) -> str:
        """The plan back as ``REPRO_FAULTS`` text (``parse`` round-trips)."""
        return ",".join(fault.render() for fault in self.faults)

    def fault_for(self, shard: int, attempt: int) -> str | None:
        """The fault kind injected into (*shard*, *attempt*), if any."""
        for fault in self.faults:
            if fault.matches(shard, attempt):
                return fault.kind
        return None

    def __bool__(self) -> bool:
        return bool(self.faults)
