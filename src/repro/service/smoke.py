"""CI smoke gate for the sharded service: ``repro sweep --smoke --shards N``.

Runs a small fixed sweep twice — once in-process through the classic
engine path, once sharded under fault injection — and fails unless the
sharded run (1) actually suffered and survived the injected faults and
(2) merged to a digest *identical* to the in-process artifact.  The
fault plan comes from ``REPRO_FAULTS`` (CI injects one worker crash and
one corrupt artifact) with the same crash+corrupt default when unset, so
the gate never runs fault-free by accident.
"""

from __future__ import annotations

from repro.api import env as api_env
from repro.api.spec import (
    ExperimentSpec,
    StoreSpec,
    WindowSpec,
    default_mechanisms,
)
from repro.service.faults import FaultPlan
from repro.service.supervisor import ShardSupervisor

#: Injected when ``REPRO_FAULTS`` is unset: first attempts of shard 0
#: (worker death) and shard 1 (corrupt artifact) fail, retries succeed.
DEFAULT_FAULTS = "crash:0,corrupt:1"


def sharded_smoke(shards: int = 2) -> int:
    """Gate: a faulted sharded sweep must merge digest-identical."""
    plan = FaultPlan.parse(api_env.faults_from_env() or DEFAULT_FAULTS)
    spec = ExperimentSpec(
        benchmarks=("mcf", "dealII"),
        mechanisms=default_mechanisms(),
        window=WindowSpec(warmup=512, measure=2000),
        store=StoreSpec(enabled=False),
    )
    from repro.api.session import Session

    reference = Session.for_spec(spec).run(spec)
    supervisor = ShardSupervisor(
        faults=plan, backoff_base=0.01, deadline=120.0
    )
    outcome = supervisor.run(spec, shards=shards)
    if outcome.mode != "sharded":
        print(f"sharded smoke: expected a sharded run, got {outcome.mode}")
        return 1
    if not outcome.complete:
        print("sharded smoke: holes after retries: "
              f"{list(outcome.holes)} (failures: {list(outcome.failures)})")
        return 1
    faulted = {
        fault.shard for fault in plan.faults
        if fault.shard in outcome.attempts
    }
    if not faulted:
        print("sharded smoke: fault plan touched no shard "
              f"(plan {plan.render()!r}, shards {sorted(outcome.attempts)})")
        return 1
    undertried = [
        shard for shard in faulted if outcome.attempts[shard] < 2
    ]
    if undertried:
        print("sharded smoke: injected faults did not force retries on "
              f"shard(s) {undertried} (attempts {outcome.attempts})")
        return 1
    if outcome.digest() != reference.digest():
        print("sharded smoke: faulted sharded digest "
              f"{outcome.digest()} != in-process {reference.digest()}")
        return 1
    print(
        "sharded smoke: survived "
        f"{plan.render()!r} over {len(outcome.attempts)} shards "
        f"({sum(outcome.attempts.values())} attempts, "
        f"{len(outcome.failures)} failures) — merged digest "
        f"{outcome.digest()} == in-process"
    )
    return 0
