"""Fault-tolerant sharded sweep service (DESIGN.md §11).

The service layer turns one :class:`~repro.api.spec.ExperimentSpec` into
shard specs (:mod:`~repro.service.shards`), fans them out to worker
processes under an async supervisor with deadlines, retry/backoff,
reassignment and quarantine (:mod:`~repro.service.supervisor`), and
merges the digest-verified shard artifacts back into one
:class:`~repro.api.result.RunResult` that is bit-identical to an
in-process run.  A deterministic fault-injection plane
(:mod:`~repro.service.faults`, ``REPRO_FAULTS``) lets tests and the CI
smoke gate exercise every failure path, and
:mod:`~repro.service.server` exposes the whole thing over a local
socket (``repro serve``).
"""

from repro.service.faults import FaultPlan, FaultPlanError
from repro.service.shards import (
    ShardResult,
    ShardSpec,
    merge_shards,
    plan_shards,
)
from repro.service.supervisor import ShardedSweepResult, ShardSupervisor

__all__ = [
    "FaultPlan",
    "FaultPlanError",
    "ShardResult",
    "ShardSpec",
    "ShardSupervisor",
    "ShardedSweepResult",
    "merge_shards",
    "plan_shards",
]
