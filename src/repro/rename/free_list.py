"""Physical register identifiers and free-list management.

Table I provisions 235 INT and 235 FP physical registers.  A single
hardwired zero register (never allocated, never freed) sits outside both
pools: zero idioms and zero predictions rename their destination to it
(§III), which is what makes zero "sharing" trivial.

Unified preg numbering: INT pregs occupy ``[0, num_int)``, FP pregs
``[num_int, num_int + num_fp)``, and the zero register is the single id
``num_int + num_fp``.
"""

from __future__ import annotations

from repro.isa.registers import RegClass


class FreeListError(RuntimeError):
    """Raised on double-free or allocation bookkeeping bugs."""


class FreeList:
    """Two-pool physical register free list."""

    def __init__(self, num_int: int = 235, num_fp: int = 235) -> None:
        if num_int <= 32 or num_fp <= 32:
            raise ValueError("need more physical than architectural registers")
        self.num_int = num_int
        self.num_fp = num_fp
        self.zero_preg = num_int + num_fp
        self._free_int = list(range(num_int - 1, -1, -1))
        self._free_fp = list(range(num_int + num_fp - 1, num_int - 1, -1))
        # Allocation state as a flat flag array (preg-indexed): the
        # double-free tripwire without per-operation set hashing.  One
        # extra slot so probing the zero register is well-defined.
        self._allocated = [False] * (num_int + num_fp + 1)

    # ------------------------------------------------------------------

    def preg_class(self, preg: int) -> RegClass:
        return RegClass.INT if preg < self.num_int else RegClass.FP

    @property
    def free_int(self) -> int:
        return len(self._free_int)

    @property
    def free_fp(self) -> int:
        return len(self._free_fp)

    def available(self, reg_class: RegClass) -> int:
        return self.free_int if reg_class == RegClass.INT else self.free_fp

    # ------------------------------------------------------------------

    def allocate(self, reg_class: RegClass) -> int | None:
        """Pop a free preg of *reg_class*; None when the pool is empty."""
        pool = self._free_int if reg_class == RegClass.INT else self._free_fp
        if not pool:
            return None
        preg = pool.pop()
        self._allocated[preg] = True
        return preg

    def release(self, preg: int) -> None:
        """Return *preg* to its pool."""
        if preg == self.zero_preg:
            raise FreeListError("the zero register is never freed")
        allocated = self._allocated
        if not allocated[preg]:
            raise FreeListError(f"double free of preg {preg}")
        allocated[preg] = False
        if preg < self.num_int:
            self._free_int.append(preg)
        else:
            self._free_fp.append(preg)

    def is_allocated(self, preg: int) -> bool:
        return self._allocated[preg]

    def seed_architectural(self, pregs_needed_int: int,
                           pregs_needed_fp: int) -> list[int]:
        """Allocate the pregs backing the initial architectural state."""
        seeded = []
        for _ in range(pregs_needed_int):
            preg = self.allocate(RegClass.INT)
            if preg is None:
                raise FreeListError("not enough INT pregs for arch state")
            seeded.append(preg)
        for _ in range(pregs_needed_fp):
            preg = self.allocate(RegClass.FP)
            if preg is None:
                raise FreeListError("not enough FP pregs for arch state")
            seeded.append(preg)
        return seeded
