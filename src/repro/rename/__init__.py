"""Register renaming: map table, free list, ISRB sharing, eliminations."""

from repro.rename.free_list import FreeList, FreeListError
from repro.rename.isrb import Isrb, IsrbEntry
from repro.rename.map_table import RenameMap
from repro.rename.move_elim import MoveEliminator
from repro.rename.zero_idiom import ZeroIdiomEliminator

__all__ = [
    "FreeList",
    "FreeListError",
    "Isrb",
    "IsrbEntry",
    "MoveEliminator",
    "RenameMap",
    "ZeroIdiomEliminator",
]
