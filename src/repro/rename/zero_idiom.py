"""Zero-idiom elimination (§III.a) — a *baseline* feature.

Decode recognises instructions that put 0 in a register (``eor x, y, y``,
``sub x, y, y``, ``movz x, #0``, ``and`` with the zero register, …) and
renames their destination to the hardwired zero register.  No execution,
no validation, no speculation: the idiom is architecturally guaranteed.
Recent x86 parts do exactly this [2], which is why the paper includes it
in the baseline and why the zero *predictor* only counts non-idiom zeros.
"""

from __future__ import annotations

from repro.isa.instruction import DynInst


class ZeroIdiomEliminator:
    """Rename-stage zero-idiom elimination."""

    def __init__(self, zero_preg: int) -> None:
        self._zero_preg = zero_preg
        self.eliminated = 0

    def try_eliminate(self, op: DynInst) -> int | None:
        """Return the zero preg when *op* is a decode-visible zero idiom."""
        if not op.zero_idiom or not op.produces_result():
            return None
        self.eliminated += 1
        return self._zero_preg
