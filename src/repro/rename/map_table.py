"""Rename map: architectural register → physical register.

The map supports both snapshot/restore (used by tests and by checkpoint
studies) and incremental undo (the pipeline walks the ROB tail-first on a
squash, reversing each instruction's rename effect — the recovery scheme
the ISRB of [11] is designed to coexist with).
"""

from __future__ import annotations

from repro.isa.registers import (
    NUM_ARCH_REGS,
    NUM_FP_ARCH_REGS,
    NUM_INT_ARCH_REGS,
    XZR,
    reg_class,
)
from repro.rename.free_list import FreeList


class RenameMap:
    """Current speculative mapping of every architectural register."""

    def __init__(self, free_list: FreeList) -> None:
        self.free_list = free_list
        self._map = [0] * NUM_ARCH_REGS
        for arch in range(NUM_ARCH_REGS):
            if arch == XZR:
                self._map[arch] = free_list.zero_preg
            else:
                preg = free_list.allocate(reg_class(arch))
                if preg is None:
                    raise RuntimeError("free list too small for arch state")
                self._map[arch] = preg

    @staticmethod
    def architectural_register_count() -> tuple[int, int]:
        """(INT, FP) architectural registers that consume pregs."""
        return NUM_INT_ARCH_REGS - 1, NUM_FP_ARCH_REGS  # XZR excluded

    # ------------------------------------------------------------------

    def lookup(self, arch: int) -> int:
        """Physical register currently holding *arch*."""
        return self._map[arch]

    def rename_dest(self, arch: int, new_preg: int) -> int:
        """Point *arch* at *new_preg*; returns the previous mapping."""
        if arch == XZR:
            raise ValueError("the zero register cannot be renamed")
        old = self._map[arch]
        self._map[arch] = new_preg
        return old

    def undo_rename(self, arch: int, old_preg: int) -> int:
        """Reverse a rename during squash walk-back; returns the preg that
        the squashed instruction had installed."""
        installed = self._map[arch]
        self._map[arch] = old_preg
        return installed

    # ------------------------------------------------------------------

    def snapshot(self) -> tuple[int, ...]:
        return tuple(self._map)

    def restore(self, snapshot: tuple[int, ...]) -> None:
        self._map = list(snapshot)

    def mapped_pregs(self) -> set[int]:
        """All pregs currently reachable through the map."""
        return set(self._map)
