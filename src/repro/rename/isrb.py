"""Inflight Shared Registers Buffer (ISRB) — the sharing tracker of [11].

Physical register sharing needs reference counting, but per-register
counters are hostile to checkpointed recovery.  The ISRB observation
(§IV.E.2) is that few registers are shared at any time, so a small
fully-associative buffer allocated on demand suffices.  Each entry, tagged
by the physical register id, holds two counters:

* ``referenced`` — number of *extra* references created by sharing
  (speculative; decremented when a squash undoes a share);
* ``committed`` — number of committed de-references (a mapping of the
  register dying at commit).

When ``committed`` strictly exceeds ``referenced`` (every owner is gone),
or ``committed`` overflows, the entry is freed and the register may return
to the free list.  If the buffer is full, no new sharing takes place — the
paper's graceful-degradation rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.storage import StorageReport, isrb_bits


@dataclass
class IsrbEntry:
    """Dual counters for one shared physical register."""

    referenced: int = 0
    committed: int = 0


class Isrb:
    """The 24-entry, 6-bit-counter configuration evaluated in §VI.A.3."""

    def __init__(self, entries: int = 24, counter_bits: int = 6,
                 preg_tag_bits: int = 9) -> None:
        if entries <= 0:
            raise ValueError("ISRB needs at least one entry")
        self.capacity = entries
        self.counter_max = (1 << counter_bits) - 1
        self._counter_bits = counter_bits
        self._preg_tag_bits = preg_tag_bits
        self._entries: dict[int, IsrbEntry] = {}
        # Statistics.
        self.shares = 0
        self.share_rejections = 0
        self.frees = 0
        self.peak_occupancy = 0

    # ------------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def is_shared(self, preg: int) -> bool:
        return preg in self._entries

    def entry(self, preg: int) -> IsrbEntry | None:
        return self._entries.get(preg)

    # ------------------------------------------------------------------

    def share(self, preg: int) -> bool:
        """Record one new reference to *preg* (a rename-time reuse).

        Returns False — and records nothing — when the buffer is full or
        the counter would overflow; the caller must then fall back to a
        normal allocation (no sharing).
        """
        existing = self._entries.get(preg)
        if existing is not None:
            if existing.referenced >= self.counter_max:
                self.share_rejections += 1
                return False
            existing.referenced += 1
            self.shares += 1
            return True
        if len(self._entries) >= self.capacity:
            self.share_rejections += 1
            return False
        self._entries[preg] = IsrbEntry(referenced=1, committed=0)
        self.shares += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))
        return True

    def unshare(self, preg: int) -> bool:
        """Undo one reference during squash walk-back.

        Returns True when the entry died and the register must be freed
        (possible when de-references already committed meanwhile).
        """
        entry = self._entries.get(preg)
        if entry is None:
            raise KeyError(f"unshare of untracked preg {preg}")
        entry.referenced -= 1
        if entry.referenced < 0:
            raise ValueError(f"negative reference count on preg {preg}")
        if entry.committed > entry.referenced:
            del self._entries[preg]
            self.frees += 1
            return True
        if entry.referenced == 0 and entry.committed == 0:
            # Sharing fully undone before any owner died: drop the entry;
            # the register is still live through the rename map.
            del self._entries[preg]
        return False

    def dereference(self, preg: int) -> str:
        """One committed owner of *preg* is gone.

        Returns:

        * ``"untracked"`` — not a shared register: caller frees it normally;
        * ``"kept"`` — other owners remain: caller must NOT free it;
        * ``"freed"`` — last owner gone (or counter overflow): entry
          removed, caller frees the register.
        """
        entry = self._entries.get(preg)
        if entry is None:
            return "untracked"
        entry.committed += 1
        if entry.committed > entry.referenced or (
            entry.committed > self.counter_max
        ):
            del self._entries[preg]
            self.frees += 1
            return "freed"
        return "kept"

    # ------------------------------------------------------------------

    def storage_report(self) -> StorageReport:
        """Reproduces the paper's 63B figure (24 × (2×6b + 9b tag))."""
        report = StorageReport("ISRB")
        report.add(
            f"{self.capacity} entries × (2×{self._counter_bits}b counters "
            f"+ {self._preg_tag_bits}b preg tag)",
            isrb_bits(self.capacity, self._counter_bits, self._preg_tag_bits),
        )
        return report
