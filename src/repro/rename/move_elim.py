"""Move elimination (§IV.H.1).

64-bit register-register moves are executed *at rename* by mapping the
destination architectural register to the source's physical register.
This is non-speculative (the move semantics are visible at decode), needs
no validation, and the move never occupies an issue slot.  It relies on
the same sharing substrate (ISRB) as RSEP: the source preg gains an owner.

The paper enables move elimination whenever RSEP is enabled and excludes
eliminated moves from distance prediction.
"""

from __future__ import annotations

from repro.isa.instruction import DynInst
from repro.rename.isrb import Isrb
from repro.rename.map_table import RenameMap


class MoveEliminator:
    """Rename-stage move elimination backed by ISRB reference counting."""

    def __init__(self, rename_map: RenameMap, isrb: Isrb) -> None:
        self._rename_map = rename_map
        self._isrb = isrb
        self.eliminated = 0
        self.rejected = 0

    def try_eliminate(self, op: DynInst) -> int | None:
        """Attempt to eliminate the move *op* at rename.

        On success returns the shared physical register now mapped to the
        move's destination (the caller records the old mapping for commit
        and squash handling).  Returns None when the ISRB cannot accept
        another sharer — the move then renames and executes normally.
        """
        if not op.move:
            return None
        source_preg = self._rename_map.lookup(op.src1)
        if not self._isrb.share(source_preg):
            self.rejected += 1
            return None
        self.eliminated += 1
        return source_preg
