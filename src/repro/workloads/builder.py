"""Program construction DSL.

:class:`ProgramBuilder` offers a tiny assembler: one convenience method per
opcode, textual labels resolved at :meth:`build` time, plus register and data
segment allocators used by the workload kernels to stay out of each other's
way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.bitops import mask64
from repro.isa.instruction import Instr, NO_REG
from repro.isa.opcodes import Opcode
from repro.isa.program import Program, ProgramError
from repro.isa.registers import LINK_REG, NUM_FP_ARCH_REGS, f, x

#: Base address of the data segment.  Kept far from the code segment so
#: instruction and data streams never alias.
DATA_BASE = 0x10_0000


class RegAllocator:
    """Hands out architectural registers so kernels never clash.

    Integer registers X0..X29 are allocatable (X30 is the link register,
    X31 is XZR).  All 32 FP registers are allocatable.
    """

    def __init__(self) -> None:
        self._free_int = list(range(29, -1, -1))  # pop() yields x0 first
        self._free_fp = list(range(NUM_FP_ARCH_REGS - 1, -1, -1))

    def int_reg(self) -> int:
        """Allocate one integer register (unified numbering)."""
        if not self._free_int:
            raise ProgramError("out of integer architectural registers")
        return x(self._free_int.pop())

    def fp_reg(self) -> int:
        """Allocate one FP register (unified numbering)."""
        if not self._free_fp:
            raise ProgramError("out of FP architectural registers")
        return f(self._free_fp.pop())

    def int_regs(self, count: int) -> list[int]:
        return [self.int_reg() for _ in range(count)]

    def fp_regs(self, count: int) -> list[int]:
        return [self.fp_reg() for _ in range(count)]


@dataclass
class DataSegment:
    """Bump allocator for the data segment plus its initial memory image.

    The image maps *word addresses* (byte address >> 3) to 64-bit values;
    untouched memory reads as zero.
    """

    next_addr: int = DATA_BASE
    image: dict[int, int] = field(default_factory=dict)

    def alloc(self, num_bytes: int, align: int = 8) -> int:
        """Reserve *num_bytes* and return the base byte address."""
        if num_bytes <= 0:
            raise ValueError("allocation must be positive")
        base = (self.next_addr + align - 1) & ~(align - 1)
        self.next_addr = base + num_bytes
        return base

    def alloc_words(self, values: list[int]) -> int:
        """Reserve and initialise an array of 64-bit words."""
        base = self.alloc(len(values) * 8)
        for offset, value in enumerate(values):
            self.image[(base >> 3) + offset] = mask64(value)
        return base

    def alloc_bytes(self, data: bytes) -> int:
        """Reserve and initialise a byte buffer (zero-padded to words)."""
        base = self.alloc(max(len(data), 1))
        padded = data + b"\x00" * (-len(data) % 8)
        for offset in range(0, len(padded), 8):
            word = int.from_bytes(padded[offset:offset + 8], "little")
            self.image[(base >> 3) + (offset >> 3)] = word
        return base

    def poke(self, addr: int, value: int) -> None:
        """Set one 64-bit word of the initial image at byte address *addr*."""
        self.image[addr >> 3] = mask64(value)


class ProgramBuilder:
    """Incremental program construction with labels."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.regs = RegAllocator()
        self.data = DataSegment()
        self._instructions: list[Instr] = []
        self._labels: dict[str, int] = {}
        self._fixups: list[tuple[int, str]] = []
        self._label_counter = 0

    # ------------------------------------------------------------------
    # Label management
    # ------------------------------------------------------------------

    def fresh_label(self, stem: str = "L") -> str:
        """Return a unique label name."""
        self._label_counter += 1
        return f"{stem}_{self._label_counter}"

    def label(self, name: str) -> str:
        """Bind *name* to the current position; returns the name."""
        if name in self._labels:
            raise ProgramError(f"label redefined: {name}")
        self._labels[name] = len(self._instructions)
        return name

    def here(self) -> int:
        """Current instruction index."""
        return len(self._instructions)

    # ------------------------------------------------------------------
    # Raw emission
    # ------------------------------------------------------------------

    def emit(
        self,
        opcode: Opcode,
        rd: int = NO_REG,
        rs1: int = NO_REG,
        rs2: int = NO_REG,
        imm: int = 0,
        target: str | int = -1,
    ) -> int:
        """Append an instruction; *target* may be a label name."""
        resolved = -1
        if isinstance(target, str):
            self._fixups.append((len(self._instructions), target))
        else:
            resolved = target
        self._instructions.append(Instr(opcode, rd, rs1, rs2, imm, resolved))
        return len(self._instructions) - 1

    # ------------------------------------------------------------------
    # Integer ALU
    # ------------------------------------------------------------------

    def add(self, rd, rs1, rs2):
        return self.emit(Opcode.ADD, rd, rs1, rs2)

    def sub(self, rd, rs1, rs2):
        return self.emit(Opcode.SUB, rd, rs1, rs2)

    def and_(self, rd, rs1, rs2):
        return self.emit(Opcode.AND, rd, rs1, rs2)

    def orr(self, rd, rs1, rs2):
        return self.emit(Opcode.ORR, rd, rs1, rs2)

    def eor(self, rd, rs1, rs2):
        return self.emit(Opcode.EOR, rd, rs1, rs2)

    def lsl(self, rd, rs1, rs2):
        return self.emit(Opcode.LSL, rd, rs1, rs2)

    def lsr(self, rd, rs1, rs2):
        return self.emit(Opcode.LSR, rd, rs1, rs2)

    def addi(self, rd, rs1, imm):
        return self.emit(Opcode.ADDI, rd, rs1, imm=imm)

    def subi(self, rd, rs1, imm):
        return self.emit(Opcode.SUBI, rd, rs1, imm=imm)

    def andi(self, rd, rs1, imm):
        return self.emit(Opcode.ANDI, rd, rs1, imm=imm)

    def orri(self, rd, rs1, imm):
        return self.emit(Opcode.ORRI, rd, rs1, imm=imm)

    def eori(self, rd, rs1, imm):
        return self.emit(Opcode.EORI, rd, rs1, imm=imm)

    def lsli(self, rd, rs1, imm):
        return self.emit(Opcode.LSLI, rd, rs1, imm=imm)

    def lsri(self, rd, rs1, imm):
        return self.emit(Opcode.LSRI, rd, rs1, imm=imm)

    def movz(self, rd, imm):
        return self.emit(Opcode.MOVZ, rd, imm=imm)

    def mov(self, rd, rs1):
        return self.emit(Opcode.MOV, rd, rs1)

    def mul(self, rd, rs1, rs2):
        return self.emit(Opcode.MUL, rd, rs1, rs2)

    def div(self, rd, rs1, rs2):
        return self.emit(Opcode.DIV, rd, rs1, rs2)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------

    def ldr(self, rd, base, offset=0):
        return self.emit(Opcode.LDR, rd, base, imm=offset)

    def ldrb(self, rd, base, offset=0):
        return self.emit(Opcode.LDRB, rd, base, imm=offset)

    def str_(self, value_reg, base, offset=0):
        return self.emit(Opcode.STR, rs1=base, rs2=value_reg, imm=offset)

    def fldr(self, fd, base, offset=0):
        return self.emit(Opcode.FLDR, fd, base, imm=offset)

    def fstr(self, value_reg, base, offset=0):
        return self.emit(Opcode.FSTR, rs1=base, rs2=value_reg, imm=offset)

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------

    def b(self, target):
        return self.emit(Opcode.B, target=target)

    def beq(self, rs1, rs2, target):
        return self.emit(Opcode.BEQ, rs1=rs1, rs2=rs2, target=target)

    def bne(self, rs1, rs2, target):
        return self.emit(Opcode.BNE, rs1=rs1, rs2=rs2, target=target)

    def blt(self, rs1, rs2, target):
        return self.emit(Opcode.BLT, rs1=rs1, rs2=rs2, target=target)

    def bge(self, rs1, rs2, target):
        return self.emit(Opcode.BGE, rs1=rs1, rs2=rs2, target=target)

    def bl(self, target):
        return self.emit(Opcode.BL, rd=LINK_REG, target=target)

    def ret(self, rs1=LINK_REG):
        return self.emit(Opcode.RET, rs1=rs1)

    # ------------------------------------------------------------------
    # Floating point
    # ------------------------------------------------------------------

    def fadd(self, fd, fs1, fs2):
        return self.emit(Opcode.FADD, fd, fs1, fs2)

    def fsub(self, fd, fs1, fs2):
        return self.emit(Opcode.FSUB, fd, fs1, fs2)

    def fmul(self, fd, fs1, fs2):
        return self.emit(Opcode.FMUL, fd, fs1, fs2)

    def fdiv(self, fd, fs1, fs2):
        return self.emit(Opcode.FDIV, fd, fs1, fs2)

    def fmov(self, fd, fs1):
        return self.emit(Opcode.FMOV, fd, fs1)

    def fmovi(self, fd, value: float):
        from repro.workloads.trace import float_to_bits
        return self.emit(Opcode.FMOVI, fd, imm=float_to_bits(value))

    def nop(self):
        return self.emit(Opcode.NOP)

    def halt(self):
        return self.emit(Opcode.HALT)

    # ------------------------------------------------------------------
    # Composite helpers
    # ------------------------------------------------------------------

    def load_imm64(self, rd, value: int) -> None:
        """Materialise an arbitrary 64-bit constant (MOVZ + shifted ORRs)."""
        value = mask64(value)
        self.movz(rd, value & 0xFFFF)
        for shift in (16, 32, 48):
            chunk = (value >> shift) & 0xFFFF
            if chunk:
                scratch = rd  # shift-or into place via immediate ops
                self.orri(scratch, scratch, chunk << shift)

    def counted_loop(self, count_reg: int, limit_reg: int, body) -> None:
        """Emit ``for (; count < limit; count++) body()``.

        The caller must have initialised both registers.  *body* is a
        callable invoked once to emit the loop body.
        """
        head = self.label(self.fresh_label("loop"))
        body()
        self.addi(count_reg, count_reg, 1)
        self.blt(count_reg, limit_reg, head)

    # ------------------------------------------------------------------
    # Final assembly
    # ------------------------------------------------------------------

    def build(self) -> Program:
        """Resolve labels and return the validated :class:`Program`."""
        for index, label_name in self._fixups:
            if label_name not in self._labels:
                raise ProgramError(f"undefined label: {label_name}")
            self._instructions[index].target = self._labels[label_name]
        return Program(self.name, self._instructions)
