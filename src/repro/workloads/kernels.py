"""Workload kernels: building blocks of the SPEC'06 stand-in benchmarks.

Each kernel is a small code generator with a controlled *value behaviour*,
chosen so that benchmark mixes can dial in the stream properties RSEP and VP
respond to (§2 of DESIGN.md):

================  =====================================================
Kernel            Behaviour it contributes
================  =====================================================
stream_sum        streaming loads of incompressible values (filler)
pointer_chase     dependent loads, cache misses, *redundant load pairs
                  at stable distance with irregular values* (RSEP-only)
redundant_compute ALU recomputation at stable distance, irregular
                  values (RSEP-only, non-load)
strided_counters  strided results (VP-only: D-VTAGE strides)
stack_spill       store→reload of a live value (RSEP loads, SMB-like;
                  optionally strided values so VP overlaps)
zero_loads        loads of sparse (zero-dense) data plus masked ALU
                  zeros (zero-prediction potential, not idioms)
lcg_noise         irregular values, no reuse (neither mechanism)
branchy           pattern-predictable and random branches
fp_stencil        FP array traversal, optional zero-dense data, FDIV
byte_scan         narrow values from a small alphabet: high *potential*
                  redundancy but unstable distances (Fig. 1 vs capture)
const_reload      loop-invariant loads (VP and RSEP both capture)
mov_shuffle       register-register moves (move-elimination fodder)
call_ret          call/return through tiny functions (RAS exercise)
================  =====================================================

A kernel contributes three emission phases: out-of-line ``functions``,
one-time ``setup``, and the per-outer-iteration ``body``.  Benchmarks unroll
bodies straight-line (no inner loop registers), which also gives every
dynamic instance its own PC — matching how compiled hot loops look to a
predictor after unrolling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.rng import XorShift64
from repro.isa.registers import XZR
from repro.workloads.builder import ProgramBuilder


@dataclass
class Kernel:
    """Emission phases of one kernel instance."""

    name: str
    setup: Callable[[], None]
    body: Callable[[], None]
    functions: Callable[[], None] | None = None


def _pow2_words(n: int) -> int:
    """Round *n* up to a power of two (element counts must mask cleanly)."""
    p = 1
    while p < n:
        p <<= 1
    return p


def stream_sum(
    b: ProgramBuilder,
    rng: XorShift64,
    *,
    elements: int = 4096,
    reps: int = 4,
    stride_words: int = 1,
) -> Kernel:
    """Streaming loads of random data accumulated into a register."""
    elements = _pow2_words(elements)
    base, off, addr, v, acc = b.regs.int_regs(5)
    data = b.data.alloc_words([rng.next_u64() for _ in range(elements)])
    mask = elements * 8 - 1

    def setup() -> None:
        b.load_imm64(base, data)
        b.movz(off, 0)
        b.movz(acc, 0)

    def body() -> None:
        for _ in range(reps):
            b.addi(off, off, 8 * stride_words)
            b.andi(off, off, mask)
            b.add(addr, base, off)
            b.ldr(v, addr)
            b.add(acc, acc, v)

    return Kernel("stream_sum", setup, body)


def pointer_chase(
    b: ProgramBuilder,
    rng: XorShift64,
    *,
    nodes: int = 1024,
    reps: int = 2,
    spacing: int = 4,
    redundant: bool = True,
    payload: bool = True,
) -> Kernel:
    """Linked-ring traversal with an optional redundant payload reload.

    Nodes are 32 bytes (next pointer + payload + padding) laid out in a
    random ring, so successive chase steps hit scattered lines.  When
    *redundant* is set, each visit loads the payload twice with *spacing*
    independent filler instructions in between: the second load always
    equals the first, at a stable instruction distance, while the payload
    value itself is irregular — the RSEP-friendly / VP-hostile pattern the
    paper observes in mcf.
    """
    order = list(range(nodes))
    rng.shuffle(order)
    node_base = b.data.alloc(nodes * 32, align=32)
    for position in range(nodes):
        current = order[position]
        successor = order[(position + 1) % nodes]
        b.data.poke(node_base + current * 32, node_base + successor * 32)
        b.data.poke(node_base + current * 32 + 8, rng.next_u64())

    p, v1, v2, acc, sc = b.regs.int_regs(5)

    def setup() -> None:
        b.load_imm64(p, node_base + order[0] * 32)
        b.movz(acc, 0)
        b.movz(sc, 0)

    def body() -> None:
        for _ in range(reps):
            b.ldr(p, p)           # p = node->next (dependent chain)
            if not payload:
                # Load-queue-friendly variant: the chase load only.
                b.addi(sc, sc, 1)
                continue
            b.ldr(v1, p, 8)       # payload
            b.eor(acc, acc, v1)
            for _ in range(spacing):
                b.addi(sc, sc, 1)
            if redundant:
                b.ldr(v2, p, 8)   # same address: equal result, fixed IDist
                b.add(acc, acc, v2)

    return Kernel("pointer_chase", setup, body)


def redundant_compute(
    b: ProgramBuilder,
    rng: XorShift64,
    *,
    reps: int = 2,
    spacing: int = 6,
) -> Kernel:
    """Recompute an expression over irregular inputs at a stable distance.

    ``t1 = a ^ b`` … filler … ``t2 = a ^ b``: t2 always equals t1 but the
    value changes every iteration (a derives from an xorshift stream), so
    only equality — not the value — is predictable.  This is the non-load
    redundancy the paper highlights in dealII.
    """
    s, a, bb, t1, t2, acc = b.regs.int_regs(6)
    seed = rng.next_u64() | 1

    def setup() -> None:
        b.load_imm64(s, seed)
        b.movz(bb, 0x1234)
        b.movz(acc, 0)

    def body() -> None:
        for _ in range(reps):
            b.lsli(t1, s, 13)
            b.add(s, s, t1)
            b.eori(s, s, 0x5DEECE66D)
            b.lsri(a, s, 17)
            b.eor(t1, a, bb)
            for _ in range(spacing):
                b.addi(acc, acc, 1)
            b.eor(t2, a, bb)     # equal to t1, stable distance
            b.add(acc, acc, t2)
            b.addi(bb, bb, 3)

    return Kernel("redundant_compute", setup, body)


def strided_counters(
    b: ProgramBuilder,
    rng: XorShift64,
    *,
    counters: int = 3,
    reps: int = 2,
    store_elements: int = 1024,
) -> Kernel:
    """Strided value production: D-VTAGE's bread and butter, useless to RSEP.

    Each counter advances by its own constant stride; results never equal a
    recent older result, so equality prediction finds nothing, while a
    stride-based value predictor captures everything after warm-up.
    """
    store_elements = _pow2_words(store_elements)
    regs = b.regs.int_regs(counters)
    base, off, sc = b.regs.int_regs(3)
    strides = [rng.next_below(97) + 1 for _ in range(counters)]
    buffer = b.data.alloc(store_elements * 8)
    mask = store_elements * 8 - 1

    def setup() -> None:
        for reg in regs:
            b.movz(reg, rng.next_below(1 << 16))
        b.load_imm64(base, buffer)
        b.movz(off, 0)

    def body() -> None:
        for _ in range(reps):
            for reg, stride in zip(regs, strides):
                b.addi(reg, reg, stride)
            b.add(sc, base, off)
            b.str_(regs[0], sc)
            b.addi(off, off, 8)
            b.andi(off, off, mask)

    return Kernel("strided_counters", setup, body)


def stack_spill(
    b: ProgramBuilder,
    rng: XorShift64,
    *,
    reps: int = 2,
    spacing: int = 5,
    vp_friendly: bool = False,
) -> Kernel:
    """Spill a live value to the stack and reload it shortly after.

    The reload equals the spilled producer at a stable distance — the
    def-store-load-use chain that Speculative Memory Bypassing targets and
    that RSEP captures through values (§IV.H.2).  With *vp_friendly* the
    spilled value is strided, so value prediction captures the reload too
    (the perlbench-style overlap); otherwise it is irregular (RSEP-only).
    """
    sp, v, w, acc = b.regs.int_regs(4)
    slot = b.data.alloc(64)

    def setup() -> None:
        b.load_imm64(sp, slot)
        b.load_imm64(v, rng.next_u64() | 1)
        b.movz(acc, 0)

    def body() -> None:
        for _ in range(reps):
            if vp_friendly:
                b.addi(v, v, 24)
            else:
                b.lsli(w, v, 7)
                b.add(v, v, w)
                b.eori(v, v, 0x9E3779B9)
            b.str_(v, sp)
            for _ in range(spacing):
                b.addi(acc, acc, 1)
            b.ldr(w, sp)          # equals v: stable-distance pair
            b.add(acc, acc, w)

    return Kernel("stack_spill", setup, body)


def zero_loads(
    b: ProgramBuilder,
    rng: XorShift64,
    *,
    elements: int = 2048,
    reps: int = 3,
    zero_density: float = 0.3,
    high_bits_density: float = 0.2,
    zero_run: int = 1,
) -> Kernel:
    """Sparse-data loads and masked ALU results that are frequently zero.

    ``zero_density`` of the array reads as 0 (zero-producing *loads*);
    independently, only ``high_bits_density`` of elements have any of the
    top-32 bits set, so the masked extraction produces 0 for the rest
    (zero-producing *non-loads*).  None of these are decode-visible idioms.
    ``zero_run`` > 1 clusters the zeros (see :func:`_zero_run_values`).
    """
    elements = _pow2_words(elements)

    def nonzero() -> int:
        if rng.chance(high_bits_density):
            return rng.next_u64() | (1 << 40)
        return rng.next_u64() & 0xFFFF_FFFF or 1

    values = _zero_run_values(rng, elements, zero_density, zero_run, nonzero)
    base, off, addr, v, t, acc = b.regs.int_regs(6)
    data = b.data.alloc_words(values)
    mask = elements * 8 - 1

    def setup() -> None:
        b.load_imm64(base, data)
        b.movz(off, 0)
        b.movz(acc, 0)

    def body() -> None:
        for _ in range(reps):
            b.add(addr, base, off)
            b.ldr(v, addr)                       # often 0 (load zero)
            b.addi(off, off, 8)
            b.andi(off, off, mask)
            b.lsri(t, v, 32)                     # often 0 (non-load zero)
            b.orr(acc, acc, v)
            b.add(acc, acc, t)

    return Kernel("zero_loads", setup, body)


def lcg_noise(
    b: ProgramBuilder,
    rng: XorShift64,
    *,
    reps: int = 4,
) -> Kernel:
    """Pure xorshift churn: no redundancy, no strides, nothing predictable."""
    s, t, acc = b.regs.int_regs(3)
    seed = rng.next_u64() | 1

    def setup() -> None:
        b.load_imm64(s, seed)
        b.movz(acc, 0)

    def body() -> None:
        for _ in range(reps):
            b.lsli(t, s, 13)
            b.add(s, s, t)
            b.lsri(t, s, 7)
            b.eor(s, s, t)
            b.add(acc, acc, s)

    return Kernel("lcg_noise", setup, body)


def branchy(
    b: ProgramBuilder,
    rng: XorShift64,
    *,
    reps: int = 2,
    random_branches: int = 1,
    pattern_branches: int = 1,
    pattern_period: int = 4,
) -> Kernel:
    """Data-dependent control flow.

    Random branches test on xorshift bits (~50% mispredict under any
    predictor); pattern branches test a modular counter that TAGE learns
    quickly.  The mix sets the benchmark's branch MPKI.

    Branch arms hold only stores so the dynamic count of result producers
    per iteration stays constant regardless of outcomes — real hot loops
    with stable IDist pairs look like this too, otherwise the distances
    would not be learnable in the first place.
    """
    s, t, acc, i, scratch = b.regs.int_regs(5)
    scratch_slot = b.data.alloc(64)
    seed = rng.next_u64() | 1

    def setup() -> None:
        b.load_imm64(s, seed)
        b.movz(acc, 0)
        b.movz(i, 0)
        b.load_imm64(scratch, scratch_slot)

    def body() -> None:
        for _ in range(reps):
            for _ in range(random_branches):
                b.lsli(t, s, 13)
                b.add(s, s, t)
                b.lsri(t, s, 9)
                b.eor(s, s, t)
                b.andi(t, s, 1)
                skip = b.fresh_label("rnd")
                b.beq(t, XZR, skip)
                b.str_(s, scratch)
                b.label(skip)
            for _ in range(pattern_branches):
                b.addi(i, i, 1)
                b.andi(t, i, pattern_period - 1)
                skip = b.fresh_label("pat")
                b.bne(t, XZR, skip)
                b.str_(i, scratch, 8)
                b.label(skip)

    return Kernel("branchy", setup, body)


def _zero_run_values(
    rng: XorShift64,
    elements: int,
    zero_density: float,
    run_length: int,
    nonzero,
) -> list[int]:
    """Array contents with zeros laid out in runs of ~*run_length*.

    Sparse scientific data is zero in *regions*, not Bernoulli-sampled;
    runs make zero loads locally predictable (value prediction and zero
    prediction both catch on mid-run), which matches the zeusmp/cactusADM
    behaviour the paper measures.
    """
    if run_length <= 1:
        return [
            0 if rng.chance(zero_density) else nonzero()
            for _ in range(elements)
        ]
    values: list[int] = []
    in_zero_run = False
    while len(values) < elements:
        if in_zero_run:
            for _ in range(run_length):
                if len(values) >= elements:
                    break
                values.append(0)
            in_zero_run = False
        else:
            span = max(1, int(run_length * (1.0 - zero_density)
                              / max(zero_density, 0.01)))
            for _ in range(span):
                if len(values) >= elements:
                    break
                values.append(nonzero())
            in_zero_run = rng.chance(0.9)
    return values


def fp_stencil(
    b: ProgramBuilder,
    rng: XorShift64,
    *,
    elements: int = 4096,
    reps: int = 2,
    zero_density: float = 0.0,
    zero_run: int = 1,
    fdiv_every: int = 0,
    serial_acc: bool = False,
    acc_steps: int = 1,
) -> Kernel:
    """Two-input FP array kernel: load, add, scale, store.

    ``zero_density`` controls the fraction of 0.0 elements in the inputs
    (loads of 0.0 and sums of zeros produce the all-zero bit pattern — the
    zeusmp/cactusADM behaviour); ``zero_run`` > 1 lays the zeros out in
    runs.  ``fdiv_every`` > 0 inserts a non-pipelined FDIV every that-many
    repetitions.  ``serial_acc`` accumulates through a loop-carried FADD
    chain (``acc_steps`` links per element, 3 cycles each) — the
    multi-term reduction recurrence that pins IPC in real FP loops.
    """
    elements = _pow2_words(elements)
    from repro.workloads.trace import float_to_bits

    def nonzero() -> int:
        return float_to_bits((rng.next_below(1 << 20) + 1) / 1024.0)

    array_a = b.data.alloc_words(
        _zero_run_values(rng, elements, zero_density, zero_run, nonzero)
    )
    array_b = b.data.alloc_words(
        _zero_run_values(rng, elements, zero_density, zero_run, nonzero)
    )
    array_c = b.data.alloc(elements * 8)
    base_a, base_b, base_c, off = b.regs.int_regs(4)
    fa, fb, fc, fk = b.regs.fp_regs(4)
    if serial_acc:
        facc = b.regs.fp_reg()
    mask = elements * 8 - 1

    def setup() -> None:
        b.load_imm64(base_a, array_a)
        b.load_imm64(base_b, array_b)
        b.load_imm64(base_c, array_c)
        b.movz(off, 0)
        b.fmovi(fk, 1.5)
        if serial_acc:
            b.fmovi(facc, 0.0)

    sc_a, sc_b, sc_c = b.regs.int_regs(3)

    def body() -> None:
        # Base+displacement addressing, one pointer per array per
        # iteration — the shape compiled stencils actually have, and far
        # fewer parallel address streams to alias in hash space.
        b.add(sc_a, base_a, off)
        b.add(sc_b, base_b, off)
        b.add(sc_c, base_c, off)
        for rep in range(reps):
            b.fldr(fa, sc_a, rep * 8)
            b.fldr(fb, sc_b, rep * 8)
            b.fadd(fc, fa, fb)
            b.fmul(fc, fc, fk)
            if fdiv_every and rep % fdiv_every == fdiv_every - 1:
                b.fdiv(fc, fc, fk)
            if serial_acc:
                for _ in range(acc_steps):
                    b.fadd(facc, facc, fc)  # loop-carried 3c recurrence
            b.fstr(fc, sc_c, rep * 8)
        b.addi(off, off, 8 * reps)
        b.andi(off, off, mask)

    return Kernel("fp_stencil", setup, body)


def byte_scan(
    b: ProgramBuilder,
    rng: XorShift64,
    *,
    buffer_bytes: int = 4096,
    reps: int = 4,
    alphabet: int = 16,
    needle: int = 3,
) -> Kernel:
    """Byte-grain scanning of low-entropy data.

    Byte loads from a small alphabet are massively redundant *in value*
    (Fig. 1 potential) but matches occur at unstable distances, so RSEP
    captures only part of it — the gap between potential and capture the
    paper discusses.  The compare-and-branch on the needle byte adds
    data-dependent (hard) branches.
    """
    buffer_bytes = _pow2_words(buffer_bytes)
    data = bytes(rng.next_below(alphabet) for _ in range(buffer_bytes))
    base, off, addr, c, t, acc = b.regs.int_regs(6)
    buffer = b.data.alloc_bytes(data)
    mask = buffer_bytes - 1

    def setup() -> None:
        b.load_imm64(base, buffer)
        b.movz(off, 0)
        b.movz(acc, 0)

    def body() -> None:
        for _ in range(reps):
            b.add(addr, base, off)
            b.ldrb(c, addr)
            b.addi(off, off, 1)
            b.andi(off, off, mask)
            b.eori(t, c, needle)
            # Data-dependent branch with an empty arm: it mispredicts like
            # a match test but leaves the producer count per iteration
            # stable (no conditional result producers).
            found = b.fresh_label("scan")
            b.bne(t, XZR, found)
            b.label(found)
            b.add(acc, acc, c)

    return Kernel("byte_scan", setup, body)


def const_reload(
    b: ProgramBuilder,
    rng: XorShift64,
    *,
    fields: int = 3,
    reps: int = 1,
) -> Kernel:
    """Loop-invariant loads of global-structure fields.

    Every iteration reloads the same never-written fields: the value is
    constant (VP captures it via last-value) *and* equals the previous
    iteration's load at a stable cross-iteration distance (RSEP captures it
    too) — the libquantum-style overlap.
    """
    field_values = [rng.next_u64() | 1 for _ in range(fields)]
    gbase, v, acc = b.regs.int_regs(3)
    struct_base = b.data.alloc_words(field_values)

    def setup() -> None:
        b.load_imm64(gbase, struct_base)
        b.movz(acc, 0)

    def body() -> None:
        for _ in range(reps):
            for field_index in range(fields):
                b.ldr(v, gbase, field_index * 8)
                b.add(acc, acc, v)

    return Kernel("const_reload", setup, body)


def mov_shuffle(
    b: ProgramBuilder,
    rng: XorShift64,
    *,
    reps: int = 2,
    chain: int = 2,
) -> Kernel:
    """Register-to-register moves of a live value (move-elimination fodder)."""
    src = b.regs.int_reg()
    links = b.regs.int_regs(chain)
    acc = b.regs.int_reg()

    def setup() -> None:
        b.movz(src, rng.next_below(1 << 16))
        b.movz(acc, 0)

    def body() -> None:
        for _ in range(reps):
            b.addi(src, src, 5)
            previous = src
            for link in links:
                b.mov(link, previous)
                previous = link
            b.add(acc, acc, previous)

    return Kernel("mov_shuffle", setup, body)


def call_ret(
    b: ProgramBuilder,
    rng: XorShift64,
    *,
    reps: int = 1,
    functions: int = 2,
    body_alu: int = 3,
) -> Kernel:
    """Calls through tiny leaf functions (return-address-stack exercise)."""
    arg, acc = b.regs.int_regs(2)
    labels = [b.fresh_label(f"fn{k}") for k in range(functions)]
    salts = [rng.next_below(1 << 12) | 1 for _ in range(functions)]

    def emit_functions() -> None:
        for label_name, salt in zip(labels, salts):
            b.label(label_name)
            for _ in range(body_alu):
                b.addi(arg, arg, salt)
                b.eori(arg, arg, salt * 3)
            b.ret()

    def setup() -> None:
        b.movz(arg, 1)
        b.movz(acc, 0)

    def body() -> None:
        for _ in range(reps):
            for label_name in labels:
                b.bl(label_name)
                b.add(acc, acc, arg)

    return Kernel("call_ret", setup, body, functions=emit_functions)


# ---------------------------------------------------------------------------
# Chain-structured kernels: these put the predictable value ON the critical
# path, which is where RSEP/VP speedups actually come from.  An out-of-order
# core already overlaps independent work; only serial dependence chains (and
# branch resolution) leave headroom for value speculation.
# ---------------------------------------------------------------------------


def ring_chase(
    b: ProgramBuilder,
    rng: XorShift64,
    *,
    ring_nodes: int = 10,
    reps: int = 2,
    payload: bool = True,
    payload_branch: bool = False,
    deref_bytes: int = 0,
) -> Kernel:
    """Serial pointer chase around a *small, hot* ring (the mcf pattern).

    ``p = load(p)`` is a loop-carried 4-cycle-per-step recurrence even when
    every node hits the L1.  Because the ring is revisited every
    ``ring_nodes`` steps, each chase load's value equals the value the same
    static load produced one lap ago — a *stable* IDist within the ROB.
    RSEP therefore hands the next address to dependents immediately and
    de-serialises the chase, while value prediction sees a non-strided,
    period-``ring_nodes`` sequence it cannot capture.  This is the §IV.H.2
    "loads can use registers from instructions on a different dependency
    chain" win.

    ``payload_branch`` adds an unpredictable branch fed by (payload ^
    xorshift): RSEP delivers the payload early, shortening the branch
    resolution time and thus the misprediction penalty.  ``deref_bytes`` > 0
    adds a second-level load into a large array indexed by the payload —
    the memory-level-parallelism variant.
    """
    node_base = b.data.alloc(ring_nodes * 32, align=32)
    for position in range(ring_nodes):
        successor = (position + 1) % ring_nodes
        b.data.poke(node_base + position * 32, node_base + successor * 32)
        payload = rng.next_u64()
        if deref_bytes:
            payload &= (deref_bytes - 1) & ~7
        b.data.poke(node_base + position * 32 + 8, payload)

    p, v, t, acc = b.regs.int_regs(4)
    if deref_bytes:
        big_base, w = b.regs.int_regs(2)
        big = b.data.alloc(deref_bytes)
    if payload_branch:
        s, scratch = b.regs.int_regs(2)
        scratch_slot = b.data.alloc(64)
    seed = rng.next_u64() | 1

    def setup() -> None:
        b.load_imm64(p, node_base)
        b.movz(acc, 0)
        if deref_bytes:
            b.load_imm64(big_base, big)
        if payload_branch:
            b.load_imm64(s, seed)
            b.load_imm64(scratch, scratch_slot)

    def body() -> None:
        if payload_branch:
            # Advance the noise once per iteration, off the chase chain,
            # so each step stays light and pair distances stay short.
            b.lsli(t, s, 13)
            b.add(s, s, t)
            b.lsri(t, s, 9)
            b.eor(s, s, t)
        for step in range(reps):
            b.ldr(p, p)          # serial recurrence; RSEP-collapsible
            if not payload:
                # Keep load-queue pressure low (one load per step); touch
                # the accumulator once per lap so the producer count per
                # lap stays constant (distance stability).
                if step % ring_nodes == ring_nodes - 1:
                    b.add(acc, acc, p)
                continue
            b.ldr(v, p, 8)       # payload: periodic, stable distance
            if deref_bytes:
                b.add(w, big_base, v)
                b.ldr(w, w)      # second level: scattered, larger footprint
                b.eor(acc, acc, w)
            if payload_branch:
                b.eor(t, v, s)   # slow payload × fast noise
                b.andi(t, t, 1)
                skip = b.fresh_label("ring")
                # The taken arm holds only a store: stores produce no
                # register result, so the lap's producer count — and hence
                # the pair's IDist — stays stable either way.
                b.beq(t, XZR, skip)
                b.str_(acc, scratch)
                b.label(skip)
                b.add(acc, acc, v)
            else:
                b.add(acc, acc, v)

    return Kernel("ring_chase", setup, body)


def xor_ring(
    b: ProgramBuilder,
    rng: XorShift64,
    *,
    chain: int = 6,
    reps: int = 1,
    period_two: bool = True,
    with_move: bool = False,
) -> Kernel:
    """A serial XOR chain whose values recur with period 1 or 2 iterations.

    ``x ^= c1; x ^= c2; …`` is a 1-cycle-per-link loop-carried chain.  The
    XOR constants make every link's value sequence periodic: with
    ``period_two`` the iteration-XOR is non-zero, so values alternate
    A,B,A,B — last-value/stride prediction fails but the IDist to the
    same link two iterations ago is rock-stable, and RSEP collapses the
    whole chain (the dealII non-load redundancy).  With ``period_two``
    False the constants cancel and values also repeat every iteration,
    which value prediction captures as well (overlap case).

    ``with_move`` threads one register-register move through the chain —
    a real dependency that move elimination (and hence RSEP, which always
    brings move elimination along) removes at rename.
    """
    x, acc = b.regs.int_regs(2)
    if with_move:
        move_tmp = b.regs.int_reg()
    constants = [rng.next_below(1 << 32) | 1 for _ in range(chain - 1)]
    closing = 0
    for value in constants:
        closing ^= value
    if period_two:
        closing ^= 0x5A5A_A5A5  # leave a non-zero iteration XOR
    constants.append(closing)

    def setup() -> None:
        b.load_imm64(x, rng.next_u64() | 1)
        b.movz(acc, 0)

    def body() -> None:
        for _ in range(reps):
            for constant in constants[:-1]:
                b.eori(x, x, constant)
            if with_move:
                b.mov(move_tmp, x)      # on the chain; elimination-fodder
                b.eori(x, move_tmp, constants[-1])
            else:
                b.eori(x, x, constants[-1])
            b.add(acc, acc, x)

    return Kernel("xor_ring", setup, body)


def stride_chain(
    b: ProgramBuilder,
    rng: XorShift64,
    *,
    chain: int = 5,
    reps: int = 1,
) -> Kernel:
    """A serial add chain producing strided values (the VP-only pattern).

    ``x += c1; x += c2; …`` is loop-carried and 1 cycle per link; every
    link's value advances by a constant per iteration, so D-VTAGE captures
    the entire chain and collapses it.  No value ever equals a recent older
    value, so equality prediction finds nothing — the wrf/gromacs shape
    where VP is clearly ahead of RSEP (Fig. 4).
    """
    x, acc = b.regs.int_regs(2)
    constants = [rng.next_below(1 << 12) | 1 for _ in range(chain)]

    def setup() -> None:
        b.movz(x, rng.next_below(1 << 16))
        b.movz(acc, 0)

    def body() -> None:
        for _ in range(reps):
            for constant in constants:
                b.addi(x, x, constant)
            b.add(acc, acc, x)

    return Kernel("stride_chain", setup, body)


def const_chain(
    b: ProgramBuilder,
    rng: XorShift64,
    *,
    links: int = 5,
    zero_fields: bool = False,
) -> Kernel:
    """A serial chain threaded through loop-invariant loads.

    Each field's low bits encode the offset of the *next* field, so every
    link masks the previous loaded constant to form the next address and
    loads a never-written field: a 6-cycle-per-link self-addressing
    recurrence (the shape of libquantum's gate-list walks).  Both
    mechanisms collapse it — the loads are constant (VP last-value) and
    recur at a stable cross-iteration distance (RSEP).  The masked offsets
    are non-zero, so the zero predictor gets no purchase on the chain.

    With ``zero_fields`` all fields hold 0 (structural zeros, e.g. an
    all-zero sparse region): every link loads 0 and masks to 0 — none of
    it a decode-visible idiom — so the *zero predictor* collapses the
    chain too.  This is the gamess/libquantum case where zero prediction
    shows real speedup and both VP and RSEP subsume it (§VI.A.1).
    """
    offsets = list(range(1, links + 1))  # link k lives at word k, wraps to 1
    field_values = []
    for position in range(links):
        next_offset = offsets[(position + 1) % links] if links > 1 else 1
        high = (rng.next_u64() << 7) & ((1 << 63) - 1)
        field_values.append(0 if zero_fields else high | (next_offset * 8))
    gbase, v, t, acc = b.regs.int_regs(4)
    struct_base = b.data.alloc_words([0] + field_values)  # word 0 unused

    def setup() -> None:
        b.load_imm64(gbase, struct_base)
        b.movz(v, 0 if zero_fields else 8)
        b.movz(acc, 0)

    def body() -> None:
        for _ in range(links):
            b.andi(t, v, 0x78)        # next-field offset (0 only for zeros)
            b.add(t, gbase, t)
            b.ldr(v, t)               # loop-invariant field
        b.add(acc, acc, v)

    return Kernel("const_chain", setup, body)


def mixed_chain(
    b: ProgramBuilder,
    rng: XorShift64,
    *,
    stride_links: int = 10,
    spills: int = 2,
    segment: int = 5,
) -> Kernel:
    """One serial chain alternating strided ALU links and spill-reloads.

    The strided segments are what value prediction collapses.  Before each
    spill the value is XORed with a fast-changing noise register, so the
    *stored/reloaded* value is irregular — VP cannot predict the reload,
    but RSEP can (the reload equals the XOR that produced it, at a stable
    distance), and the noise is undone right after.  Each mechanism
    removes its own links; together they flatten the chain — the
    xalancbmk shape where RSEP and VP both win and combine well (Fig. 4).
    """
    x, sp, w, noise, acc = b.regs.int_regs(5)
    slots = b.data.alloc(64 + spills * 8)
    constants = [rng.next_below(1 << 10) | 1 for _ in range(stride_links)]
    seed = rng.next_u64() | 1

    def setup() -> None:
        b.load_imm64(sp, slots)
        b.movz(x, rng.next_below(1 << 16))
        b.load_imm64(noise, seed)
        b.movz(acc, 0)

    def body() -> None:
        # Advance the noise off the critical chain (xorshift, irregular).
        b.lsli(w, noise, 13)
        b.add(noise, noise, w)
        b.lsri(w, noise, 9)
        b.eor(noise, noise, w)
        remaining = list(constants)
        spill_slot = 0
        while remaining:
            for constant in remaining[:segment]:
                b.addi(x, x, constant)
            remaining = remaining[segment:]
            if spill_slot < spills:
                b.eor(x, x, noise)                  # hide the stride
                b.str_(x, sp, spill_slot * 8)
                b.ldr(w, sp, spill_slot * 8)        # RSEP-collapsible
                b.eor(x, w, noise)                  # unhide
                spill_slot += 1
        b.add(acc, acc, x)

    return Kernel("mixed_chain", setup, body)


def late_producer_pair(
    b: ProgramBuilder,
    rng: XorShift64,
    *,
    elements: int = 65536,
    reps: int = 1,
    spacing: int = 3,
) -> Kernel:
    """Equal-value pairs whose *producer* arrives late (the bzip2 hazard).

    A cache-missing load produces a value; a few instructions later a cheap
    L1-resident mirror load produces the *same* value.  Predicting (or even
    training through validation, §IV.B.3) makes the cheap consumer — and
    its dependents — wait for the slow producer: the critical-path
    lengthening that causes the sampling-threshold-15 slowdown in Fig. 6.
    """
    elements = _pow2_words(elements)
    mirror_elements = 512
    values = [rng.next_u64() for _ in range(mirror_elements)]
    big = b.data.alloc_words(
        [values[i % mirror_elements] for i in range(elements)]
    )
    mirror = b.data.alloc_words(values)
    base, mbase, off, v1, v2, acc = b.regs.int_regs(6)
    mask = elements * 8 - 1
    mmask = mirror_elements * 8 - 1

    def setup() -> None:
        b.load_imm64(base, big)
        b.load_imm64(mbase, mirror)
        b.movz(off, 0)
        b.movz(acc, 0)

    def body() -> None:
        for _ in range(reps):
            b.addi(off, off, 8 * 173)      # scattered: misses often
            b.andi(off, off, mask)
            b.add(v1, base, off)
            b.ldr(v1, v1)                   # slow producer
            for _ in range(spacing):
                b.addi(acc, acc, 1)
            b.andi(v2, off, mmask)
            b.add(v2, mbase, v2)
            b.ldr(v2, v2)                   # fast consumer, equal value
            b.add(acc, acc, v2)

    return Kernel("late_producer_pair", setup, body)
