"""Functional interpreter: executes programs into dynamic-instruction traces.

The interpreter is the architectural reference model.  It executes a
:class:`~repro.isa.program.Program` with real 64-bit semantics and records a
:class:`~repro.isa.instruction.DynInst` per committed instruction — result
values, effective addresses and branch outcomes.  The timing model replays
this committed path and resolves all speculation against it.

Dispatch is table-driven: every data-path opcode has a handler in
``_DISPATCH`` (indexed by opcode number), and :func:`execute` pre-resolves
one handler per *static* instruction before the dynamic loop starts, so the
hot loop performs one list index and one call instead of walking an opcode
``if``/``elif`` chain.  Static per-instruction properties (source-register
visibility, zero-idiom/move flags, PCs, conditionality) are likewise
decoded once per static instruction; the :class:`DynInst` constructor
additionally precomputes the flags the timing model reads every cycle
(``is_load``/``is_store``/``is_branch``, FU class, cache-line index,
RSEP eligibility).
"""

from __future__ import annotations

import struct

from repro.common.bitops import MASK64, mask64, to_signed64
from repro.isa.instruction import DynInst, NO_ADDR, NO_REG
from repro.isa.opcodes import OP_INFO, Opcode
from repro.isa.program import Program
from repro.isa.registers import NUM_ARCH_REGS, XZR


def float_to_bits(value: float) -> int:
    """Raw 64-bit pattern of a float64."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_float(bits: int) -> float:
    """float64 value of a raw 64-bit pattern."""
    return struct.unpack("<d", struct.pack("<Q", bits & ((1 << 64) - 1)))[0]


def _signed_div(dividend: int, divisor: int) -> int:
    """Hardware-style signed division: truncate toward zero, x/0 == 0."""
    a = to_signed64(dividend)
    b = to_signed64(divisor)
    if b == 0:
        return 0
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return mask64(quotient)


def _fp_op(op, a_bits: int, b_bits: int) -> int:
    """Apply a float64 binary operation on raw bit patterns."""
    a = bits_to_float(a_bits)
    b = bits_to_float(b_bits)
    try:
        result = op(a, b)
    except (OverflowError, ZeroDivisionError):
        result = float("inf") if (a >= 0) == (b >= 0) else float("-inf")
    if result != result:  # NaN: canonicalise
        return 0x7FF8_0000_0000_0000
    try:
        return float_to_bits(result)
    except (OverflowError, struct.error):
        return float_to_bits(float("inf") if result > 0 else float("-inf"))


class Machine:
    """Architectural state: unified register file plus word-grain memory."""

    __slots__ = ("regs", "memory")

    def __init__(self, memory_image: dict[int, int] | None = None) -> None:
        self.regs = [0] * NUM_ARCH_REGS
        # Maps word address (byte address >> 3) -> 64-bit value.
        self.memory = dict(memory_image) if memory_image else {}

    def read_reg(self, reg: int) -> int:
        if reg == XZR:
            return 0
        return self.regs[reg]

    def write_reg(self, reg: int, value: int) -> None:
        if reg != XZR:
            self.regs[reg] = mask64(value)

    def load_word(self, addr: int) -> int:
        return self.memory.get(addr >> 3, 0)

    def load_byte(self, addr: int) -> int:
        word = self.memory.get(addr >> 3, 0)
        return (word >> ((addr & 7) * 8)) & 0xFF

    def store_word(self, addr: int, value: int) -> None:
        self.memory[addr >> 3] = mask64(value)


class Trace:
    """A committed-path dynamic instruction trace.

    Stored as an indexable list so the timing model can rewind to any point
    after a squash.
    """

    def __init__(self, name: str, instructions: list[DynInst]) -> None:
        self.name = name
        self.instructions = instructions

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> DynInst:
        return self.instructions[index]

    def __iter__(self):
        return iter(self.instructions)

    @property
    def result_producers(self) -> int:
        return sum(1 for d in self.instructions if d.produces_result())


class InterpreterError(RuntimeError):
    """Raised on malformed execution (e.g. runaway PC)."""


# ---------------------------------------------------------------------------
# Data-path handlers
# ---------------------------------------------------------------------------
# Each handler executes one non-control instruction against machine state
# and returns ``(dest, result, addr)``.  The zero register is readable
# directly from the register file: ``write_reg`` never writes it, so
# ``regs[XZR]`` is always 0 and the per-read XZR branch can be skipped.
# Control flow (branches, calls, returns, HALT) stays in :func:`execute`,
# which owns the program counter.


def _ex_add(m, i):
    r = m.regs
    return i.rd, (r[i.rs1] + r[i.rs2]) & MASK64, NO_ADDR


def _ex_addi(m, i):
    return i.rd, (m.regs[i.rs1] + i.imm) & MASK64, NO_ADDR


def _ex_sub(m, i):
    r = m.regs
    return i.rd, (r[i.rs1] - r[i.rs2]) & MASK64, NO_ADDR


def _ex_subi(m, i):
    return i.rd, (m.regs[i.rs1] - i.imm) & MASK64, NO_ADDR


def _ex_and(m, i):
    r = m.regs
    return i.rd, r[i.rs1] & r[i.rs2], NO_ADDR


def _ex_andi(m, i):
    return i.rd, m.regs[i.rs1] & (i.imm & MASK64), NO_ADDR


def _ex_orr(m, i):
    r = m.regs
    return i.rd, r[i.rs1] | r[i.rs2], NO_ADDR


def _ex_orri(m, i):
    return i.rd, m.regs[i.rs1] | (i.imm & MASK64), NO_ADDR


def _ex_eor(m, i):
    r = m.regs
    return i.rd, r[i.rs1] ^ r[i.rs2], NO_ADDR


def _ex_eori(m, i):
    return i.rd, m.regs[i.rs1] ^ (i.imm & MASK64), NO_ADDR


def _ex_lsl(m, i):
    r = m.regs
    return i.rd, (r[i.rs1] << (r[i.rs2] & 63)) & MASK64, NO_ADDR


def _ex_lsli(m, i):
    return i.rd, (m.regs[i.rs1] << (i.imm & 63)) & MASK64, NO_ADDR


def _ex_lsr(m, i):
    r = m.regs
    return i.rd, r[i.rs1] >> (r[i.rs2] & 63), NO_ADDR


def _ex_lsri(m, i):
    return i.rd, m.regs[i.rs1] >> (i.imm & 63), NO_ADDR


def _ex_movz(m, i):
    return i.rd, i.imm & MASK64, NO_ADDR


def _ex_mov(m, i):
    return i.rd, m.regs[i.rs1], NO_ADDR


def _ex_mul(m, i):
    r = m.regs
    return i.rd, (r[i.rs1] * r[i.rs2]) & MASK64, NO_ADDR


def _ex_div(m, i):
    r = m.regs
    return i.rd, _signed_div(r[i.rs1], r[i.rs2]), NO_ADDR


def _ex_ldr(m, i):
    addr = ((m.regs[i.rs1] + i.imm) & MASK64) & ~7
    return i.rd, m.memory.get(addr >> 3, 0), addr


def _ex_ldrb(m, i):
    addr = (m.regs[i.rs1] + i.imm) & MASK64
    word = m.memory.get(addr >> 3, 0)
    return i.rd, (word >> ((addr & 7) * 8)) & 0xFF, addr


def _ex_str(m, i):
    r = m.regs
    addr = ((r[i.rs1] + i.imm) & MASK64) & ~7
    m.memory[addr >> 3] = r[i.rs2]
    return NO_REG, 0, addr


def _ex_fadd(m, i):
    r = m.regs
    return i.rd, _fp_op(float.__add__, r[i.rs1], r[i.rs2]), NO_ADDR


def _ex_fsub(m, i):
    r = m.regs
    return i.rd, _fp_op(float.__sub__, r[i.rs1], r[i.rs2]), NO_ADDR


def _ex_fmul(m, i):
    r = m.regs
    return i.rd, _fp_op(float.__mul__, r[i.rs1], r[i.rs2]), NO_ADDR


def _ex_fdiv(m, i):
    r = m.regs
    return i.rd, _fp_op(float.__truediv__, r[i.rs1], r[i.rs2]), NO_ADDR


def _ex_fmov(m, i):
    return i.rd, m.regs[i.rs1], NO_ADDR


def _ex_fmovi(m, i):
    return i.rd, i.imm & MASK64, NO_ADDR


def _ex_fldr(m, i):
    addr = ((m.regs[i.rs1] + i.imm) & MASK64) & ~7
    return i.rd, m.memory.get(addr >> 3, 0), addr


def _ex_fstr(m, i):
    r = m.regs
    addr = ((r[i.rs1] + i.imm) & MASK64) & ~7
    m.memory[addr >> 3] = r[i.rs2]
    return NO_REG, 0, addr


def _ex_nop(m, i):
    return NO_REG, 0, NO_ADDR


#: Handler per opcode number; ``None`` marks control flow handled inline.
_DISPATCH: list = [None] * len(Opcode)
for _opcode, _handler in {
    Opcode.ADD: _ex_add, Opcode.ADDI: _ex_addi,
    Opcode.SUB: _ex_sub, Opcode.SUBI: _ex_subi,
    Opcode.AND: _ex_and, Opcode.ANDI: _ex_andi,
    Opcode.ORR: _ex_orr, Opcode.ORRI: _ex_orri,
    Opcode.EOR: _ex_eor, Opcode.EORI: _ex_eori,
    Opcode.LSL: _ex_lsl, Opcode.LSLI: _ex_lsli,
    Opcode.LSR: _ex_lsr, Opcode.LSRI: _ex_lsri,
    Opcode.MOVZ: _ex_movz, Opcode.MOV: _ex_mov,
    Opcode.MUL: _ex_mul, Opcode.DIV: _ex_div,
    Opcode.LDR: _ex_ldr, Opcode.LDRB: _ex_ldrb, Opcode.STR: _ex_str,
    Opcode.FADD: _ex_fadd, Opcode.FSUB: _ex_fsub,
    Opcode.FMUL: _ex_fmul, Opcode.FDIV: _ex_fdiv,
    Opcode.FMOV: _ex_fmov, Opcode.FMOVI: _ex_fmovi,
    Opcode.FLDR: _ex_fldr, Opcode.FSTR: _ex_fstr,
    Opcode.NOP: _ex_nop,
}.items():
    _DISPATCH[_opcode] = _handler
del _opcode, _handler


def _predecode(program: Program):
    """Per-static-instruction tables resolved once per :func:`execute`.

    Returns ``(handlers, pcs, statics)`` where ``statics[i]`` is
    ``(src1, src2, zero_idiom, move, is_conditional)`` with source fields
    already masked by the opcode's read visibility.
    """
    instructions = program.instructions
    handlers = [_DISPATCH[instr.opcode] for instr in instructions]
    pcs = [program.pc_of(index) for index in range(len(instructions))]
    statics = []
    for instr in instructions:
        info = OP_INFO[instr.opcode]
        statics.append((
            instr.rs1 if info.reads_rs1 else NO_REG,
            instr.rs2 if info.reads_rs2 else NO_REG,
            instr.is_zero_idiom(),
            instr.is_move(),
            info.is_conditional,
        ))
    return handlers, pcs, statics


def execute(
    program: Program,
    max_instructions: int,
    machine: Machine | None = None,
) -> Trace:
    """Run *program* for at most *max_instructions* dynamic instructions.

    Returns the committed-path :class:`Trace`.  Execution stops early at
    ``HALT``.  The caller may pass a pre-initialised :class:`Machine` (e.g.
    with a data image); by default an image-less machine is used.
    """
    m = machine if machine is not None else Machine()
    regs = m.regs
    instructions = program.instructions
    handlers, pcs, statics = _predecode(program)
    trace: list[DynInst] = []
    append = trace.append

    index = 0
    seq = 0
    num_static = len(instructions)
    while seq < max_instructions:
        if not 0 <= index < num_static:
            raise InterpreterError(f"PC escaped program: index {index}")
        instr = instructions[index]
        handler = handlers[index]
        src1, src2, zero_idiom, move, is_conditional = statics[index]

        taken = False
        target_pc = -1

        if handler is not None:
            dest, result, addr = handler(m, instr)
            next_index = index + 1
        else:
            # ---- control flow (and HALT), PC-owning path --------------
            op = instr.opcode
            dest = NO_REG
            result = 0
            addr = NO_ADDR
            next_index = index + 1

            if op == Opcode.HALT:
                break
            if op == Opcode.B:
                taken = True
                next_index = instr.target
                target_pc = program.pc_of(next_index)
            elif op == Opcode.BEQ:
                taken = regs[src1] == regs[src2]
            elif op == Opcode.BNE:
                taken = regs[src1] != regs[src2]
            elif op == Opcode.BLT:
                taken = to_signed64(regs[src1]) < to_signed64(regs[src2])
            elif op == Opcode.BGE:
                taken = to_signed64(regs[src1]) >= to_signed64(regs[src2])
            elif op == Opcode.BL:
                taken = True
                result = program.pc_of(index + 1)
                dest = instr.rd
                next_index = instr.target
                target_pc = program.pc_of(next_index)
            elif op == Opcode.RET:
                taken = True
                return_pc = regs[src1]
                next_index = program.index_of(return_pc)
                target_pc = return_pc
            else:  # pragma: no cover - defensive
                raise InterpreterError(f"unimplemented opcode {op!r}")

            # Conditional branches resolve their target only if taken.
            if is_conditional:
                if taken:
                    next_index = instr.target
                    target_pc = program.pc_of(next_index)
                else:
                    target_pc = program.pc_of(index + 1)

        if dest != NO_REG:
            if dest != XZR:
                regs[dest] = result & MASK64
            else:
                dest = NO_REG  # architectural no-op: not a result producer
                result = 0

        append(
            DynInst(
                seq=seq,
                pc=pcs[index],
                opcode=instr.opcode,
                dest=dest,
                src1=src1,
                src2=src2,
                result=result,
                addr=addr,
                taken=taken,
                target_pc=target_pc,
                zero_idiom=zero_idiom,
                move=move,
            )
        )
        seq += 1
        index = next_index

    return Trace(program.name, trace)
