"""Functional interpreter: executes programs into dynamic-instruction traces.

The interpreter is the architectural reference model.  It executes a
:class:`~repro.isa.program.Program` with real 64-bit semantics and records a
:class:`~repro.isa.instruction.DynInst` per committed instruction — result
values, effective addresses and branch outcomes.  The timing model replays
this committed path and resolves all speculation against it.
"""

from __future__ import annotations

import struct

from repro.common.bitops import mask64, to_signed64
from repro.isa.instruction import DynInst, NO_ADDR, NO_REG
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import NUM_ARCH_REGS, XZR


def float_to_bits(value: float) -> int:
    """Raw 64-bit pattern of a float64."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_float(bits: int) -> float:
    """float64 value of a raw 64-bit pattern."""
    return struct.unpack("<d", struct.pack("<Q", bits & ((1 << 64) - 1)))[0]


def _signed_div(dividend: int, divisor: int) -> int:
    """Hardware-style signed division: truncate toward zero, x/0 == 0."""
    a = to_signed64(dividend)
    b = to_signed64(divisor)
    if b == 0:
        return 0
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return mask64(quotient)


def _fp_op(op, a_bits: int, b_bits: int) -> int:
    """Apply a float64 binary operation on raw bit patterns."""
    a = bits_to_float(a_bits)
    b = bits_to_float(b_bits)
    try:
        result = op(a, b)
    except (OverflowError, ZeroDivisionError):
        result = float("inf") if (a >= 0) == (b >= 0) else float("-inf")
    if result != result:  # NaN: canonicalise
        return 0x7FF8_0000_0000_0000
    try:
        return float_to_bits(result)
    except (OverflowError, struct.error):
        return float_to_bits(float("inf") if result > 0 else float("-inf"))


class Machine:
    """Architectural state: unified register file plus word-grain memory."""

    __slots__ = ("regs", "memory")

    def __init__(self, memory_image: dict[int, int] | None = None) -> None:
        self.regs = [0] * NUM_ARCH_REGS
        # Maps word address (byte address >> 3) -> 64-bit value.
        self.memory = dict(memory_image) if memory_image else {}

    def read_reg(self, reg: int) -> int:
        if reg == XZR:
            return 0
        return self.regs[reg]

    def write_reg(self, reg: int, value: int) -> None:
        if reg != XZR:
            self.regs[reg] = mask64(value)

    def load_word(self, addr: int) -> int:
        return self.memory.get(addr >> 3, 0)

    def load_byte(self, addr: int) -> int:
        word = self.memory.get(addr >> 3, 0)
        return (word >> ((addr & 7) * 8)) & 0xFF

    def store_word(self, addr: int, value: int) -> None:
        self.memory[addr >> 3] = mask64(value)


class Trace:
    """A committed-path dynamic instruction trace.

    Stored as an indexable list so the timing model can rewind to any point
    after a squash.
    """

    def __init__(self, name: str, instructions: list[DynInst]) -> None:
        self.name = name
        self.instructions = instructions

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> DynInst:
        return self.instructions[index]

    def __iter__(self):
        return iter(self.instructions)

    @property
    def result_producers(self) -> int:
        return sum(1 for d in self.instructions if d.produces_result())


class InterpreterError(RuntimeError):
    """Raised on malformed execution (e.g. runaway PC)."""


def execute(
    program: Program,
    max_instructions: int,
    machine: Machine | None = None,
) -> Trace:
    """Run *program* for at most *max_instructions* dynamic instructions.

    Returns the committed-path :class:`Trace`.  Execution stops early at
    ``HALT``.  The caller may pass a pre-initialised :class:`Machine` (e.g.
    with a data image); by default an image-less machine is used.
    """
    m = machine if machine is not None else Machine()
    regs = m.regs
    instructions = program.instructions
    trace: list[DynInst] = []
    append = trace.append

    index = 0
    seq = 0
    num_static = len(instructions)
    while seq < max_instructions:
        if not 0 <= index < num_static:
            raise InterpreterError(f"PC escaped program: index {index}")
        instr = instructions[index]
        op = instr.opcode
        pc = program.pc_of(index)
        rd = instr.rd
        next_index = index + 1

        if op == Opcode.HALT:
            break

        dest = NO_REG
        result = 0
        addr = NO_ADDR
        taken = False
        target_pc = -1

        if op == Opcode.ADD:
            result = mask64(m.read_reg(instr.rs1) + m.read_reg(instr.rs2))
            dest = rd
        elif op == Opcode.ADDI:
            result = mask64(m.read_reg(instr.rs1) + instr.imm)
            dest = rd
        elif op == Opcode.SUB:
            result = mask64(m.read_reg(instr.rs1) - m.read_reg(instr.rs2))
            dest = rd
        elif op == Opcode.SUBI:
            result = mask64(m.read_reg(instr.rs1) - instr.imm)
            dest = rd
        elif op == Opcode.AND:
            result = m.read_reg(instr.rs1) & m.read_reg(instr.rs2)
            dest = rd
        elif op == Opcode.ANDI:
            result = m.read_reg(instr.rs1) & mask64(instr.imm)
            dest = rd
        elif op == Opcode.ORR:
            result = m.read_reg(instr.rs1) | m.read_reg(instr.rs2)
            dest = rd
        elif op == Opcode.ORRI:
            result = m.read_reg(instr.rs1) | mask64(instr.imm)
            dest = rd
        elif op == Opcode.EOR:
            result = m.read_reg(instr.rs1) ^ m.read_reg(instr.rs2)
            dest = rd
        elif op == Opcode.EORI:
            result = m.read_reg(instr.rs1) ^ mask64(instr.imm)
            dest = rd
        elif op == Opcode.LSL:
            result = mask64(m.read_reg(instr.rs1) << (m.read_reg(instr.rs2) & 63))
            dest = rd
        elif op == Opcode.LSLI:
            result = mask64(m.read_reg(instr.rs1) << (instr.imm & 63))
            dest = rd
        elif op == Opcode.LSR:
            result = m.read_reg(instr.rs1) >> (m.read_reg(instr.rs2) & 63)
            dest = rd
        elif op == Opcode.LSRI:
            result = m.read_reg(instr.rs1) >> (instr.imm & 63)
            dest = rd
        elif op == Opcode.MOVZ:
            result = mask64(instr.imm)
            dest = rd
        elif op == Opcode.MOV:
            result = m.read_reg(instr.rs1)
            dest = rd
        elif op == Opcode.MUL:
            result = mask64(m.read_reg(instr.rs1) * m.read_reg(instr.rs2))
            dest = rd
        elif op == Opcode.DIV:
            result = _signed_div(m.read_reg(instr.rs1), m.read_reg(instr.rs2))
            dest = rd
        elif op == Opcode.LDR:
            addr = mask64(m.read_reg(instr.rs1) + instr.imm) & ~7
            result = m.load_word(addr)
            dest = rd
        elif op == Opcode.LDRB:
            addr = mask64(m.read_reg(instr.rs1) + instr.imm)
            result = m.load_byte(addr)
            dest = rd
        elif op == Opcode.STR:
            addr = mask64(m.read_reg(instr.rs1) + instr.imm) & ~7
            m.store_word(addr, m.read_reg(instr.rs2))
        elif op == Opcode.B:
            taken = True
            next_index = instr.target
            target_pc = program.pc_of(next_index)
        elif op == Opcode.BEQ:
            taken = m.read_reg(instr.rs1) == m.read_reg(instr.rs2)
        elif op == Opcode.BNE:
            taken = m.read_reg(instr.rs1) != m.read_reg(instr.rs2)
        elif op == Opcode.BLT:
            taken = to_signed64(m.read_reg(instr.rs1)) < to_signed64(
                m.read_reg(instr.rs2)
            )
        elif op == Opcode.BGE:
            taken = to_signed64(m.read_reg(instr.rs1)) >= to_signed64(
                m.read_reg(instr.rs2)
            )
        elif op == Opcode.BL:
            taken = True
            result = program.pc_of(index + 1)
            dest = rd
            next_index = instr.target
            target_pc = program.pc_of(next_index)
        elif op == Opcode.RET:
            taken = True
            return_pc = m.read_reg(instr.rs1)
            next_index = program.index_of(return_pc)
            target_pc = return_pc
        elif op == Opcode.FADD:
            result = _fp_op(lambda a, b: a + b, regs[instr.rs1], regs[instr.rs2])
            dest = rd
        elif op == Opcode.FSUB:
            result = _fp_op(lambda a, b: a - b, regs[instr.rs1], regs[instr.rs2])
            dest = rd
        elif op == Opcode.FMUL:
            result = _fp_op(lambda a, b: a * b, regs[instr.rs1], regs[instr.rs2])
            dest = rd
        elif op == Opcode.FDIV:
            result = _fp_op(lambda a, b: a / b, regs[instr.rs1], regs[instr.rs2])
            dest = rd
        elif op == Opcode.FMOV:
            result = regs[instr.rs1]
            dest = rd
        elif op == Opcode.FMOVI:
            result = mask64(instr.imm)
            dest = rd
        elif op == Opcode.FLDR:
            addr = mask64(m.read_reg(instr.rs1) + instr.imm) & ~7
            result = m.load_word(addr)
            dest = rd
        elif op == Opcode.FSTR:
            addr = mask64(m.read_reg(instr.rs1) + instr.imm) & ~7
            m.store_word(addr, regs[instr.rs2])
        elif op == Opcode.NOP:
            pass
        else:  # pragma: no cover - defensive
            raise InterpreterError(f"unimplemented opcode {op!r}")

        # Conditional branches resolve their target only if taken.
        if instr.info.is_conditional:
            if taken:
                next_index = instr.target
                target_pc = program.pc_of(next_index)
            else:
                target_pc = program.pc_of(index + 1)

        if dest != NO_REG:
            m.write_reg(dest, result)
            if dest == XZR:
                dest = NO_REG  # architectural no-op: not a result producer
                result = 0

        append(
            DynInst(
                seq=seq,
                pc=pc,
                opcode=op,
                dest=dest,
                src1=instr.rs1 if instr.info.reads_rs1 else NO_REG,
                src2=instr.rs2 if instr.info.reads_rs2 else NO_REG,
                result=result,
                addr=addr,
                taken=taken,
                target_pc=target_pc,
                zero_idiom=instr.is_zero_idiom(),
                move=instr.is_move(),
            )
        )
        seq += 1
        index = next_index

    return Trace(program.name, trace)
