"""SPEC CPU2006 stand-in benchmarks.

SPEC'06 is proprietary and its binaries/inputs are unavailable here, so each
benchmark name is bound to a synthetic kernel mix calibrated to reproduce the
*stream properties* the paper reports for that benchmark: value-redundancy
profile (Fig. 1), which mechanism captures it (Fig. 4/5), zero density,
branch behaviour and memory footprint.  See DESIGN.md §2 for the
substitution rationale; EXPERIMENTS.md records paper-vs-measured shapes.

Different random seeds play the role of the paper's per-benchmark
checkpoints: the code is identical but data contents/layout differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.rng import XorShift64
from repro.isa.program import Program
from repro.workloads import kernels as K
from repro.workloads.builder import ProgramBuilder
from repro.workloads.trace import Machine, Trace, execute

KernelRecipe = Callable[[ProgramBuilder, XorShift64], list[K.Kernel]]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One named benchmark: its suite, behavioural intent and kernel mix."""

    name: str
    suite: str  # "int" or "fp"
    description: str
    recipe: KernelRecipe


@dataclass
class BuiltBenchmark:
    """A benchmark assembled for one seed: program plus initial memory."""

    spec: BenchmarkSpec
    seed: int
    program: Program
    memory_image: dict[int, int]

    def machine(self) -> Machine:
        return Machine(self.memory_image)


def _assemble(spec: BenchmarkSpec, seed: int) -> BuiltBenchmark:
    """Assemble *spec* into a program for one seed."""
    builder = ProgramBuilder(spec.name)
    rng = XorShift64(0xC0FFEE ^ (seed * 0x9E3779B97F4A7C15))
    kernel_list = spec.recipe(builder, rng)

    entry = builder.fresh_label("main")
    builder.b(entry)
    for kernel in kernel_list:
        if kernel.functions is not None:
            kernel.functions()
    builder.label(entry)
    for kernel in kernel_list:
        kernel.setup()
    outer = builder.label(builder.fresh_label("outer"))
    for kernel in kernel_list:
        kernel.body()
    builder.b(outer)
    builder.halt()

    program = builder.build()
    return BuiltBenchmark(spec, seed, program, dict(builder.data.image))


def build_benchmark(name: str, seed: int = 1) -> BuiltBenchmark:
    """Assemble the named benchmark with the given checkpoint seed."""
    if name not in SPEC2006:
        raise KeyError(f"unknown benchmark {name!r}; see benchmark_names()")
    return _assemble(SPEC2006[name], seed)


def generate_trace(name: str, num_instructions: int, seed: int = 1) -> Trace:
    """Assemble and functionally execute a benchmark into a trace."""
    built = build_benchmark(name, seed)
    return execute(built.program, num_instructions, built.machine())


def benchmark_names(suite: str | None = None) -> list[str]:
    """All benchmark names, optionally filtered by suite ("int"/"fp")."""
    return [
        spec.name
        for spec in SPEC2006.values()
        if suite is None or spec.suite == suite
    ]


#: The representative subset the figure benches and CLI default to:
#: every behaviour class the paper discusses — RSEP wins (mcf, hmmer,
#: dealII, omnetpp), VP wins (perlbench, wrf, zeusmp), overlap
#: (libquantum, xalancbmk), zero/ILP (gamess), neutral (gobmk, lbm),
#: FP streaming (bwaves).
REPRESENTATIVE: tuple[str, ...] = (
    "perlbench", "mcf", "gobmk", "hmmer", "libquantum", "omnetpp",
    "xalancbmk", "bwaves", "gamess", "zeusmp", "dealII", "lbm", "wrf",
)


def representative_names() -> list[str]:
    """The 13-benchmark representative mix (see :data:`REPRESENTATIVE`)."""
    return list(REPRESENTATIVE)


# ---------------------------------------------------------------------------
# Benchmark recipes
# ---------------------------------------------------------------------------
# Shorthand used below: RSEP-only behaviour = equal results at stable
# distance with irregular values (ring_chase, xor_ring, stack_spill);
# VP-only = strided/constant value chains (stride_chain, strided_counters);
# both = loop-invariant loads (const_reload); neither = xorshift noise.
# Serial-chain kernels set the baseline IPC into the SPEC-like 0.6-2.5
# band so speculation has the same headroom it has in the paper.


def _perlbench(b, rng):
    # VP-dominant; RSEP coverage exists but is subsumed by VP (§VI.A.1:
    # "in a single case, perlbench, RSEP is redundant with VP").
    return [
        K.stride_chain(b, rng, chain=30, reps=1),
        K.lcg_noise(b, rng, reps=4),
        K.stack_spill(b, rng, reps=2, spacing=4, vp_friendly=True),
        K.byte_scan(b, rng, reps=2),
        K.branchy(b, rng, reps=1, random_branches=1, pattern_branches=1),
        K.call_ret(b, rng, reps=1, functions=2),
    ]


def _bzip2(b, rng):
    # Byte-entropy coding: hard branches; equal-value pairs whose producer
    # is slow (the critical-path lengthening / sampling-threshold hazard
    # of Fig. 6).
    return [
        K.late_producer_pair(b, rng, reps=2, spacing=3),
        K.byte_scan(b, rng, reps=3, alphabet=32),
        K.branchy(b, rng, reps=2, random_branches=2, pattern_branches=1),
        K.stride_chain(b, rng, chain=6, reps=1),
        K.lcg_noise(b, rng, reps=1),
    ]


def _gcc(b, rng):
    return [
        K.stack_spill(b, rng, reps=1, spacing=6),
        K.const_reload(b, rng, fields=2, reps=1),
        K.stream_sum(b, rng, reps=2),
        K.branchy(b, rng, reps=1, random_branches=1, pattern_branches=1),
        K.mov_shuffle(b, rng, reps=1, chain=2),
        K.stride_chain(b, rng, chain=8, reps=1),
        K.lcg_noise(b, rng, reps=2),
    ]


def _mcf(b, rng):
    # A hot ring chase (serial, L1-resident, RSEP-collapsible) racing a
    # cold large-footprint chase (serial, miss-bound): RSEP removes the
    # longer hot chain and exposes the cold one.  Values are irregular so
    # VP captures little — "in mcf, almost only loads are predicted".
    return [
        K.pointer_chase(b, rng, nodes=4096, reps=1, spacing=2,
                        redundant=True),
        K.ring_chase(b, rng, ring_nodes=8, reps=20, payload=False),
        K.lcg_noise(b, rng, reps=2),
    ]


def _gobmk(b, rng):
    return [
        K.branchy(b, rng, reps=2, random_branches=2, pattern_branches=1),
        K.call_ret(b, rng, reps=1, functions=2),
        K.lcg_noise(b, rng, reps=2),
        K.byte_scan(b, rng, reps=1),
    ]


def _hmmer(b, rng):
    # A long serial XOR recurrence (period two iterations) against an
    # almost-as-long unpredictable xorshift chain: RSEP collapses the
    # former and the latter becomes the bound.  The pair distance spans
    # the whole body twice, beyond a 32-entry FIFO history but inside a
    # 128-entry one (§VI.A.2).
    return [
        K.xor_ring(b, rng, chain=23, reps=1),
        K.lcg_noise(b, rng, reps=5),
        K.stack_spill(b, rng, reps=1, spacing=8),
    ]


def _sjeng(b, rng):
    return [
        K.branchy(b, rng, reps=2, random_branches=2, pattern_branches=2),
        K.call_ret(b, rng, reps=1, functions=3),
        K.lcg_noise(b, rng, reps=2),
        K.mov_shuffle(b, rng, reps=1, chain=2),
    ]


def _libquantum(b, rng):
    # A serial chain through loop-invariant struct fields: both RSEP and
    # VP collapse it (RSEP a little further thanks to the hot ring), plus
    # sparse zeros in long runs for zero-prediction potential (§VI.A.1).
    return [
        K.const_chain(b, rng, links=3),
        K.const_chain(b, rng, links=3, zero_fields=True),
        K.stride_chain(b, rng, chain=17, reps=1),
        K.zero_loads(b, rng, reps=1, zero_density=0.25, zero_run=24),
        K.lcg_noise(b, rng, reps=4),
    ]


def _h264ref(b, rng):
    return [
        K.byte_scan(b, rng, reps=3, alphabet=24),
        K.stream_sum(b, rng, reps=2),
        K.stride_chain(b, rng, chain=8, reps=1),
        K.branchy(b, rng, reps=1, random_branches=1, pattern_branches=1),
    ]


def _omnetpp(b, rng):
    return [
        K.ring_chase(b, rng, ring_nodes=6, reps=11, payload_branch=True),
        K.const_reload(b, rng, fields=1, reps=1),
        K.pointer_chase(b, rng, nodes=16384, reps=1, spacing=2),
        K.stack_spill(b, rng, reps=1, spacing=6),
        K.branchy(b, rng, reps=1, random_branches=1, pattern_branches=0),
    ]


def _astar(b, rng):
    return [
        K.pointer_chase(b, rng, nodes=8192, reps=2, spacing=3,
                        redundant=False),
        K.branchy(b, rng, reps=1, random_branches=2, pattern_branches=0),
        K.lcg_noise(b, rng, reps=2),
    ]


def _xalancbmk(b, rng):
    # Strided chains (VP), an interleaved stride/spill chain plus a hot
    # ring feeding a hard branch (RSEP), and plenty of moves: both
    # mechanisms win and combine (Fig. 4), and the spill distances need a
    # deep FIFO history (§VI.A.2).
    return [
        K.stride_chain(b, rng, chain=34, reps=1),
        K.mixed_chain(b, rng, stride_links=8, spills=2, segment=4),
        K.ring_chase(b, rng, ring_nodes=6, reps=6, payload_branch=True),
        K.mov_shuffle(b, rng, reps=2, chain=3),
        K.lcg_noise(b, rng, reps=5),
    ]


def _bwaves(b, rng):
    return [
        K.fp_stencil(b, rng, elements=32768, reps=3, zero_density=0.02,
                     serial_acc=True, acc_steps=3),
        K.stream_sum(b, rng, reps=1),
        K.lcg_noise(b, rng, reps=2),
    ]


def _gamess(b, rng):
    # Wide, independent work (one of the two benchmarks that often retire
    # 8 eligible instructions per cycle, §IV.D.2) plus genuine zeros in
    # long runs — the zero-prediction beneficiary.
    return [
        K.fp_stencil(b, rng, elements=2048, reps=3, zero_density=0.15,
                     zero_run=16),
        K.zero_loads(b, rng, reps=2, zero_density=0.3, zero_run=96),
        K.const_chain(b, rng, links=2, zero_fields=True),
        K.lcg_noise(b, rng, reps=3),
        K.strided_counters(b, rng, counters=2, reps=1),
    ]


def _milc(b, rng):
    return [
        K.fp_stencil(b, rng, elements=8192, reps=3, zero_density=0.12,
                     zero_run=32, serial_acc=True, acc_steps=3),
        K.zero_loads(b, rng, reps=1, zero_density=0.2, zero_run=32),
        K.lcg_noise(b, rng, reps=3),
    ]


def _zeusmp(b, rng):
    # ~20% zero results (Fig. 1) in long runs, plus strided chains: VP
    # ahead of RSEP (Fig. 4).
    return [
        K.fp_stencil(b, rng, elements=4096, reps=3, zero_density=0.42,
                     zero_run=96, serial_acc=True, acc_steps=3),
        K.zero_loads(b, rng, reps=2, zero_density=0.35, zero_run=96,
                     high_bits_density=0.1),
        K.stride_chain(b, rng, chain=38, reps=1),
        K.lcg_noise(b, rng, reps=3),
    ]


def _gromacs(b, rng):
    return [
        K.stride_chain(b, rng, chain=32, reps=1),
        K.lcg_noise(b, rng, reps=5),
        K.fp_stencil(b, rng, elements=2048, reps=2, zero_density=0.05,
                     serial_acc=True),
        K.stream_sum(b, rng, reps=1),
    ]


def _cactusadm(b, rng):
    return [
        K.fp_stencil(b, rng, elements=8192, reps=4, zero_density=0.45,
                     zero_run=64, serial_acc=True, acc_steps=3),
        K.zero_loads(b, rng, reps=1, zero_density=0.3, zero_run=48),
        K.lcg_noise(b, rng, reps=2),
    ]


def _leslie3d(b, rng):
    return [
        K.fp_stencil(b, rng, elements=8192, reps=3, zero_density=0.15,
                     zero_run=32, serial_acc=True, acc_steps=3),
        K.stream_sum(b, rng, reps=1),
        K.strided_counters(b, rng, counters=2, reps=1),
        K.lcg_noise(b, rng, reps=2),
    ]


def _namd(b, rng):
    return [
        K.fp_stencil(b, rng, elements=4096, reps=3, zero_density=0.02),
        K.lcg_noise(b, rng, reps=3),
        K.branchy(b, rng, reps=1, random_branches=1, pattern_branches=0),
    ]


def _dealii(b, rng):
    # The flagship non-load-redundancy benchmark: a long serial XOR
    # recurrence whose values alternate with period two — RSEP collapses
    # it, VP cannot — plus enough moves for a visible move-elimination
    # speedup (§VI.A.1).
    return [
        K.xor_ring(b, rng, chain=22, reps=1, with_move=True),
        K.lcg_noise(b, rng, reps=5),
        K.mov_shuffle(b, rng, reps=1, chain=2),
        K.const_reload(b, rng, fields=2, reps=1),
        K.byte_scan(b, rng, reps=1),
    ]


def _soplex(b, rng):
    return [
        K.stream_sum(b, rng, reps=2),
        K.pointer_chase(b, rng, nodes=2048, reps=1, spacing=2),
        K.fp_stencil(b, rng, elements=4096, reps=1, zero_density=0.1),
        K.branchy(b, rng, reps=1, random_branches=1, pattern_branches=0),
    ]


def _povray(b, rng):
    return [
        K.fp_stencil(b, rng, elements=4096, reps=2, zero_density=0.02,
                     fdiv_every=2),
        K.call_ret(b, rng, reps=1, functions=2),
        K.branchy(b, rng, reps=1, random_branches=1, pattern_branches=0),
        K.lcg_noise(b, rng, reps=1),
    ]


def _calculix(b, rng):
    return [
        K.fp_stencil(b, rng, elements=2048, reps=2, zero_density=0.1,
                     fdiv_every=3, serial_acc=True, acc_steps=2),
        K.stride_chain(b, rng, chain=6, reps=1),
        K.stream_sum(b, rng, reps=1),
        K.lcg_noise(b, rng, reps=2),
    ]


def _gemsfdtd(b, rng):
    return [
        K.fp_stencil(b, rng, elements=16384, reps=3, zero_density=0.1,
                     zero_run=32, serial_acc=True, acc_steps=3),
        K.stream_sum(b, rng, reps=2),
        K.zero_loads(b, rng, reps=1, zero_density=0.15, zero_run=32),
        K.lcg_noise(b, rng, reps=2),
    ]


def _tonto(b, rng):
    return [
        K.fp_stencil(b, rng, elements=4096, reps=2, zero_density=0.05),
        K.call_ret(b, rng, reps=1, functions=2),
        K.redundant_compute(b, rng, reps=1, spacing=5),
        K.stride_chain(b, rng, chain=6, reps=1),
        K.lcg_noise(b, rng, reps=2),
    ]


def _lbm(b, rng):
    # Wide independent FP work: the other dense-commit-group benchmark
    # (kept deliberately ILP-rich, §IV.D.2); long zero runs avoid
    # transient distance noise.
    return [
        K.fp_stencil(b, rng, elements=32768, reps=4, zero_density=0.02),
        K.strided_counters(b, rng, counters=2, reps=1),
    ]


def _wrf(b, rng):
    # VP clearly ahead of RSEP (Fig. 4): long strided chains plus
    # zero runs.
    return [
        K.stride_chain(b, rng, chain=34, reps=1),
        K.lcg_noise(b, rng, reps=5),
        K.fp_stencil(b, rng, elements=4096, reps=2, zero_density=0.12,
                     zero_run=16, serial_acc=True),
        K.const_reload(b, rng, fields=2, reps=1),
    ]


def _sphinx3(b, rng):
    return [
        K.fp_stencil(b, rng, elements=2048, reps=2, zero_density=0.05,
                     serial_acc=True),
        K.byte_scan(b, rng, reps=2),
        K.stream_sum(b, rng, reps=1),
        K.branchy(b, rng, reps=1, random_branches=1, pattern_branches=1),
    ]


def _spec(name: str, suite: str, description: str,
          recipe: KernelRecipe) -> BenchmarkSpec:
    return BenchmarkSpec(name, suite, description, recipe)


SPEC2006: dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        _spec("perlbench", "int", "VP-dominant; RSEP fully overlapped",
              _perlbench),
        _spec("bzip2", "int", "hard branches; critical-path RSEP pairs",
              _bzip2),
        _spec("gcc", "int", "mixed integer behaviour", _gcc),
        _spec("mcf", "int", "memory-bound; RSEP-only redundant loads",
              _mcf),
        _spec("gobmk", "int", "branchy search; little redundancy", _gobmk),
        _spec("hmmer", "int", "ALU redundancy at long stable distances",
              _hmmer),
        _spec("sjeng", "int", "branchy search with calls", _sjeng),
        _spec("libquantum", "int", "invariant reloads; zeros; both win",
              _libquantum),
        _spec("h264ref", "int", "byte scanning and strides", _h264ref),
        _spec("omnetpp", "int", "heap traversal plus spills", _omnetpp),
        _spec("astar", "int", "pointer chase without redundancy", _astar),
        _spec("xalancbmk", "int", "deep-distance spills, moves, strides",
              _xalancbmk),
        _spec("bwaves", "fp", "streaming FP, little redundancy", _bwaves),
        _spec("gamess", "fp", "wide ILP; real zeros", _gamess),
        _spec("milc", "fp", "FP stencil with sparse zeros", _milc),
        _spec("zeusmp", "fp", "~20% zero results; VP ahead", _zeusmp),
        _spec("gromacs", "fp", "strided FP work", _gromacs),
        _spec("cactusADM", "fp", "~20% zero results", _cactusadm),
        _spec("leslie3d", "fp", "FP stencil, moderate zeros", _leslie3d),
        _spec("namd", "fp", "dense FP, low redundancy", _namd),
        _spec("dealII", "fp", "non-load RSEP redundancy; move elim",
              _dealii),
        _spec("soplex", "fp", "sparse algebra mix", _soplex),
        _spec("povray", "fp", "FP with divides and calls", _povray),
        _spec("calculix", "fp", "FP with divides, strides", _calculix),
        _spec("GemsFDTD", "fp", "large-footprint FP streaming", _gemsfdtd),
        _spec("tonto", "fp", "FP with calls and recompute", _tonto),
        _spec("lbm", "fp", "wide independent FP; dense commit groups",
              _lbm),
        _spec("wrf", "fp", "stride-dominated; VP ahead", _wrf),
        _spec("sphinx3", "fp", "FP plus byte scanning", _sphinx3),
    ]
}
