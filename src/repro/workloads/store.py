"""Persistent, content-addressed store of functional traces.

Interpreting a benchmark is deterministic, so its committed-path trace is
a pure function of ``(benchmark, seed, instruction budget, workload
code)``.  This module caches that artifact on disk — in the spirit of
build-once/run-many experiment infrastructures — so a trace is
interpreted **at most once per machine**: every later sweep, bench,
example or CI run loads it back instead of re-running the interpreter.

Three pieces:

* :func:`workload_code_version` — a hash over the source of every module
  that determines trace content (workloads, ISA, interpreter, RNG).  It
  is part of every cache key, on disk and in memory, so editing
  ``workloads/kernels.py`` (or the interpreter itself) can never serve a
  stale trace.  The hash is recomputed whenever a source file's
  stat signature changes, which keeps long-lived processes honest too.
* the flat-array codec (:func:`pack_trace` / :func:`unpack_trace`,
  re-exported from :mod:`repro.workloads.columnar` where it now lives).
  Packed traces pickle ~10× smaller than ``DynInst`` lists, and since
  PR 4 the packed columns are also the *runtime* representation: by
  default :meth:`TraceStore.load` returns a
  :class:`~repro.workloads.columnar.ColumnarTrace` view over the
  payload without constructing a single ``DynInst`` — rows materialise
  lazily, per fetched instruction (DESIGN.md §9).  ``REPRO_COLUMNAR=0``
  restores the legacy eager decode as a differential-testing oracle.
* :class:`TraceStore` — the on-disk cache.  One file per
  ``(benchmark, seed, version)``, atomically replaced on writes
  (temp file + ``os.replace``), with the instruction *budget* recorded in
  the payload: a stored trace serves any request it covers and is
  re-interpreted (and overwritten) for longer ones, mirroring the
  in-memory prefix-reuse rule.  Corrupt or truncated files are treated
  as misses — the caller falls back to interpretation and the file is
  rewritten.

Since the result lake (DESIGN.md §14) the store also holds per-cell
simulation *results*: small JSON artifacts (``*.cell``) carrying one
cell's :class:`~repro.pipeline.stats.Stats`, content-addressed on the
complete cell fingerprint the sweep engine computes (benchmark, seed,
resolved window, sampling/mechanism/core fingerprints, workload-code
version, format).  Like traces and checkpoints, anything unreadable —
truncated, foreign format, digest-mismatched — is a miss the caller
re-simulates and overwrites.

The store location defaults to ``~/.cache/repro/traces`` (honouring
``XDG_CACHE_HOME``) and is overridden with ``REPRO_TRACE_STORE``; setting
that variable to ``0``, ``off`` or ``none`` disables persistence.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from pathlib import Path

from repro.common.atomicio import atomic_write_bytes, atomic_write_text

from repro.workloads.columnar import (  # noqa: F401  (codec re-exports)
    FORMAT,
    ColumnarTrace,
    columnar_enabled,
    pack_trace,
    unpack_trace,
)
from repro.workloads.trace import Trace

#: Modules whose source determines trace content.  Anything that touches
#: program construction, initial data images or interpretation belongs
#: here; timing-model modules do not (they never affect the trace).
_VERSIONED_MODULES = (
    "repro.workloads.kernels",
    "repro.workloads.spec2006",
    "repro.workloads.builder",
    "repro.workloads.trace",
    "repro.isa.instruction",
    "repro.isa.opcodes",
    "repro.isa.program",
    "repro.isa.registers",
    "repro.common.bitops",
    "repro.common.rng",
)

# (stat signature) -> digest memo so repeated calls cost ~10 os.stat.
_version_cache: tuple[tuple, str] | None = None


def _module_sources() -> list[Path]:
    import importlib

    paths = []
    for name in _VERSIONED_MODULES:
        module = importlib.import_module(name)
        module_file = getattr(module, "__file__", None)
        if module_file:
            paths.append(Path(module_file))
    return paths


def _snapshot_source(path: Path) -> tuple[tuple[str, int, int], bytes]:
    """One file's ``(stat signature, bytes)``, captured consistently.

    The stat and the read happen back to back, and the stat is re-taken
    after the read: if an edit landed in between, the pair is retried so
    the returned signature always describes exactly the bytes returned.
    Without this, an edit racing the two passes could memoise a digest
    that does not correspond to its signature — and a signature-matched
    memo hit would then serve the wrong version forever.
    """
    before = path.stat()
    for _ in range(4):
        data = path.read_bytes()
        after = path.stat()
        if (before.st_mtime_ns, before.st_size) == (
            after.st_mtime_ns, after.st_size
        ):
            break
        before = after
    return (str(path), before.st_mtime_ns, before.st_size), data


def workload_code_version() -> str:
    """Hash of the workload/ISA/interpreter source (first 16 hex chars).

    Cached on the files' ``(path, mtime_ns, size)`` signature: editing any
    versioned module invalidates the memo, so even a process that outlives
    an edit computes a fresh version and stops serving stale traces.  On
    a memo miss, each file's ``(stat, bytes)`` is snapshotted in a single
    consistent pass and **both** the memo signature and the digest derive
    from that snapshot — the memoised pair can never mix one version's
    stats with another version's bytes.
    """
    global _version_cache
    sources = _module_sources()
    probe = tuple(
        (str(path), stat.st_mtime_ns, stat.st_size)
        for path, stat in ((p, p.stat()) for p in sources)
    )
    if _version_cache is not None and _version_cache[0] == probe:
        return _version_cache[1]
    snapshot = [(path.name, *_snapshot_source(path)) for path in sources]
    signature = tuple(entry[1] for entry in snapshot)
    digest = hashlib.sha256()
    for name, _, data in snapshot:
        digest.update(name.encode())
        digest.update(data)
    version = digest.hexdigest()[:16]
    _version_cache = (signature, version)
    return version


# ---------------------------------------------------------------------------
# On-disk store
# ---------------------------------------------------------------------------

#: Result-lake cell artifact layout version.  Part of every cell key, so
#: bumping it on an incompatible change makes every old entry a miss
#: (never a misread).
CELL_FORMAT = 1


def cell_stats_digest(stats: dict) -> str:
    """Self-digest of one lake cell's stats section.

    Canonical JSON (sorted keys), so the digest is independent of dict
    insertion order; editing any counter under a stale digest makes the
    entry a miss (tamper detection, mirroring ``RunResult.digest``).
    """
    return hashlib.sha256(
        json.dumps(stats, sort_keys=True).encode()
    ).hexdigest()[:16]


def default_store_root() -> Path | None:
    """Deprecated: use :func:`repro.api.env.store_root_from_env` (or
    better, a :class:`repro.api.StoreSpec`)."""
    from repro.api import env as api_env

    api_env.deprecated(
        "repro.workloads.store.default_store_root",
        "repro.api.env.store_root_from_env",
    )
    return api_env.store_root_from_env()


class TraceStore:
    """Content-addressed on-disk cache of packed functional traces."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.recovered = 0  # corrupt/truncated files treated as misses
        # µarch checkpoints (repro.sampling) stored alongside traces.
        self.checkpoint_hits = 0
        self.checkpoint_misses = 0
        self.checkpoint_writes = 0
        # Result-lake cells (DESIGN.md §14) stored alongside both.
        self.cell_hits = 0
        self.cell_misses = 0
        self.cell_writes = 0
        self.cell_recovered = 0  # unreadable/tampered cells, now misses

    @classmethod
    def from_environment(cls) -> "TraceStore | None":
        """The default store, or ``None`` when persistence is disabled."""
        from repro.api.env import store_root_from_env

        root = store_root_from_env()
        return cls(root) if root is not None else None

    # ------------------------------------------------------------------

    def path_for(self, benchmark: str, seed: int, version: str) -> Path:
        """File path of one ``(benchmark, seed, version)`` artifact.

        The key is content-addressed: a digest over the benchmark name,
        the seed and the workload-code version.  The human-readable stem
        keeps the store browsable.
        """
        digest = hashlib.sha256(
            f"{benchmark}\x00{seed}\x00{version}\x00{FORMAT}".encode()
        ).hexdigest()[:20]
        safe = "".join(c if c.isalnum() else "_" for c in benchmark)
        return self.root / f"{safe}-s{seed}-{digest}.trace"

    def load(
        self, benchmark: str, seed: int, instructions: int, version: str,
        columnar: bool | None = None,
    ) -> "tuple[Trace | ColumnarTrace, int] | None":
        """Return ``(trace, budget)`` if a stored trace covers the request.

        A trace covers a request for N instructions when it was built with
        a budget >= N, or when it halted before exhausting its budget (the
        complete execution covers everything).  Anything unreadable —
        missing, truncated, corrupt, wrong format — is a miss; the caller
        re-interprets and :meth:`save` overwrites the bad file.

        By default the result is a :class:`ColumnarTrace` view over the
        packed payload — zero per-instruction decode work at load; rows
        materialise lazily as the pipeline fetches them.  With
        ``REPRO_COLUMNAR=0`` the legacy eager-``DynInst`` decode runs
        instead (the differential-testing oracle).  An explicit
        ``columnar`` argument (a :class:`~repro.api.spec.StoreSpec`
        threading through the simulator) overrides the environment.
        Both constructors validate the payload, so corruption is a miss
        on either path.
        """
        if columnar is None:
            columnar = columnar_enabled()
        path = self.path_for(benchmark, seed, version)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if columnar:
                trace = ColumnarTrace.from_payload(payload)
                budget = payload["budget"]
                if not isinstance(budget, int):
                    raise ValueError("trace payload budget is not an int")
            else:
                trace, budget = unpack_trace(payload)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:  # corrupt pickle / bad payload: recoverable
            self.recovered += 1
            self.misses += 1
            return None
        if instructions <= budget or len(trace) < budget:
            self.hits += 1
            return trace, budget
        self.misses += 1
        return None

    def save(
        self, trace: "Trace | ColumnarTrace", benchmark: str, seed: int,
        budget: int, version: str,
    ) -> Path | None:
        """Persist *trace* atomically; best-effort (failures are ignored)."""
        return self.save_payload(
            pack_trace(trace, budget), benchmark, seed, version
        )

    def save_payload(
        self, payload: dict, benchmark: str, seed: int, version: str,
    ) -> Path | None:
        """Persist an already-packed payload (see :meth:`save`).

        The temp-file + ``os.replace`` (+ ``fsync``) dance — shared with
        every other artifact writer via
        :func:`repro.common.atomicio.atomic_write_bytes` — guarantees
        readers never see a partial write, and concurrent writers
        (parallel sweep workers interpreting the same benchmark) race
        benignly: both produce identical bytes.
        """
        path = self.path_for(benchmark, seed, version)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(
                path,
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
            )
        except OSError:
            return None  # read-only store, full disk, ... — not fatal
        self.writes += 1
        return path

    # ------------------------------------------------------------------
    # Microarchitectural checkpoints (repro.sampling, DESIGN.md §8)
    # ------------------------------------------------------------------

    def checkpoint_path(self, benchmark: str, seed: int, token: str) -> Path:
        """File path of one warmed-state checkpoint artifact.

        *token* encodes everything beyond (benchmark, seed) that the
        warmed state depends on — warm-up length, mechanism and core
        configuration, workload-code version, checkpoint format — so the
        name is content-addressed exactly like trace files.
        """
        digest = hashlib.sha256(
            f"{benchmark}\x00{seed}\x00{token}".encode()
        ).hexdigest()[:20]
        safe = "".join(c if c.isalnum() else "_" for c in benchmark)
        return self.root / f"{safe}-s{seed}-{digest}.ckpt"

    def load_checkpoint(
        self, benchmark: str, seed: int, token: str
    ) -> dict | None:
        """Return a stored checkpoint payload, or None on any miss.

        Unreadable files (truncated, corrupt, foreign format) are
        misses; the caller re-warms and :meth:`save_checkpoint`
        overwrites the bad artifact.
        """
        path = self.checkpoint_path(benchmark, seed, token)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if not isinstance(payload, dict):
                raise ValueError("not a checkpoint payload")
        except Exception:
            self.checkpoint_misses += 1
            return None
        self.checkpoint_hits += 1
        return payload

    def save_checkpoint(
        self, payload: dict, benchmark: str, seed: int, token: str
    ) -> Path | None:
        """Persist a checkpoint atomically; best-effort like :meth:`save`."""
        path = self.checkpoint_path(benchmark, seed, token)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(
                path,
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
            )
        except OSError:
            return None
        self.checkpoint_writes += 1
        return path

    # ------------------------------------------------------------------
    # Result lake: per-cell Stats artifacts (DESIGN.md §14)
    # ------------------------------------------------------------------

    def cell_path(self, benchmark: str, seed: int, token: str) -> Path:
        """File path of one result-lake cell artifact.

        *token* is the sweep engine's complete cell fingerprint beyond
        (benchmark, seed): resolved window, sampling fingerprint,
        mechanism fingerprint, core-config fingerprint, workload-code
        version and the lake format — so the name is content-addressed
        exactly like trace and checkpoint files, and a cell produced
        under any other configuration can never be served.
        """
        digest = hashlib.sha256(
            f"{benchmark}\x00{seed}\x00{token}".encode()
        ).hexdigest()[:20]
        safe = "".join(c if c.isalnum() else "_" for c in benchmark)
        return self.root / f"{safe}-s{seed}-{digest}.cell"

    def load_cell(
        self, benchmark: str, seed: int, token: str,
        fields: frozenset[str] | set[str] | None = None,
    ) -> dict | None:
        """Return a stored cell payload, or ``None`` on any miss.

        The payload is JSON with a self-digest over its ``stats``
        section; anything unreadable — missing, truncated, foreign
        format, or tampered (stats edited under a stale digest) — is a
        miss the caller re-simulates, after which :meth:`save_cell`
        overwrites the bad artifact.  *fields*, when given, is the exact
        set of stats keys the caller's schema expects (the sweep engine
        passes its ``Stats`` field names); any other key set is a miss
        too, so a cell from a build with a drifted schema is never
        half-read.
        """
        path = self.cell_path(benchmark, seed, token)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("cell payload is not an object")
            if payload.get("format") != CELL_FORMAT:
                raise ValueError("foreign cell format")
            stats = payload.get("stats")
            if not isinstance(stats, dict):
                raise ValueError("cell payload has no stats object")
            if payload.get("digest") != cell_stats_digest(stats):
                raise ValueError("cell digest mismatch")
            if fields is not None and set(stats) != set(fields):
                raise ValueError("cell stats schema mismatch")
        except FileNotFoundError:
            self.cell_misses += 1
            return None
        except Exception:  # corrupt/foreign/tampered: recoverable
            self.cell_recovered += 1
            self.cell_misses += 1
            return None
        self.cell_hits += 1
        return payload

    def save_cell(
        self,
        stats: dict,
        benchmark: str,
        seed: int,
        token: str,
        meta: dict | None = None,
    ) -> Path | None:
        """Persist one cell's stats dict atomically; best-effort.

        *meta* (mechanism display name, window, fingerprints, ...) is
        informational — it makes the lake queryable by ``repro report
        --lake`` but never participates in the self-digest, exactly as
        display names stay out of cell keys.
        """
        payload = {
            "format": CELL_FORMAT,
            "benchmark": benchmark,
            "seed": seed,
            "digest": cell_stats_digest(stats),
            "stats": stats,
        }
        if meta:
            payload["meta"] = meta
        path = self.cell_path(benchmark, seed, token)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            atomic_write_text(
                path, json.dumps(payload, sort_keys=True) + "\n"
            )
        except OSError:
            return None  # read-only store, full disk, ... — not fatal
        self.cell_writes += 1
        return path

    def iter_cells(self):
        """Yield ``(path, payload-or-None)`` for every lake entry.

        Unreadable or tampered entries yield ``None`` payloads so
        queries (``repro report --lake`` / ``inspect --lake``) can count
        them without trusting them; sorted by path for deterministic
        rendering.
        """
        for path in sorted(self.root.glob("*.cell")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                if not (
                    isinstance(payload, dict)
                    and payload.get("format") == CELL_FORMAT
                    and isinstance(payload.get("stats"), dict)
                    and payload.get("digest")
                    == cell_stats_digest(payload["stats"])
                ):
                    payload = None
            except Exception:
                payload = None
            yield path, payload
