"""Persistent, content-addressed store of functional traces.

Interpreting a benchmark is deterministic, so its committed-path trace is
a pure function of ``(benchmark, seed, instruction budget, workload
code)``.  This module caches that artifact on disk — in the spirit of
build-once/run-many experiment infrastructures — so a trace is
interpreted **at most once per machine**: every later sweep, bench,
example or CI run loads it back instead of re-running the interpreter.

Three pieces:

* :func:`workload_code_version` — a hash over the source of every module
  that determines trace content (workloads, ISA, interpreter, RNG).  It
  is part of every cache key, on disk and in memory, so editing
  ``workloads/kernels.py`` (or the interpreter itself) can never serve a
  stale trace.  The hash is recomputed whenever a source file's
  stat signature changes, which keeps long-lived processes honest too.
* the flat-array codec (:func:`pack_trace` / :func:`unpack_trace`,
  re-exported from :mod:`repro.workloads.columnar` where it now lives).
  Packed traces pickle ~10× smaller than ``DynInst`` lists, and since
  PR 4 the packed columns are also the *runtime* representation: by
  default :meth:`TraceStore.load` returns a
  :class:`~repro.workloads.columnar.ColumnarTrace` view over the
  payload without constructing a single ``DynInst`` — rows materialise
  lazily, per fetched instruction (DESIGN.md §9).  ``REPRO_COLUMNAR=0``
  restores the legacy eager decode as a differential-testing oracle.
* :class:`TraceStore` — the on-disk cache.  One file per
  ``(benchmark, seed, version)``, atomically replaced on writes
  (temp file + ``os.replace``), with the instruction *budget* recorded in
  the payload: a stored trace serves any request it covers and is
  re-interpreted (and overwritten) for longer ones, mirroring the
  in-memory prefix-reuse rule.  Corrupt or truncated files are treated
  as misses — the caller falls back to interpretation and the file is
  rewritten.

The store location defaults to ``~/.cache/repro/traces`` (honouring
``XDG_CACHE_HOME``) and is overridden with ``REPRO_TRACE_STORE``; setting
that variable to ``0``, ``off`` or ``none`` disables persistence.
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path

from repro.common.atomicio import atomic_write_bytes

from repro.workloads.columnar import (  # noqa: F401  (codec re-exports)
    FORMAT,
    ColumnarTrace,
    columnar_enabled,
    pack_trace,
    unpack_trace,
)
from repro.workloads.trace import Trace

#: Modules whose source determines trace content.  Anything that touches
#: program construction, initial data images or interpretation belongs
#: here; timing-model modules do not (they never affect the trace).
_VERSIONED_MODULES = (
    "repro.workloads.kernels",
    "repro.workloads.spec2006",
    "repro.workloads.builder",
    "repro.workloads.trace",
    "repro.isa.instruction",
    "repro.isa.opcodes",
    "repro.isa.program",
    "repro.isa.registers",
    "repro.common.bitops",
    "repro.common.rng",
)

# (stat signature) -> digest memo so repeated calls cost ~10 os.stat.
_version_cache: tuple[tuple, str] | None = None


def _module_sources() -> list[Path]:
    import importlib

    paths = []
    for name in _VERSIONED_MODULES:
        module = importlib.import_module(name)
        module_file = getattr(module, "__file__", None)
        if module_file:
            paths.append(Path(module_file))
    return paths


def workload_code_version() -> str:
    """Hash of the workload/ISA/interpreter source (first 16 hex chars).

    Cached on the files' ``(path, mtime_ns, size)`` signature: editing any
    versioned module invalidates the memo, so even a process that outlives
    an edit computes a fresh version and stops serving stale traces.
    """
    global _version_cache
    sources = _module_sources()
    signature = tuple(
        (str(path), stat.st_mtime_ns, stat.st_size)
        for path, stat in ((p, p.stat()) for p in sources)
    )
    if _version_cache is not None and _version_cache[0] == signature:
        return _version_cache[1]
    digest = hashlib.sha256()
    for path in sources:
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    version = digest.hexdigest()[:16]
    _version_cache = (signature, version)
    return version


# ---------------------------------------------------------------------------
# On-disk store
# ---------------------------------------------------------------------------


def default_store_root() -> Path | None:
    """Deprecated: use :func:`repro.api.env.store_root_from_env` (or
    better, a :class:`repro.api.StoreSpec`)."""
    from repro.api import env as api_env

    api_env.deprecated(
        "repro.workloads.store.default_store_root",
        "repro.api.env.store_root_from_env",
    )
    return api_env.store_root_from_env()


class TraceStore:
    """Content-addressed on-disk cache of packed functional traces."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.recovered = 0  # corrupt/truncated files treated as misses
        # µarch checkpoints (repro.sampling) stored alongside traces.
        self.checkpoint_hits = 0
        self.checkpoint_misses = 0
        self.checkpoint_writes = 0

    @classmethod
    def from_environment(cls) -> "TraceStore | None":
        """The default store, or ``None`` when persistence is disabled."""
        from repro.api.env import store_root_from_env

        root = store_root_from_env()
        return cls(root) if root is not None else None

    # ------------------------------------------------------------------

    def path_for(self, benchmark: str, seed: int, version: str) -> Path:
        """File path of one ``(benchmark, seed, version)`` artifact.

        The key is content-addressed: a digest over the benchmark name,
        the seed and the workload-code version.  The human-readable stem
        keeps the store browsable.
        """
        digest = hashlib.sha256(
            f"{benchmark}\x00{seed}\x00{version}\x00{FORMAT}".encode()
        ).hexdigest()[:20]
        safe = "".join(c if c.isalnum() else "_" for c in benchmark)
        return self.root / f"{safe}-s{seed}-{digest}.trace"

    def load(
        self, benchmark: str, seed: int, instructions: int, version: str,
        columnar: bool | None = None,
    ) -> "tuple[Trace | ColumnarTrace, int] | None":
        """Return ``(trace, budget)`` if a stored trace covers the request.

        A trace covers a request for N instructions when it was built with
        a budget >= N, or when it halted before exhausting its budget (the
        complete execution covers everything).  Anything unreadable —
        missing, truncated, corrupt, wrong format — is a miss; the caller
        re-interprets and :meth:`save` overwrites the bad file.

        By default the result is a :class:`ColumnarTrace` view over the
        packed payload — zero per-instruction decode work at load; rows
        materialise lazily as the pipeline fetches them.  With
        ``REPRO_COLUMNAR=0`` the legacy eager-``DynInst`` decode runs
        instead (the differential-testing oracle).  An explicit
        ``columnar`` argument (a :class:`~repro.api.spec.StoreSpec`
        threading through the simulator) overrides the environment.
        Both constructors validate the payload, so corruption is a miss
        on either path.
        """
        if columnar is None:
            columnar = columnar_enabled()
        path = self.path_for(benchmark, seed, version)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if columnar:
                trace = ColumnarTrace.from_payload(payload)
                budget = payload["budget"]
                if not isinstance(budget, int):
                    raise ValueError("trace payload budget is not an int")
            else:
                trace, budget = unpack_trace(payload)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:  # corrupt pickle / bad payload: recoverable
            self.recovered += 1
            self.misses += 1
            return None
        if instructions <= budget or len(trace) < budget:
            self.hits += 1
            return trace, budget
        self.misses += 1
        return None

    def save(
        self, trace: "Trace | ColumnarTrace", benchmark: str, seed: int,
        budget: int, version: str,
    ) -> Path | None:
        """Persist *trace* atomically; best-effort (failures are ignored)."""
        return self.save_payload(
            pack_trace(trace, budget), benchmark, seed, version
        )

    def save_payload(
        self, payload: dict, benchmark: str, seed: int, version: str,
    ) -> Path | None:
        """Persist an already-packed payload (see :meth:`save`).

        The temp-file + ``os.replace`` (+ ``fsync``) dance — shared with
        every other artifact writer via
        :func:`repro.common.atomicio.atomic_write_bytes` — guarantees
        readers never see a partial write, and concurrent writers
        (parallel sweep workers interpreting the same benchmark) race
        benignly: both produce identical bytes.
        """
        path = self.path_for(benchmark, seed, version)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(
                path,
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
            )
        except OSError:
            return None  # read-only store, full disk, ... — not fatal
        self.writes += 1
        return path

    # ------------------------------------------------------------------
    # Microarchitectural checkpoints (repro.sampling, DESIGN.md §8)
    # ------------------------------------------------------------------

    def checkpoint_path(self, benchmark: str, seed: int, token: str) -> Path:
        """File path of one warmed-state checkpoint artifact.

        *token* encodes everything beyond (benchmark, seed) that the
        warmed state depends on — warm-up length, mechanism and core
        configuration, workload-code version, checkpoint format — so the
        name is content-addressed exactly like trace files.
        """
        digest = hashlib.sha256(
            f"{benchmark}\x00{seed}\x00{token}".encode()
        ).hexdigest()[:20]
        safe = "".join(c if c.isalnum() else "_" for c in benchmark)
        return self.root / f"{safe}-s{seed}-{digest}.ckpt"

    def load_checkpoint(
        self, benchmark: str, seed: int, token: str
    ) -> dict | None:
        """Return a stored checkpoint payload, or None on any miss.

        Unreadable files (truncated, corrupt, foreign format) are
        misses; the caller re-warms and :meth:`save_checkpoint`
        overwrites the bad artifact.
        """
        path = self.checkpoint_path(benchmark, seed, token)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if not isinstance(payload, dict):
                raise ValueError("not a checkpoint payload")
        except Exception:
            self.checkpoint_misses += 1
            return None
        self.checkpoint_hits += 1
        return payload

    def save_checkpoint(
        self, payload: dict, benchmark: str, seed: int, token: str
    ) -> Path | None:
        """Persist a checkpoint atomically; best-effort like :meth:`save`."""
        path = self.checkpoint_path(benchmark, seed, token)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(
                path,
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
            )
        except OSError:
            return None
        self.checkpoint_writes += 1
        return path
