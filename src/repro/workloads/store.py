"""Persistent, content-addressed store of functional traces.

Interpreting a benchmark is deterministic, so its committed-path trace is
a pure function of ``(benchmark, seed, instruction budget, workload
code)``.  This module caches that artifact on disk — in the spirit of
build-once/run-many experiment infrastructures — so a trace is
interpreted **at most once per machine**: every later sweep, bench,
example or CI run loads it back instead of re-running the interpreter.

Three pieces:

* :func:`workload_code_version` — a hash over the source of every module
  that determines trace content (workloads, ISA, interpreter, RNG).  It
  is part of every cache key, on disk and in memory, so editing
  ``workloads/kernels.py`` (or the interpreter itself) can never serve a
  stale trace.  The hash is recomputed whenever a source file's
  stat signature changes, which keeps long-lived processes honest too.
* :func:`pack_trace` / :func:`unpack_trace` — a compact flat-array codec
  (parallel packed ``array`` columns instead of per-instruction Python
  objects).  Packed traces pickle ~10× smaller than ``DynInst`` lists
  and decode faster than re-interpretation, because decoding replays no
  semantics: static per-opcode fields come from one table lookup and
  ``DynInst`` construction bypasses ``__init__``.
* :class:`TraceStore` — the on-disk cache.  One file per
  ``(benchmark, seed, version)``, atomically replaced on writes
  (temp file + ``os.replace``), with the instruction *budget* recorded in
  the payload: a stored trace serves any request it covers and is
  re-interpreted (and overwritten) for longer ones, mirroring the
  in-memory prefix-reuse rule.  Corrupt or truncated files are treated
  as misses — the caller falls back to interpretation and the file is
  rewritten.

The store location defaults to ``~/.cache/repro/traces`` (honouring
``XDG_CACHE_HOME``) and is overridden with ``REPRO_TRACE_STORE``; setting
that variable to ``0``, ``off`` or ``none`` disables persistence.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from array import array
from pathlib import Path

from repro.isa.instruction import DynInst
from repro.isa.opcodes import OP_INFO, Opcode
from repro.isa.registers import XZR
from repro.workloads.trace import Trace

#: Bump when the packed layout changes; readers reject other versions.
FORMAT = 1

#: Flag bits of the packed per-instruction flag byte.
_TAKEN = 1
_ZERO_IDIOM = 2
_MOVE = 4

#: Modules whose source determines trace content.  Anything that touches
#: program construction, initial data images or interpretation belongs
#: here; timing-model modules do not (they never affect the trace).
_VERSIONED_MODULES = (
    "repro.workloads.kernels",
    "repro.workloads.spec2006",
    "repro.workloads.builder",
    "repro.workloads.trace",
    "repro.isa.instruction",
    "repro.isa.opcodes",
    "repro.isa.program",
    "repro.isa.registers",
    "repro.common.bitops",
    "repro.common.rng",
)

# (stat signature) -> digest memo so repeated calls cost ~10 os.stat.
_version_cache: tuple[tuple, str] | None = None


def _module_sources() -> list[Path]:
    import importlib

    paths = []
    for name in _VERSIONED_MODULES:
        module = importlib.import_module(name)
        module_file = getattr(module, "__file__", None)
        if module_file:
            paths.append(Path(module_file))
    return paths


def workload_code_version() -> str:
    """Hash of the workload/ISA/interpreter source (first 16 hex chars).

    Cached on the files' ``(path, mtime_ns, size)`` signature: editing any
    versioned module invalidates the memo, so even a process that outlives
    an edit computes a fresh version and stops serving stale traces.
    """
    global _version_cache
    sources = _module_sources()
    signature = tuple(
        (str(path), stat.st_mtime_ns, stat.st_size)
        for path, stat in ((p, p.stat()) for p in sources)
    )
    if _version_cache is not None and _version_cache[0] == signature:
        return _version_cache[1]
    digest = hashlib.sha256()
    for path in sources:
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    version = digest.hexdigest()[:16]
    _version_cache = (signature, version)
    return version


# ---------------------------------------------------------------------------
# Flat-array codec
# ---------------------------------------------------------------------------


def pack_trace(trace: Trace, budget: int) -> dict:
    """Serialise *trace* as parallel packed columns.

    ``seq`` is implicit (0..n-1); static per-opcode properties (FU class,
    latency, load/store/branch flags, …) are not stored — they are
    re-derived from the opcode at decode time, exactly as the interpreter
    derives them at build time.
    """
    n = len(trace)
    pc = array("q", bytes(8 * n))
    opcode = bytearray(n)
    dest = array("b", bytes(n))
    src1 = array("b", bytes(n))
    src2 = array("b", bytes(n))
    result = array("Q", bytes(8 * n))
    addr = array("q", bytes(8 * n))
    target_pc = array("q", bytes(8 * n))
    flags = bytearray(n)
    for index, d in enumerate(trace.instructions):
        pc[index] = d.pc
        opcode[index] = d.opcode
        dest[index] = d.dest
        src1[index] = d.src1
        src2[index] = d.src2
        result[index] = d.result
        addr[index] = d.addr
        target_pc[index] = d.target_pc
        flags[index] = (
            (_TAKEN if d.taken else 0)
            | (_ZERO_IDIOM if d.zero_idiom else 0)
            | (_MOVE if d.move else 0)
        )
    return {
        "format": FORMAT,
        "name": trace.name,
        "budget": budget,
        "n": n,
        "pc": pc,
        "opcode": bytes(opcode),
        "dest": dest,
        "src1": src1,
        "src2": src2,
        "result": result,
        "addr": addr,
        "target_pc": target_pc,
        "flags": bytes(flags),
    }


def _opcode_statics() -> list[tuple]:
    """Per-opcode constants a decoded ``DynInst`` carries."""
    statics = []
    for opcode in Opcode:
        info = OP_INFO[opcode]
        statics.append((
            opcode, info.fu_class, info.latency, info.pipelined,
            info.is_load, info.is_store, info.is_branch,
            info.is_conditional, info.is_call, info.is_return,
        ))
    return statics


_OPCODE_STATICS = _opcode_statics()


def unpack_trace(payload: dict) -> tuple[Trace, int]:
    """Decode a packed payload into ``(trace, budget)``.

    Reconstruction bypasses ``DynInst.__init__``: all derived fields
    (``line``, ``eligible``, the static opcode properties) are assigned
    from precomputed tables, which makes a warm store load cheaper than
    re-running the interpreter.
    """
    if payload.get("format") != FORMAT:
        raise ValueError(f"unsupported trace format {payload.get('format')}")
    from repro.common.bitops import LINE_SHIFT

    n = payload["n"]
    pcs = payload["pc"]
    opcodes = payload["opcode"]
    dests = payload["dest"]
    src1s = payload["src1"]
    src2s = payload["src2"]
    results = payload["result"]
    addrs = payload["addr"]
    targets = payload["target_pc"]
    flags = payload["flags"]
    if not (
        len(pcs) == len(opcodes) == len(dests) == len(src1s) == len(src2s)
        == len(results) == len(addrs) == len(targets) == len(flags) == n
    ):
        raise ValueError("trace payload columns disagree on length")

    statics = _OPCODE_STATICS
    new = DynInst.__new__
    cls = DynInst
    instructions = []
    append = instructions.append
    for seq in range(n):
        d = new(cls)
        pc = pcs[seq]
        dest = dests[seq]
        flag = flags[seq]
        zero_idiom = flag & _ZERO_IDIOM != 0
        (
            d.opcode, d.fu, d.latency, d.pipelined,
            d.is_load, d.is_store, is_branch,
            d.is_conditional, d.is_call, d.is_return,
        ) = statics[opcodes[seq]]
        d.is_branch = is_branch
        d.seq = seq
        d.pc = pc
        d.dest = dest
        d.src1 = src1s[seq]
        d.src2 = src2s[seq]
        d.result = results[seq]
        d.addr = addrs[seq]
        d.taken = flag & _TAKEN != 0
        d.target_pc = targets[seq]
        d.zero_idiom = zero_idiom
        d.move = flag & _MOVE != 0
        d.line = pc >> LINE_SHIFT
        d.eligible = (
            dest != -1 and dest != XZR and not is_branch and not zero_idiom
        )
        append(d)
    return Trace(payload["name"], instructions), payload["budget"]


# ---------------------------------------------------------------------------
# On-disk store
# ---------------------------------------------------------------------------


def default_store_root() -> Path | None:
    """Store directory from the environment (``None`` = disabled)."""
    configured = os.environ.get("REPRO_TRACE_STORE")
    if configured is not None:
        if configured.strip().lower() in ("", "0", "off", "none", "disabled"):
            return None
        return Path(configured)
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home) if cache_home else Path.home() / ".cache"
    return base / "repro" / "traces"


class TraceStore:
    """Content-addressed on-disk cache of packed functional traces."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.recovered = 0  # corrupt/truncated files treated as misses
        # µarch checkpoints (repro.sampling) stored alongside traces.
        self.checkpoint_hits = 0
        self.checkpoint_misses = 0
        self.checkpoint_writes = 0

    @classmethod
    def from_environment(cls) -> "TraceStore | None":
        """The default store, or ``None`` when persistence is disabled."""
        root = default_store_root()
        return cls(root) if root is not None else None

    # ------------------------------------------------------------------

    def path_for(self, benchmark: str, seed: int, version: str) -> Path:
        """File path of one ``(benchmark, seed, version)`` artifact.

        The key is content-addressed: a digest over the benchmark name,
        the seed and the workload-code version.  The human-readable stem
        keeps the store browsable.
        """
        digest = hashlib.sha256(
            f"{benchmark}\x00{seed}\x00{version}\x00{FORMAT}".encode()
        ).hexdigest()[:20]
        safe = "".join(c if c.isalnum() else "_" for c in benchmark)
        return self.root / f"{safe}-s{seed}-{digest}.trace"

    def load(
        self, benchmark: str, seed: int, instructions: int, version: str
    ) -> tuple[Trace, int] | None:
        """Return ``(trace, budget)`` if a stored trace covers the request.

        A trace covers a request for N instructions when it was built with
        a budget >= N, or when it halted before exhausting its budget (the
        complete execution covers everything).  Anything unreadable —
        missing, truncated, corrupt, wrong format — is a miss; the caller
        re-interprets and :meth:`save` overwrites the bad file.
        """
        path = self.path_for(benchmark, seed, version)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            trace, budget = unpack_trace(payload)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:  # corrupt pickle / bad payload: recoverable
            self.recovered += 1
            self.misses += 1
            return None
        if instructions <= budget or len(trace) < budget:
            self.hits += 1
            return trace, budget
        self.misses += 1
        return None

    def save(
        self, trace: Trace, benchmark: str, seed: int, budget: int,
        version: str,
    ) -> Path | None:
        """Persist *trace* atomically; best-effort (failures are ignored).

        The temp-file + ``os.replace`` dance guarantees readers never see
        a partial write, and concurrent writers (parallel sweep workers
        interpreting the same benchmark) race benignly: both produce
        identical bytes.
        """
        path = self.path_for(benchmark, seed, version)
        payload = pack_trace(trace, budget)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, temp_name = tempfile.mkstemp(
                dir=self.root, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(payload, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return None  # read-only store, full disk, ... — not fatal
        self.writes += 1
        return path

    # ------------------------------------------------------------------
    # Microarchitectural checkpoints (repro.sampling, DESIGN.md §8)
    # ------------------------------------------------------------------

    def checkpoint_path(self, benchmark: str, seed: int, token: str) -> Path:
        """File path of one warmed-state checkpoint artifact.

        *token* encodes everything beyond (benchmark, seed) that the
        warmed state depends on — warm-up length, mechanism and core
        configuration, workload-code version, checkpoint format — so the
        name is content-addressed exactly like trace files.
        """
        digest = hashlib.sha256(
            f"{benchmark}\x00{seed}\x00{token}".encode()
        ).hexdigest()[:20]
        safe = "".join(c if c.isalnum() else "_" for c in benchmark)
        return self.root / f"{safe}-s{seed}-{digest}.ckpt"

    def load_checkpoint(
        self, benchmark: str, seed: int, token: str
    ) -> dict | None:
        """Return a stored checkpoint payload, or None on any miss.

        Unreadable files (truncated, corrupt, foreign format) are
        misses; the caller re-warms and :meth:`save_checkpoint`
        overwrites the bad artifact.
        """
        path = self.checkpoint_path(benchmark, seed, token)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if not isinstance(payload, dict):
                raise ValueError("not a checkpoint payload")
        except Exception:
            self.checkpoint_misses += 1
            return None
        self.checkpoint_hits += 1
        return payload

    def save_checkpoint(
        self, payload: dict, benchmark: str, seed: int, token: str
    ) -> Path | None:
        """Persist a checkpoint atomically; best-effort like :meth:`save`."""
        path = self.checkpoint_path(benchmark, seed, token)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, temp_name = tempfile.mkstemp(
                dir=self.root, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(payload, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return None
        self.checkpoint_writes += 1
        return path
