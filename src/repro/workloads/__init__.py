"""Synthetic workloads: program builder, kernels, SPEC'06 stand-ins, traces."""

from repro.workloads.builder import DataSegment, ProgramBuilder, RegAllocator
from repro.workloads.kernels import Kernel
from repro.workloads.spec2006 import (
    SPEC2006,
    BenchmarkSpec,
    BuiltBenchmark,
    benchmark_names,
    build_benchmark,
    generate_trace,
)
from repro.workloads.trace import (
    Machine,
    Trace,
    bits_to_float,
    execute,
    float_to_bits,
)

__all__ = [
    "SPEC2006",
    "BenchmarkSpec",
    "BuiltBenchmark",
    "DataSegment",
    "Kernel",
    "Machine",
    "ProgramBuilder",
    "RegAllocator",
    "Trace",
    "benchmark_names",
    "bits_to_float",
    "build_benchmark",
    "execute",
    "float_to_bits",
    "generate_trace",
]
