"""Columnar trace plane: the packed parallel-array codec as the *runtime*
trace representation (DESIGN.md §9).

Since PR 2 the on-disk trace format has been parallel packed ``array``
columns (one per ``DynInst`` field).  Until now that was only the wire
format: every load decoded the columns back into per-instruction
``DynInst`` objects before the timing model saw them.  This module makes
the columns themselves the representation the hot paths consume:

* :func:`pack_trace` / :func:`unpack_trace` — the codec (moved here from
  ``workloads.store``, which re-exports them).  Static per-opcode
  properties are never stored; they come from one table lookup at decode
  time.
* :class:`ColumnarTrace` — the runtime view over a packed payload.
  Construction performs **no per-instruction Python work for decode**:
  the arrays convert to flat lists via C-speed ``tolist()`` and the
  per-opcode static flags fold into one *kind* byte per instruction via
  ``bytes.translate``.  Only two cheap derived columns (cache-line index
  and RSEP eligibility) take a Python pass.  ``DynInst`` row objects are
  materialised **lazily, one instruction at a time, only when the
  pipeline actually fetches that index** — and cached, so sweeps that
  replay one trace through many mechanism cells pay materialisation
  once per process, exactly like the old eager decode, while loads,
  unfetched slack and functionally-warmed spans pay nothing at all.
* :func:`columnar_enabled` — the ``REPRO_COLUMNAR`` escape hatch.  The
  default is on; ``REPRO_COLUMNAR=0`` keeps the legacy eager-``DynInst``
  path alive as a live differential-testing oracle
  (``tests/test_columnar_equivalence.py`` pins both paths bit-identical).

Invariants the equivalence suite relies on:

* A materialised row is field-for-field identical to the ``DynInst`` the
  eager decoder would have produced (same assignments, same tables).
* ``rows[i].seq == i``: the dynamic sequence number *is* the trace
  index, for packed and object traces alike (the interpreter emits
  ``seq`` densely from 0).
* Column reads (``pcs[i]``, ``kinds[i]`` bit tests, ``eligibles[i]``)
  agree with the corresponding row attributes for every index.
"""

from __future__ import annotations

from array import array

from repro.common.bitops import LINE_SHIFT
from repro.isa.instruction import DynInst, NO_REG
from repro.isa.opcodes import FuClass, OP_INFO, Opcode
from repro.isa.registers import XZR

#: Bump when the packed layout changes; readers reject other versions.
FORMAT = 1

#: Flag bits of the packed per-instruction dynamic-flag byte.
TAKEN = 1
ZERO_IDIOM = 2
MOVE = 4

#: Bits of the per-instruction *kind* byte (static opcode properties,
#: derived from the opcode column with one C-speed ``bytes.translate``).
KIND_BRANCH = 1
KIND_CONDITIONAL = 2
KIND_CALL = 4
KIND_RETURN = 8
KIND_LOAD = 16
KIND_STORE = 32
KIND_HAS_FU = 64  # executes on a functional unit (fu != FuClass.NONE)


def columnar_enabled() -> bool:
    """Whether the runtime consumes packed columns (``REPRO_COLUMNAR``).

    Defaults to on.  ``REPRO_COLUMNAR=0`` (or ``off``/``no``/``false``)
    selects the legacy eager-``DynInst`` trace path — kept alive as the
    differential-testing oracle, not as a supported fast path.  The
    environment read lives in :mod:`repro.api.env` (the single
    ``REPRO_*`` front door); prefer pinning the plane explicitly through
    :class:`repro.api.StoreSpec`.
    """
    from repro.api.env import columnar_from_env

    return columnar_from_env()


def _opcode_statics() -> list[tuple]:
    """Per-opcode constants a decoded ``DynInst`` carries."""
    statics = []
    for opcode in Opcode:
        info = OP_INFO[opcode]
        statics.append((
            opcode, info.fu_class, info.latency, info.pipelined,
            info.is_load, info.is_store, info.is_branch,
            info.is_conditional, info.is_call, info.is_return,
        ))
    return statics


def _kind_table() -> bytes:
    """256-entry opcode-byte -> kind-byte table for ``bytes.translate``."""
    table = bytearray(256)
    for opcode in Opcode:
        info = OP_INFO[opcode]
        table[opcode] = (
            (KIND_BRANCH if info.is_branch else 0)
            | (KIND_CONDITIONAL if info.is_conditional else 0)
            | (KIND_CALL if info.is_call else 0)
            | (KIND_RETURN if info.is_return else 0)
            | (KIND_LOAD if info.is_load else 0)
            | (KIND_STORE if info.is_store else 0)
            | (KIND_HAS_FU if info.fu_class != FuClass.NONE else 0)
        )
    return bytes(table)


_OPCODE_STATICS = _opcode_statics()
_KIND_TABLE = _kind_table()
_NUM_OPCODES = len(Opcode)


# ---------------------------------------------------------------------------
# Flat-array codec
# ---------------------------------------------------------------------------


def pack_trace(trace, budget: int) -> dict:
    """Serialise *trace* as parallel packed columns.

    ``seq`` is implicit (0..n-1); static per-opcode properties (FU class,
    latency, load/store/branch flags, …) are not stored — they are
    re-derived from the opcode at decode time, exactly as the interpreter
    derives them at build time.  Accepts both an object
    :class:`~repro.workloads.trace.Trace` and a :class:`ColumnarTrace`
    (whose columns repack without materialising any rows).
    """
    if isinstance(trace, ColumnarTrace):
        return trace.to_payload(budget)
    n = len(trace)
    pc = array("q", bytes(8 * n))
    opcode = bytearray(n)
    dest = array("b", bytes(n))
    src1 = array("b", bytes(n))
    src2 = array("b", bytes(n))
    result = array("Q", bytes(8 * n))
    addr = array("q", bytes(8 * n))
    target_pc = array("q", bytes(8 * n))
    flags = bytearray(n)
    for index, d in enumerate(trace.instructions):
        pc[index] = d.pc
        opcode[index] = d.opcode
        dest[index] = d.dest
        src1[index] = d.src1
        src2[index] = d.src2
        result[index] = d.result
        addr[index] = d.addr
        target_pc[index] = d.target_pc
        flags[index] = (
            (TAKEN if d.taken else 0)
            | (ZERO_IDIOM if d.zero_idiom else 0)
            | (MOVE if d.move else 0)
        )
    return {
        "format": FORMAT,
        "name": trace.name,
        "budget": budget,
        "n": n,
        "pc": pc,
        "opcode": bytes(opcode),
        "dest": dest,
        "src1": src1,
        "src2": src2,
        "result": result,
        "addr": addr,
        "target_pc": target_pc,
        "flags": bytes(flags),
    }


def _validate_payload(payload: dict) -> int:
    """Shared payload checks; returns ``n`` or raises ``ValueError``."""
    if payload.get("format") != FORMAT:
        raise ValueError(f"unsupported trace format {payload.get('format')}")
    n = payload["n"]
    if not (
        len(payload["pc"]) == len(payload["opcode"]) == len(payload["dest"])
        == len(payload["src1"]) == len(payload["src2"])
        == len(payload["result"]) == len(payload["addr"])
        == len(payload["target_pc"]) == len(payload["flags"]) == n
    ):
        raise ValueError("trace payload columns disagree on length")
    opcodes = payload["opcode"]
    if n and max(opcodes) >= _NUM_OPCODES:
        raise ValueError("trace payload contains an unknown opcode")
    return n


def unpack_trace(payload: dict):
    """Decode a packed payload into ``(trace, budget)`` — the legacy path.

    Reconstruction bypasses ``DynInst.__init__``: all derived fields
    (``line``, ``eligible``, the static opcode properties) are assigned
    from precomputed tables, which makes a warm store load cheaper than
    re-running the interpreter.  The columnar runtime path skips even
    this: see :class:`ColumnarTrace`.
    """
    from repro.workloads.trace import Trace

    n = _validate_payload(payload)
    pcs = payload["pc"]
    opcodes = payload["opcode"]
    dests = payload["dest"]
    src1s = payload["src1"]
    src2s = payload["src2"]
    results = payload["result"]
    addrs = payload["addr"]
    targets = payload["target_pc"]
    flags = payload["flags"]

    statics = _OPCODE_STATICS
    new = DynInst.__new__
    cls = DynInst
    instructions = []
    append = instructions.append
    for seq in range(n):
        d = new(cls)
        pc = pcs[seq]
        dest = dests[seq]
        flag = flags[seq]
        zero_idiom = flag & ZERO_IDIOM != 0
        (
            d.opcode, d.fu, d.latency, d.pipelined,
            d.is_load, d.is_store, is_branch,
            d.is_conditional, d.is_call, d.is_return,
        ) = statics[opcodes[seq]]
        d.is_branch = is_branch
        d.seq = seq
        d.pc = pc
        d.dest = dest
        d.src1 = src1s[seq]
        d.src2 = src2s[seq]
        d.result = results[seq]
        d.addr = addrs[seq]
        d.taken = flag & TAKEN != 0
        d.target_pc = targets[seq]
        d.zero_idiom = zero_idiom
        d.move = flag & MOVE != 0
        d.line = pc >> LINE_SHIFT
        d.eligible = (
            dest != -1 and dest != XZR and not is_branch and not zero_idiom
        )
        append(d)
    return Trace(payload["name"], instructions), payload["budget"]


# ---------------------------------------------------------------------------
# Runtime columnar view
# ---------------------------------------------------------------------------


class ColumnarTrace:
    """A committed-path trace held as flat columns, rows on demand.

    Duck-compatible with :class:`~repro.workloads.trace.Trace` (``name``,
    ``len``, indexing, iteration, ``instructions``,
    ``result_producers``), so analyses and tests that walk instruction
    objects keep working — they simply trigger (cached) row
    materialisation.  The pipeline's fetch stage and the functional
    warmer never do: they read the columns directly.
    """

    __slots__ = (
        "name", "n",
        "pcs", "opcodes", "dests", "src1s", "src2s",
        "results", "addrs", "targets", "flags",
        "lines", "kinds", "eligibles", "rows",
    )

    def __init__(self, name, n, pcs, opcodes, dests, src1s, src2s,
                 results, addrs, targets, flags) -> None:
        self.name = name
        self.n = n
        self.pcs = pcs
        self.opcodes = opcodes
        self.dests = dests
        self.src1s = src1s
        self.src2s = src2s
        self.results = results
        self.addrs = addrs
        self.targets = targets
        self.flags = flags
        # Derived columns.  ``kinds`` is pure C (one translate);
        # ``lines``/``eligibles`` are the only Python passes — a couple
        # of operations per instruction, vs ~25 for an eager decode.
        self.kinds = opcodes.translate(_KIND_TABLE)
        self.lines = [pc >> LINE_SHIFT for pc in pcs]
        kind_branch = KIND_BRANCH
        zero_idiom = ZERO_IDIOM
        xzr = XZR
        self.eligibles = [
            dest != -1 and dest != xzr
            and not kind & kind_branch and not flag & zero_idiom
            for dest, kind, flag in zip(dests, self.kinds, flags)
        ]
        self.rows: list[DynInst | None] = [None] * n

    # -- construction ---------------------------------------------------

    @classmethod
    def from_payload(cls, payload: dict) -> "ColumnarTrace":
        """Wrap a packed payload; no ``DynInst`` is ever constructed."""
        n = _validate_payload(payload)
        return cls(
            payload["name"], n,
            payload["pc"].tolist(), bytes(payload["opcode"]),
            payload["dest"].tolist(), payload["src1"].tolist(),
            payload["src2"].tolist(), payload["result"].tolist(),
            payload["addr"].tolist(), payload["target_pc"].tolist(),
            bytes(payload["flags"]),
        )

    @classmethod
    def from_trace(cls, trace, budget: int | None = None) -> "ColumnarTrace":
        """Columnar view of an object trace (used on cold interpretation).

        The existing ``DynInst`` objects seed the row cache — they are
        field-identical to what the materialiser would rebuild (codec
        property suite), so nothing is decoded twice.
        """
        if isinstance(trace, ColumnarTrace):
            return trace
        columnar = cls.from_payload(pack_trace(trace, budget or len(trace)))
        columnar.rows[:] = trace.instructions
        return columnar

    def to_payload(self, budget: int) -> dict:
        """Repack the columns into a codec payload (no rows touched)."""
        return {
            "format": FORMAT,
            "name": self.name,
            "budget": budget,
            "n": self.n,
            "pc": array("q", self.pcs),
            "opcode": self.opcodes,
            "dest": array("b", self.dests),
            "src1": array("b", self.src1s),
            "src2": array("b", self.src2s),
            "result": array("Q", self.results),
            "addr": array("q", self.addrs),
            "target_pc": array("q", self.targets),
            "flags": self.flags,
        }

    # -- rows -----------------------------------------------------------

    def row(self, index: int) -> DynInst:
        """The (cached) ``DynInst`` row at *index*.

        Field-for-field identical to what :func:`unpack_trace` builds —
        the equivalence and property suites pin this.
        """
        d = self.rows[index]
        if d is not None:
            return d
        d = DynInst.__new__(DynInst)
        pc = self.pcs[index]
        dest = self.dests[index]
        flag = self.flags[index]
        zero_idiom = flag & ZERO_IDIOM != 0
        (
            d.opcode, d.fu, d.latency, d.pipelined,
            d.is_load, d.is_store, is_branch,
            d.is_conditional, d.is_call, d.is_return,
        ) = _OPCODE_STATICS[self.opcodes[index]]
        d.is_branch = is_branch
        d.seq = index
        d.pc = pc
        d.dest = dest
        d.src1 = self.src1s[index]
        d.src2 = self.src2s[index]
        d.result = self.results[index]
        d.addr = self.addrs[index]
        d.taken = flag & TAKEN != 0
        d.target_pc = self.targets[index]
        d.zero_idiom = zero_idiom
        d.move = flag & MOVE != 0
        d.line = self.lines[index]
        d.eligible = (
            dest != -1 and dest != XZR and not is_branch and not zero_idiom
        )
        self.rows[index] = d
        return d

    # -- Trace-compatible surface --------------------------------------

    @property
    def instructions(self) -> list[DynInst]:
        """All rows, materialising any not yet fetched (legacy surface)."""
        rows = self.rows
        row = self.row
        for index, d in enumerate(rows):
            if d is None:
                row(index)
        return rows  # fully materialised: safe to hand out

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, index: int) -> DynInst:
        if index < 0:
            index += self.n
        if not 0 <= index < self.n:
            raise IndexError("trace index out of range")
        return self.row(index)

    def __iter__(self):
        row = self.row
        return (row(index) for index in range(self.n))

    @property
    def result_producers(self) -> int:
        """Producer count straight from the columns (no rows)."""
        xzr = XZR
        return sum(
            1 for dest in self.dests if dest != NO_REG and dest != xzr
        )
