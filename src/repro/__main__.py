"""``python -m repro`` — the ``repro`` CLI without an install step."""

from repro.api.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
