"""Functional warming: committed-path replay that skips the scheduler.

Between detailed intervals the sampled-simulation controller hands the
trace to this module, which feeds ground truth through every *stateful*
structure the detailed pipeline would have trained — caches and TLBs
(including the prefetchers and DRAM row state behind them), the TAGE
branch predictor with its global/path histories, BTB and RAS, the
FIFO/DDT pairing history, the RSEP distance predictor, D-VTAGE and the
zero predictor — while performing none of the cycle-level work (no
rename, no issue queue, no ROB, no wakeup scheduling).

Fidelity notes (the approximations are deliberate and documented in
DESIGN.md §8):

* Branch history is exact: the detailed front end pushes the *actual*
  outcome at fetch, so the committed-path replay reproduces the same
  history bits the detailed run would hold.
* Cache/DRAM timing state advances on a pseudo-clock of one cycle per
  warmed instruction (IPC 1), which keeps MSHR fills and bank timers
  monotone across the warm/detail boundary.
* RSEP commit groups are approximated by chunking committed producers
  into ``commit_width``-sized groups; the real training entry point
  (:meth:`~repro.core.rsep.RsepUnit.observe_commit_group`) then runs
  verbatim, so pairing searches, sampling selection and predictor
  updates use the production code path.
* §IV.F/§IV.G feedback for confident predictions is emulated against a
  ring of recently committed producers: a confident prediction whose
  producer's result differs collapses confidence exactly as a
  commit-time validation failure would.
"""

from __future__ import annotations

from repro.isa.instruction import NO_REG
from repro.isa.program import INSTR_BYTES
from repro.isa.registers import FP_BASE
from repro.workloads.columnar import (
    KIND_BRANCH,
    KIND_CALL,
    KIND_CONDITIONAL,
    KIND_LOAD,
    KIND_RETURN,
    KIND_STORE,
    MOVE,
    TAKEN,
    ColumnarTrace,
)


class _WarmOp:
    """Commit-group stand-in for an ``InflightOp`` during warming.

    Carries exactly the attributes
    :meth:`~repro.core.rsep.RsepUnit.observe_commit_group` reads.
    """

    __slots__ = ("d", "dist_pred", "likely_candidate", "producer")

    def __init__(self, d) -> None:
        self.d = d
        self.dist_pred = None
        self.likely_candidate = False
        self.producer = None


class _ColumnarWarmOp:
    """Column-fed :class:`_WarmOp`: no ``DynInst`` behind it.

    ``observe_commit_group`` (and its generated hash fold) reads
    ``op.d.result``; ring validation reads ``producer.d.dest`` /
    ``producer.d.result``.  Pointing ``d`` at the op itself satisfies
    both against the two scalars copied out of the columns, with one
    allocation instead of two.
    """

    __slots__ = ("d", "dest", "result", "dist_pred", "likely_candidate",
                 "producer")

    def __init__(self, dest: int, result: int) -> None:
        self.d = self
        self.dest = dest
        self.result = result
        self.dist_pred = None
        self.likely_candidate = False
        self.producer = None


#: Producers kept in the recent-producer ring (> max predictor distance).
_RING_KEEP = 512
#: Ring length at which the stale prefix is trimmed away.
_RING_TRIM = 4096


class FunctionalWarmer:
    """Replays committed-path trace spans through a pipeline's state."""

    def __init__(self, pipeline) -> None:
        self.pipeline = pipeline
        self._move_elim = pipeline.mechanisms.move_elim
        # The recent-producer ring persists across warmed spans so
        # producer distances carry over interval boundaries; commit
        # groups flush at the end of each span.
        self._ring: list[_WarmOp] = []
        self._group: list[_WarmOp] = []
        rsep = pipeline.rsep
        # In sampling mode (§IV.B.3) the commit side trains exactly one
        # producer per group through the pairing search, so warming only
        # needs one predictor lookup per group — the dominant cost of
        # warming RSEP otherwise.  The faithful every-producer path is
        # kept for non-sampling (ideal) configurations.
        self._rsep_sampling = rsep is not None and rsep.config.sampling
        self._fold_values = (
            self._build_fold_values(rsep.config.hash_bits)
            if rsep is not None
            else None
        )

    def reset_producer_ring(self) -> None:
        """Drop the recent-producer ring (and any buffered group).

        Called at the warm-up/measurement boundary: the ring emulates
        the in-flight producer window, which really is empty after a
        drain — and µarch checkpoints capture pipeline state only, so
        cold and checkpoint-restored runs must enter measurement with
        the same (empty) ring to stay bit-identical.
        """
        del self._ring[:]
        del self._group[:]

    @staticmethod
    def _build_fold_values(hash_bits: int):
        """Unrolled ``fold_hash`` over raw result values (cf.
        ``RsepUnit._build_fold_group``, which folds over ops)."""
        shifts = range(hash_bits, 64, hash_bits)
        expression = "(v := value)" + "".join(
            f" ^ (v >> {shift})" for shift in shifts
        )
        namespace: dict = {}
        exec(  # noqa: S102 - static template, no external input
            "def fold_values(values):\n"
            "    return [({expr}) & {mask} for value in values]".format(
                expr=expression, mask=(1 << hash_bits) - 1
            ),
            namespace,
        )
        return namespace["fold_values"]

    def warm(self, start: int, count: int, cycle: int) -> tuple[int, int]:
        """Warm ``trace[start:start + count]``.

        Returns ``(end_index, end_cycle)`` — the trace position where
        detailed simulation should resume and the advanced pseudo-clock.
        Columnar traces take the column-indexed loop (no ``DynInst`` is
        ever materialised for a warmed-only span); object traces keep
        the original per-``DynInst`` loop as the oracle path.
        """
        p = self.pipeline
        if isinstance(p.trace, ColumnarTrace):
            return self._warm_columnar(start, count, cycle)
        trace = p.trace.instructions
        end = min(start + count, len(trace))
        if end <= start:
            return start, cycle

        hierarchy = p.hierarchy
        mem_load = hierarchy.load
        mem_store = hierarchy.store
        mem_fetch = hierarchy.fetch
        branch_unit = p.branch_unit
        tage_predict = branch_unit.tage.predict
        tage_update = branch_unit.tage.update
        btb_lookup = branch_unit.btb.lookup
        btb_update = branch_unit.btb.update
        ras = branch_unit.ras
        history_push = p.history.push
        path_push = p.path.push
        zero_predictor = p.zero_predictor
        vp = p.vp
        if vp is not None:
            vp_predict = vp.predictor.predict
            vp_train = vp.predictor.train
        rsep = p.rsep
        if rsep is not None:
            rsep_predict = rsep.predictor.predict
            rsep_observe = rsep.observe_commit_group
            rsep_mispredict = rsep.on_mispredict
        rsep_sampling = self._rsep_sampling
        group_results: list[int] = []
        group_eligible: list[tuple[int, int]] = []
        move_elim = self._move_elim
        commit_width = p.config.commit_width
        ring = self._ring
        group = self._group
        no_reg = NO_REG
        fp_base = FP_BASE

        last_line = -1
        for d in trace[start:end]:
            cycle += 1

            # ---- front end: L1I/ITLB and branch structures ------------
            line = d.line
            if line != last_line:
                mem_fetch(d.pc, cycle)
                last_line = line
            if d.is_branch:
                taken = d.taken
                if d.is_conditional:
                    prediction = tage_predict(d.pc)
                    if prediction.taken == taken and taken:
                        btb_lookup(d.pc)
                    history_push(1 if taken else 0)
                    tage_update(prediction, taken)
                elif d.is_return:
                    ras.pop()
                else:
                    btb_lookup(d.pc)
                    if d.is_call:
                        ras.push(d.pc + INSTR_BYTES)
                if taken:
                    path_push(d.pc)
                    if d.target_pc >= 0:
                        btb_update(d.pc, d.target_pc)
                    last_line = -1
            # ---- data side: L1D/DTLB, prefetchers, DRAM ---------------
            elif d.is_load:
                mem_load(d.pc, d.addr, cycle)
            elif d.is_store:
                mem_store(d.pc, d.addr, cycle)

            # ---- mechanism predictors (rename-side lookups) -----------
            eligible = d.eligible
            if eligible:
                if zero_predictor is not None:
                    zero_predictor.train(
                        zero_predictor.predict(d.pc), d.result == 0
                    )
                if vp is not None:
                    vp_train(vp_predict(d.pc), d.result)

            # ---- commit-side producer stream (RSEP pairing) -----------
            if rsep is None or d.dest == no_reg:
                continue
            if rsep_sampling:
                # §IV.B.3 sampling: one pairing search (and one
                # predictor lookup) per commit group is all the detailed
                # commit path performs, so warming does the same.
                if eligible and not (move_elim and d.move):
                    group_eligible.append((len(group_results), d.pc))
                group_results.append(d.result)
                if len(group_results) >= commit_width:
                    self._observe_sampling(group_results, group_eligible)
                    del group_results[:]
                    del group_eligible[:]
                continue
            op = _WarmOp(d)
            if eligible and not (move_elim and d.move):
                prediction = rsep_predict(d.pc)
                op.dist_pred = prediction
                distance = prediction.distance
                if 0 < distance <= len(ring):
                    producer = ring[-distance]
                    if prediction.use_pred:
                        # Emulate §IV.G commit-time validation: a shared
                        # register whose producer's value differs would
                        # squash and collapse confidence.
                        if (producer.d.dest >= fp_base) == (
                            d.dest >= fp_base
                        ) and producer.d.result != d.result:
                            rsep_mispredict(prediction)
                    elif prediction.likely_candidate:
                        op.likely_candidate = True
                        op.producer = producer
            group.append(op)
            ring.append(op)
            if len(group) >= commit_width:
                rsep_observe(group)
                del group[:]
                if len(ring) > _RING_TRIM:
                    del ring[:-_RING_KEEP]

        if rsep is not None:
            if group:
                rsep_observe(group)
                del group[:]
            if group_results:
                self._observe_sampling(group_results, group_eligible)
        return end, cycle

    def _warm_columnar(self, start: int, count: int,
                       cycle: int) -> tuple[int, int]:
        """Column-indexed warming: :meth:`warm` over packed columns.

        Replays exactly the structure updates of the object loop —
        ``tests/test_columnar_equivalence.py`` pins sampled runs
        bit-identical across both paths — while every per-instruction
        read is a flat column index (``lines[i]``, ``kinds[i]`` bit
        tests, …) instead of a ``DynInst`` attribute chain.
        """
        p = self.pipeline
        trace = p.trace
        end = min(start + count, trace.n)
        if end <= start:
            return start, cycle

        lines = trace.lines
        pcs = trace.pcs
        kinds = trace.kinds
        flags = trace.flags
        dests = trace.dests
        addrs = trace.addrs
        results = trace.results
        targets = trace.targets
        eligibles = trace.eligibles

        hierarchy = p.hierarchy
        mem_load = hierarchy.load
        mem_store = hierarchy.store
        mem_fetch = hierarchy.fetch
        branch_unit = p.branch_unit
        tage_predict = branch_unit.tage.predict
        tage_update = branch_unit.tage.update
        btb_lookup = branch_unit.btb.lookup
        btb_update = branch_unit.btb.update
        ras = branch_unit.ras
        history_push = p.history.push
        path_push = p.path.push
        zero_predictor = p.zero_predictor
        vp = p.vp
        if vp is not None:
            vp_predict = vp.predictor.predict
            vp_train = vp.predictor.train
        rsep = p.rsep
        if rsep is not None:
            rsep_predict = rsep.predictor.predict
            rsep_observe = rsep.observe_commit_group
            rsep_mispredict = rsep.on_mispredict
        rsep_sampling = self._rsep_sampling
        group_results: list[int] = []
        group_eligible: list[tuple[int, int]] = []
        move_elim = self._move_elim
        commit_width = p.config.commit_width
        ring = self._ring
        group = self._group
        no_reg = NO_REG
        fp_base = FP_BASE
        kind_branch = KIND_BRANCH
        kind_conditional = KIND_CONDITIONAL
        kind_return = KIND_RETURN
        kind_call = KIND_CALL
        kind_load = KIND_LOAD
        kind_store = KIND_STORE
        flag_taken = TAKEN
        flag_move = MOVE

        last_line = -1
        for index in range(start, end):
            cycle += 1

            # ---- front end: L1I/ITLB and branch structures ------------
            pc = pcs[index]
            line = lines[index]
            kind = kinds[index]
            if line != last_line:
                mem_fetch(pc, cycle)
                last_line = line
            if kind & kind_branch:
                taken = flags[index] & flag_taken != 0
                if kind & kind_conditional:
                    prediction = tage_predict(pc)
                    if prediction.taken == taken and taken:
                        btb_lookup(pc)
                    history_push(1 if taken else 0)
                    tage_update(prediction, taken)
                elif kind & kind_return:
                    ras.pop()
                else:
                    btb_lookup(pc)
                    if kind & kind_call:
                        ras.push(pc + INSTR_BYTES)
                if taken:
                    path_push(pc)
                    target_pc = targets[index]
                    if target_pc >= 0:
                        btb_update(pc, target_pc)
                    last_line = -1
            # ---- data side: L1D/DTLB, prefetchers, DRAM ---------------
            elif kind & kind_load:
                mem_load(pc, addrs[index], cycle)
            elif kind & kind_store:
                mem_store(pc, addrs[index], cycle)

            # ---- mechanism predictors (rename-side lookups) -----------
            eligible = eligibles[index]
            if eligible:
                if zero_predictor is not None:
                    zero_predictor.train(
                        zero_predictor.predict(pc), results[index] == 0
                    )
                if vp is not None:
                    vp_train(vp_predict(pc), results[index])

            # ---- commit-side producer stream (RSEP pairing) -----------
            dest = dests[index]
            if rsep is None or dest == no_reg:
                continue
            is_move = flags[index] & flag_move != 0
            if rsep_sampling:
                # §IV.B.3 sampling: one pairing search (and one
                # predictor lookup) per commit group is all the detailed
                # commit path performs, so warming does the same.
                if eligible and not (move_elim and is_move):
                    group_eligible.append((len(group_results), pc))
                group_results.append(results[index])
                if len(group_results) >= commit_width:
                    self._observe_sampling(group_results, group_eligible)
                    del group_results[:]
                    del group_eligible[:]
                continue
            op = _ColumnarWarmOp(dest, results[index])
            if eligible and not (move_elim and is_move):
                prediction = rsep_predict(pc)
                op.dist_pred = prediction
                distance = prediction.distance
                if 0 < distance <= len(ring):
                    producer = ring[-distance]
                    if prediction.use_pred:
                        # Emulate §IV.G commit-time validation: a shared
                        # register whose producer's value differs would
                        # squash and collapse confidence.
                        if (producer.d.dest >= fp_base) == (
                            dest >= fp_base
                        ) and producer.d.result != results[index]:
                            rsep_mispredict(prediction)
                    elif prediction.likely_candidate:
                        op.likely_candidate = True
                        op.producer = producer
            group.append(op)
            ring.append(op)
            if len(group) >= commit_width:
                rsep_observe(group)
                del group[:]
                if len(ring) > _RING_TRIM:
                    del ring[:-_RING_KEEP]

        if rsep is not None:
            if group:
                rsep_observe(group)
                del group[:]
            if group_results:
                self._observe_sampling(group_results, group_eligible)
        return end, cycle

    def _observe_sampling(
        self, results: list[int], eligible: list[tuple[int, int]]
    ) -> None:
        """Sampling-mode commit group: one search, batched pushes.

        Mirrors the sampling branch of
        :meth:`~repro.core.rsep.RsepUnit.observe_commit_group` — select
        one candidate, push every older producer's hash, search, train,
        push the rest (one fused ``find_push_group`` pass) — with the
        predictor lookup deferred to the selected candidate alone.
        Likely-candidate validation training is not replayed (it would
        need a lookup per producer); detailed intervals provide that
        feedback.  The commit-group size histogram and HRF port counters
        are deliberately *not* touched: they describe the detailed
        machine's real commit groups (§IV.D), which warming's fixed-size
        pseudo-groups would distort.
        """
        self._observe_sampling_hashed(self._fold_values(results), eligible)

    def _observe_sampling_hashed(
        self, hashes: list[int], eligible: list[tuple[int, int]]
    ) -> None:
        """:meth:`_observe_sampling` with the hash fold precomputed.

        The vectorised warmer folds a whole span's producer results in
        one array pass and hands each group's slice here, so the
        selection/search/train sequence stays this single shared
        implementation on both planes.
        """
        rsep = self.pipeline.rsep
        pairing = rsep.pairing
        if eligible:
            position, pc = eligible[rsep._rng.next_below(len(eligible))]
            prediction = rsep.predictor.predict(pc)
            # One fused search-and-push pass over the group: prefs of -1
            # mean push-only, 0 at the selected position searches with
            # no preferred distance — exactly the detailed sampling
            # branch's push/find/push sequence.
            prefs = [-1] * len(hashes)
            prefs[position] = 0
            observed = pairing.find_push_group(
                hashes, prefs, rsep.max_distance
            )[position]
            rsep.predictor.train_from_pairing(prediction, observed)
        else:
            pairing.push_group(hashes)
