"""Sampled simulation: interval sampling with functional warming.

The subsystem behind 10×-larger measurement windows (DESIGN.md §8):
short detailed intervals alternate with a stripped committed-path replay
that keeps every stateful structure warm, per-interval statistics
aggregate into a windowed IPC estimate with a confidence interval, and
microarchitectural checkpoints persist the warmed state so repeated
sweeps skip warm-up entirely.
"""

from repro.sampling.checkpoint import (
    CheckpointError,
    capture_checkpoint,
    restore_checkpoint,
)
from repro.sampling.config import SamplingConfig
from repro.sampling.controller import SampledRun, confidence_halfwidth
from repro.sampling.warming import FunctionalWarmer

__all__ = [
    "CheckpointError",
    "FunctionalWarmer",
    "SampledRun",
    "SamplingConfig",
    "capture_checkpoint",
    "confidence_halfwidth",
    "restore_checkpoint",
]
