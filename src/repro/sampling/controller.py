"""The sampled-simulation controller (DESIGN.md §8).

Drives one pipeline through a measurement window as alternating detailed
intervals and functionally warmed gaps:

* **warm-up** runs entirely in functional warming (or is skipped by a
  restored µarch checkpoint — see :mod:`repro.sampling.checkpoint`);
* each **interval** starts with ``detail_span`` instructions on the
  cycle-level pipeline, then drains speculation back to the committed
  frontier and warms the remaining ``skip_span`` instructions;
* per-interval ``(committed, cycles)`` samples aggregate into the
  windowed IPC estimate — the plain ratio estimator, which is exactly
  ``Stats.ipc`` since counters only tick during detailed intervals —
  plus a confidence interval on the per-interval IPC spread.

The degenerate 100%-duty configuration (``skip_span == 0``) never
drains, never warms and never writes the sampling fields: the loop is
then a chain of ``run_until`` calls with increasing targets, which is
bit-identical to one plain full-detail run (golden-stats gated).
"""

from __future__ import annotations

import dataclasses
import math

from repro.common.rng import XorShift64
from repro.obs.runtime import obs_tracer
from repro.pipeline.stats import Stats
from repro.sampling.config import SamplingConfig
from repro.sampling.vecwarm import make_warmer

#: Seed of the (deterministic) gap-jitter stream.
_JITTER_SEED = 0x5A3D_11E7_AB1E_0001

#: Stats fields written by the controller itself (never debited).
_SAMPLING_FIELDS = ("intervals", "warmed", "sampled_window", "ipc_ci")

#: Every window counter: the ramp's contribution is subtracted from
#: exactly these, so raw statistics cover measured spans alone.
_COUNTER_FIELDS = tuple(
    f.name
    for f in dataclasses.fields(Stats)
    if f.name != "extra" and f.name not in _SAMPLING_FIELDS
)

#: Two-sided normal critical values for the supported confidence levels.
_Z_VALUES = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


def z_value(confidence: float) -> float:
    """Critical value for the nearest supported confidence level."""
    nearest = min(_Z_VALUES, key=lambda level: abs(level - confidence))
    return _Z_VALUES[nearest]


def confidence_halfwidth(values: list[float], confidence: float) -> float:
    """Half-width of the CI on the mean of *values* (0.0 below 2 samples)."""
    n = len(values)
    if n < 2:
        return 0.0
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return z_value(confidence) * math.sqrt(variance / n)


class SampledRun:
    """One sampled execution of a pipeline over its trace."""

    def __init__(self, pipeline, config: SamplingConfig) -> None:
        self.pipeline = pipeline
        self.config = config
        # Vectorised when NumPy + columnar trace + REPRO_VECWARM allow;
        # bit-identical pure-Python warming otherwise (DESIGN.md §12).
        self.warmer = make_warmer(pipeline)
        # Per-interval gap jitter (uniform within ±half the nominal gap)
        # decorrelates interval boundaries from program periodicity —
        # systematic sampling aliases badly on loop-phased kernels.
        # Deterministically seeded: sampled runs stay reproducible.
        self._rng = XorShift64(_JITTER_SEED)

    # ------------------------------------------------------------------

    def warm_up(self, instructions: int) -> int:
        """Cover the warm-up window with functional warming alone.

        Mirrors the checkpoint methodology of §V: all microarchitectural
        state is primed, no cycles are measured.  Returns the number of
        instructions actually warmed (less than requested only when the
        trace halts early).
        """
        pipeline = self.pipeline
        if instructions <= 0:
            return 0
        start = pipeline._cursor
        with obs_tracer().span(
            "sample.warmup", start=start, instructions=instructions
        ):
            end, cycle = self.warmer.warm(start, instructions, pipeline.cycle)
        pipeline.skip_to(end, cycle)
        return end - start

    def measure(self, instructions: int):
        """Sample a window of *instructions* and return the pipeline Stats.

        Each interval is ``[detailed ramp | measured detail span | warmed
        gap]``.  The ramp refills the drained backend before measurement
        and is excluded from every counter (its per-field contribution is
        debited at the end); the measured span feeds both the raw
        counters and the per-interval IPC samples; the gap runs through
        the functional warmer.  With ``skip_span == 0`` (degenerate) the
        loop chains measured spans only and the result is bit-identical
        to a plain full-detail run.
        """
        import gc

        pipeline = self.pipeline
        config = self.config
        detail = config.detail_span
        skip = config.skip_span
        ramp = config.ramp_span
        warm_span = skip - ramp
        stats = pipeline.stats
        trace_length = len(pipeline.trace)
        # Resolved once per window: a few spans per *interval* (not per
        # step), and the null tracer's span is one shared no-op object.
        tracer = obs_tracer()
        samples: list[tuple[int, int]] = []
        debits = [0] * len(_COUNTER_FIELDS) if skip > 0 and ramp else None
        covered = 0
        warmed = 0

        # The measurement window starts from pipeline state alone — the
        # warmer's producer ring is an in-flight emulation that a drain
        # (or a checkpoint restore, which captures pipeline state only)
        # legitimately empties.  Resetting it here keeps cold and
        # checkpoint-restored runs bit-identical for every mechanism.
        self.warmer.reset_producer_ring()
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            stats.reset_window()
            while covered < instructions and not pipeline._finished():
                if debits is not None:
                    # Detailed ramp after a cold (just-warmed) restart.
                    before = [
                        getattr(stats, name) for name in _COUNTER_FIELDS
                    ]
                    committed_before = stats.committed
                    pipeline.run_until(pipeline.total_committed + ramp)
                    covered += stats.committed - committed_before
                    for position, name in enumerate(_COUNTER_FIELDS):
                        debits[position] += (
                            getattr(stats, name) - before[position]
                        )
                    if covered >= instructions:
                        break
                span = min(detail, instructions - covered)
                committed_before = stats.committed
                cycles_before = stats.cycles
                with tracer.span(
                    "sample.interval", index=len(samples), span=span,
                    start=pipeline.total_committed,
                ):
                    pipeline.run_until(pipeline.total_committed + span)
                d_committed = stats.committed - committed_before
                d_cycles = stats.cycles - cycles_before
                if d_committed:
                    samples.append((d_committed, d_cycles))
                covered += d_committed
                if covered >= instructions or skip <= 0:
                    if skip <= 0 and covered < instructions:
                        continue  # degenerate: chain the next detail span
                    break
                resume = pipeline.drain_inflight()
                if resume >= trace_length:
                    break
                if warm_span > 0:
                    half = warm_span >> 1
                    jittered = warm_span - half + self._rng.next_below(
                        2 * half + 1
                    )
                    with tracer.span(
                        "sample.warm_gap", start=resume,
                        instructions=min(jittered, instructions - covered),
                    ):
                        end, cycle = self.warmer.warm(
                            resume,
                            min(jittered, instructions - covered),
                            pipeline.cycle,
                        )
                    warmed += end - resume
                    covered += end - resume
                    pipeline.skip_to(end, cycle)
                    if end >= trace_length:
                        break
        finally:
            if gc_was_enabled:
                gc.enable()

        if debits is not None:
            for name, debit in zip(_COUNTER_FIELDS, debits):
                setattr(stats, name, getattr(stats, name) - debit)
        if skip > 0:
            stats.intervals = len(samples)
            stats.warmed = warmed
            stats.sampled_window = covered
            stats.ipc_ci = confidence_halfwidth(
                [committed / cycles for committed, cycles in samples if cycles],
                config.confidence,
            )
        return stats
