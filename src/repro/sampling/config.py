"""Sampled-simulation configuration (DESIGN.md §8).

Interval sampling in the SMARTS tradition: the measurement window is cut
into fixed-size intervals, a *detail span* at the head of each interval
runs on the cycle-level pipeline, and the remainder is covered by the
functional warmer (:mod:`repro.sampling.warming`), which keeps every
stateful structure trained while skipping the scheduler entirely.

Follows the existing window conventions (DESIGN.md §2): the sampled mode
and its parameters come from environment variables so benches and CLIs
pick them up without code changes.

| variable             | default | meaning                             |
|----------------------|---------|-------------------------------------|
| ``REPRO_SAMPLING``   | unset   | enable interval sampling            |
| ``REPRO_INTERVAL``   | 18500   | instructions per sampling interval  |
| ``REPRO_DETAIL_RATIO`` | .0811 | fraction of each interval *measured*|
|                      |         | in cycle-level detail               |
| ``REPRO_DETAIL_WARMUP`` | 768  | detailed ramp before each measured  |
|                      |         | span (excluded from statistics)     |

A detail ratio of 1.0 is the *degenerate* configuration: the whole
window runs in detail, the warmer never fires, and the run is required
to be bit-identical to a plain full-detail run (``active`` is False, and
the golden-stats suite gates the controller's chunked loop directly).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SamplingConfig:
    """Everything that parameterises a sampled run."""

    enabled: bool = False
    #: Instructions per interval (ramp + detail span + warmed remainder).
    interval: int = 18500
    #: Fraction of each interval *measured* in cycle-level detail.
    detail_ratio: float = 0.0811
    #: Detailed ramp run before each measured span so the backend (ROB
    #: occupancy, outstanding misses) reaches steady state; excluded
    #: from all statistics.  SMARTS calls this detailed warming — it is
    #: short precisely because functional warming keeps every predictor
    #: and cache trained across the gap.
    detail_warmup: int = 768
    #: Confidence level of the reported IPC interval (0.90/0.95/0.99).
    confidence: float = 0.95
    #: Capture/restore µarch checkpoints through the trace store so
    #: repeated sweeps skip the warm-up warming entirely.
    checkpoints: bool = True

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if not 0.0 < self.detail_ratio <= 1.0:
            raise ValueError("detail_ratio must be in (0, 1]")
        if self.detail_warmup < 0:
            raise ValueError("detail_warmup must be non-negative")
        if self.confidence not in (0.90, 0.95, 0.99):
            raise ValueError(
                "confidence must be one of 0.90, 0.95, 0.99 (the "
                "supported normal critical values)"
            )

    # ------------------------------------------------------------------

    @property
    def detail_span(self) -> int:
        """Detailed instructions at the head of each interval."""
        span = round(self.interval * self.detail_ratio)
        return max(1, min(self.interval, span))

    @property
    def skip_span(self) -> int:
        """Functionally warmed instructions per interval."""
        return self.interval - self.detail_span

    @property
    def ramp_span(self) -> int:
        """Detailed-but-unmeasured ramp per interval (0 when degenerate).

        The ramp never exceeds the warmed gap it recovers from: with
        nothing skipped there is nothing to ramp back from.
        """
        return min(self.detail_warmup, self.skip_span)

    @property
    def active(self) -> bool:
        """True iff sampling would actually skip anything.

        The degenerate 100%-duty configuration is *inactive*: it runs
        the plain full-detail path (trivially bit-identical), and its
        cell fingerprint collapses onto the non-sampled one so sweep
        memos share the cell.
        """
        return self.enabled and self.skip_span > 0

    def fingerprint(self) -> str:
        """Cell-key component (joins the sweep-engine fingerprint)."""
        if not self.active:
            return "off"
        return (
            f"interval={self.interval},detail={self.detail_span},"
            f"ramp={self.ramp_span},confidence={self.confidence}"
        )

    # ------------------------------------------------------------------

    @classmethod
    def disabled(cls) -> "SamplingConfig":
        return cls()

    @classmethod
    def from_environment(cls) -> "SamplingConfig":
        """Deprecated: use :func:`repro.api.env.sampling_from_env` (or
        better, build the config explicitly in a spec)."""
        from repro.api import env as api_env

        api_env.deprecated(
            "SamplingConfig.from_environment",
            "repro.api.env.sampling_from_env",
        )
        return api_env.sampling_from_env()
