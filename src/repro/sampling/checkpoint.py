"""Microarchitectural checkpoint capture/restore (DESIGN.md §8).

A sampled run spends its warm-up entirely in functional warming; the
state that warming produces — predictor tables, cache/TLB/DRAM state,
history registers, pairing FIFOs, RNG streams — is a pure function of
``(benchmark, seed, warm-up length, mechanism + core configuration,
workload code)``.  This module snapshots that state into a picklable
tree of primitives so the trace store can persist it content-addressed
alongside traces, and later runs restore it instead of re-warming.

Capture walks the object graph generically (``__dict__``/``__slots__``),
recording primitives and containers and skipping anything immutable or
derived: callables (the code-generated fast paths), frozen-dataclass
configurations and enums.  Restore walks the *live* graph of a freshly
constructed pipeline in lockstep and writes values **in place** — table
lists, folded registers and memo dicts keep their identity, which is
essential because the generated fast paths close over those exact
objects.  Shared objects (the global history is referenced by the branch
unit, the distance predictor and D-VTAGE alike) are captured once and
matched by traversal position, which is deterministic on both sides.

Any structural mismatch — a different geometry, a renamed attribute, a
foreign payload — raises :class:`CheckpointError`; callers treat that as
a cache miss and fall back to warming from scratch.
"""

from __future__ import annotations

import dataclasses
import enum
from array import array
from collections import deque

#: Bump when the snapshot encoding changes; readers reject other formats.
CHECKPOINT_FORMAT = 1

_LEAF_TYPES = (bool, int, float, str, bytes, type(None))

#: Restore-side sentinel: "restored in place / keep the live value".
_KEEP = object()


class CheckpointError(RuntimeError):
    """A checkpoint payload cannot be applied to this pipeline."""


# ---------------------------------------------------------------------------
# Capture
# ---------------------------------------------------------------------------


def _slot_names(obj) -> list[str]:
    names: list[str] = []
    for klass in type(obj).__mro__:
        slots = getattr(klass, "__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if name not in ("__dict__", "__weakref__"):
                names.append(name)
    return names


def _attr_items(obj):
    seen = set()
    instance_dict = getattr(obj, "__dict__", None)
    if instance_dict is not None:
        for name, value in instance_dict.items():
            seen.add(name)
            yield name, value
    for name in _slot_names(obj):
        if name in seen or not hasattr(obj, name):
            continue
        seen.add(name)
        yield name, getattr(obj, name)


def _impure(snap) -> bool:
    """True iff *snap* references live objects (needs lockstep restore)."""
    return isinstance(snap, dict) and (
        snap["k"] in ("O", "R", "X") or bool(snap.get("o"))
    )


def _capture(value, memo: dict[int, int]):
    if isinstance(value, _LEAF_TYPES):
        return value
    if isinstance(value, enum.Enum) or callable(value):
        return {"k": "X"}
    if dataclasses.is_dataclass(value) and value.__dataclass_params__.frozen:
        # Immutable configuration: identical on the restore side by
        # construction (the checkpoint key covers it).
        return {"k": "X"}
    if isinstance(value, array):
        return {"k": "A", "t": value.typecode, "b": value.tobytes()}
    if isinstance(value, (list, tuple, set, frozenset, deque)):
        items = [_capture(item, memo) for item in value]
        kind = {
            list: "L", tuple: "T", set: "S", frozenset: "FS", deque: "Q",
        }[type(value)]
        node = {"k": kind, "v": items, "o": any(map(_impure, items))}
        if kind == "Q":
            node["m"] = value.maxlen
        return node
    if isinstance(value, dict):
        entries = []
        impure = False
        for key, val in value.items():
            ksnap = _capture(key, memo)
            if _impure(ksnap):
                raise CheckpointError("object-valued dict key")
            vsnap = _capture(val, memo)
            impure = impure or _impure(vsnap)
            entries.append((ksnap, vsnap))
        return {"k": "D", "v": entries, "o": impure}
    # Generic object: capture once, reference thereafter.
    ident = memo.get(id(value))
    if ident is not None:
        return {"k": "R", "id": ident}
    ident = len(memo)
    memo[id(value)] = ident
    attrs = {
        name: _capture(attr, memo)
        for name, attr in _attr_items(value)
        if not callable(attr)
    }
    return {"k": "O", "id": ident, "c": type(value).__name__, "a": attrs}


# ---------------------------------------------------------------------------
# Restore
# ---------------------------------------------------------------------------


def _build(snap):
    """Construct a fresh value from a *pure* snapshot node."""
    if not isinstance(snap, dict):
        return snap
    kind = snap["k"]
    if kind == "A":
        return array(snap["t"], snap["b"])
    if kind == "L":
        return [_build(item) for item in snap["v"]]
    if kind == "T":
        return tuple(_build(item) for item in snap["v"])
    if kind == "S":
        return {_build(item) for item in snap["v"]}
    if kind == "FS":
        return frozenset(_build(item) for item in snap["v"])
    if kind == "Q":
        return deque((_build(item) for item in snap["v"]), snap["m"])
    if kind == "D":
        return {_build(k): _build(v) for k, v in snap["v"]}
    raise CheckpointError(f"cannot build impure node {kind!r}")


def _restore(live, snap, restored: set[int]):
    """Apply *snap* over *live*; returns ``_KEEP`` or a fresh value."""
    if not isinstance(snap, dict):
        return snap
    kind = snap["k"]
    if kind in ("X", "R"):
        return _KEEP
    if kind == "O":
        ident = snap["id"]
        if ident not in restored:
            restored.add(ident)
            if type(live).__name__ != snap["c"]:
                raise CheckpointError(
                    f"object mismatch: live {type(live).__name__}, "
                    f"snapshot {snap['c']}"
                )
            for name, vsnap in snap["a"].items():
                if not hasattr(live, name):
                    raise CheckpointError(f"missing attribute {name!r}")
                new = _restore(getattr(live, name), vsnap, restored)
                if new is not _KEEP:
                    setattr(live, name, new)
        return _KEEP
    if kind == "A":
        return array(snap["t"], snap["b"])
    if kind == "L":
        items = snap["v"]
        if isinstance(live, list) and len(live) == len(items):
            # Construction-shaped list: restore element-wise in place so
            # nested lists keep their identity (generated code closes
            # over them).
            for position, isnap in enumerate(items):
                new = _restore(live[position], isnap, restored)
                if new is not _KEEP:
                    live[position] = new
            return _KEEP
        if snap["o"]:
            raise CheckpointError("shape drift in object-bearing list")
        if isinstance(live, list):
            live[:] = [_build(item) for item in items]
            return _KEEP
        return [_build(item) for item in items]
    if kind == "T":
        items = snap["v"]
        if not snap["o"]:
            return tuple(_build(item) for item in items)
        if not isinstance(live, tuple) or len(live) != len(items):
            raise CheckpointError("tuple shape drift")
        for vlive, vsnap in zip(live, items):
            new = _restore(vlive, vsnap, restored)
            if new is not _KEEP and new != vlive:
                raise CheckpointError("leaf drift inside immutable tuple")
        return _KEEP
    if kind == "D":
        entries = snap["v"]
        if isinstance(live, dict):
            if snap["o"]:
                # Construction-shaped object dict: lockstep by key.
                for ksnap, vsnap in entries:
                    key = _build(ksnap)
                    if key not in live:
                        raise CheckpointError(f"missing dict key {key!r}")
                    new = _restore(live[key], vsnap, restored)
                    if new is not _KEEP:
                        live[key] = new
                return _KEEP
            live.clear()
            for ksnap, vsnap in entries:
                live[_build(ksnap)] = _build(vsnap)
            return _KEEP
        if snap["o"]:
            raise CheckpointError("object dict without live counterpart")
        return {_build(k): _build(v) for k, v in entries}
    if kind in ("S", "FS", "Q"):
        if snap["o"]:
            raise CheckpointError(f"objects inside {kind} container")
        if kind == "Q" and isinstance(live, deque):
            live.clear()
            live.extend(_build(item) for item in snap["v"])
            return _KEEP
        if kind == "S" and isinstance(live, set):
            live.clear()
            live.update(_build(item) for item in snap["v"])
            return _KEEP
        return _build(snap)
    raise CheckpointError(f"unknown snapshot node {kind!r}")


# ---------------------------------------------------------------------------
# Pipeline-level API
# ---------------------------------------------------------------------------


def warm_state_roots(pipeline) -> dict:
    """The stateful structures functional warming trains, by name.

    Insertion order is the traversal order, which must be identical at
    capture and restore for shared-object references to pair up.
    """
    roots = {
        "history": pipeline.history,
        "path": pipeline.path,
        "branch_unit": pipeline.branch_unit,
        "hierarchy": pipeline.hierarchy,
    }
    if pipeline.rsep is not None:
        roots["rsep"] = pipeline.rsep
    if pipeline.vp is not None:
        roots["vp"] = pipeline.vp
    if pipeline.zero_predictor is not None:
        roots["zero_predictor"] = pipeline.zero_predictor
    return roots


def capture_checkpoint(pipeline) -> dict:
    """Snapshot the warmed state (plus cursor and clock) of *pipeline*."""
    memo: dict[int, int] = {}
    return {
        "format": CHECKPOINT_FORMAT,
        "cursor": pipeline._cursor,
        "cycle": pipeline.cycle,
        "roots": {
            name: _capture(obj, memo)
            for name, obj in warm_state_roots(pipeline).items()
        },
    }


def restore_checkpoint(pipeline, payload: dict) -> None:
    """Apply a captured checkpoint to a freshly constructed *pipeline*.

    Raises :class:`CheckpointError` on any mismatch; the pipeline may be
    partially mutated in that case and must be discarded by the caller.
    """
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"unsupported checkpoint format {payload.get('format')!r}"
        )
    roots = warm_state_roots(pipeline)
    snaps = payload.get("roots")
    if not isinstance(snaps, dict) or set(snaps) != set(roots):
        raise CheckpointError("checkpoint roots do not match this pipeline")
    restored: set[int] = set()
    for name, obj in roots.items():
        _restore(obj, snaps[name], restored)
    # Capture skips callables, so the history's generated push closure
    # was not restored — but its paired dirty flag was.  Re-arm the flag
    # so the closure regenerates on first use.
    pipeline.history._push_dirty = True
    # The element-wise restore just rewrote predictor tables (and wrote
    # back a captured table version that may already tag memo entries);
    # re-stamp with a globally fresh version so the fast-predict memo
    # can never serve a pre-restore prediction.
    rsep = pipeline.rsep
    if rsep is not None and hasattr(
        rsep.predictor, "invalidate_prediction_memo"
    ):
        rsep.predictor.invalidate_prediction_memo()
    pipeline.skip_to(payload["cursor"], payload["cycle"])
