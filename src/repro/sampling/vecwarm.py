"""NumPy-vectorised functional warming over packed columns (DESIGN.md §12).

The pure-Python :class:`~repro.sampling.warming.FunctionalWarmer` touches
every instruction of a warmed span, but most instructions touch nothing:
a plain ALU op on an already-fetched line trains no cache, no branch
structure, no predictor.  With the columnar trace plane the per-span
*event set* — fetch-line boundaries, branches, loads, stores, predictor-
eligible producers, commit-group boundaries — is computable with whole-
interval array operations, so this warmer:

* mirrors the trace columns into NumPy arrays once per trace (uint8 views
  of the packed kind/flag bytes, int64 copies of lines/dests/results, a
  bool copy of the eligibility column);
* builds the span's event mask with array compares (the fetch mask folds
  the ``last_line`` recurrence: instruction *i* fetches iff its line
  differs from line *i-1* or *i-1* was a taken branch);
* folds *all* producer-result hashes of the span in one vectorised pass
  (arithmetic shifts and masks on int64 match Python semantics for
  ``array('q')`` values) when RSEP runs in sampling mode;
* then walks only ``nonzero(event_mask)`` indices, running the *same*
  per-event structure updates as the scalar loop — every scalar handed
  to simulator state is read from the original Python columns, so no
  ``numpy.int64`` ever leaks into predictor tables.

Commit groups are observed in-stream at the index of the producer that
fills them (predictor lookups must see the branch history of that
interleaving point), exactly where the scalar loop observes them; the
selection/search/train sequence is the shared
``_observe_sampling_hashed``.  Stats stay bit-identical to the pure
plane — pinned by the golden equivalence suite — and the pure warmer
remains the live fallback when NumPy is absent or ``REPRO_VECWARM=0``.
"""

from __future__ import annotations

from repro.isa.instruction import NO_REG
from repro.isa.program import INSTR_BYTES
from repro.isa.registers import FP_BASE
from repro.workloads.columnar import (
    KIND_BRANCH,
    KIND_CALL,
    KIND_CONDITIONAL,
    KIND_LOAD,
    KIND_RETURN,
    KIND_STORE,
    MOVE,
    TAKEN,
    ColumnarTrace,
)
from repro.sampling.warming import (
    _RING_KEEP,
    _RING_TRIM,
    FunctionalWarmer,
    _ColumnarWarmOp,
)

try:  # NumPy is an optional dependency: absence selects the pure plane.
    import numpy as np
except ImportError:  # pragma: no cover - exercised via the no-NumPy CI leg
    np = None


def numpy_available() -> bool:
    """Whether the vectorised plane can run in this interpreter."""
    return np is not None


def make_warmer(pipeline) -> FunctionalWarmer:
    """The warming plane for *pipeline*: vectorised when possible.

    Vectorised warming needs NumPy, a columnar trace, and
    ``REPRO_VECWARM`` unset/on; anything else gets the pure-Python
    warmer.  Both planes produce bit-identical statistics, so the choice
    is invisible to everything downstream.
    """
    from repro.api.env import vecwarm_enabled

    if (
        np is not None
        and vecwarm_enabled()
        and isinstance(pipeline.trace, ColumnarTrace)
    ):
        return VecFunctionalWarmer(pipeline)
    return FunctionalWarmer(pipeline)


class VecFunctionalWarmer(FunctionalWarmer):
    """Event-indexed :class:`FunctionalWarmer` over NumPy column mirrors."""

    def __init__(self, pipeline) -> None:
        super().__init__(pipeline)
        self._np_cols = None
        self._np_cols_key = None

    # ------------------------------------------------------------------

    def _columns(self, trace):
        """NumPy mirrors of the trace columns (cached per trace length).

        The key includes ``trace.n`` so a trace extended in place by the
        simulator's prefix cache invalidates the mirror.
        """
        key = (id(trace), trace.n)
        if self._np_cols_key != key:
            n = trace.n
            self._np_cols = (
                np.frombuffer(trace.kinds, dtype=np.uint8, count=n),
                np.frombuffer(trace.flags, dtype=np.uint8, count=n),
                np.array(trace.lines, dtype=np.int64),
                np.array(trace.dests, dtype=np.int64),
                np.array(trace.results, dtype=np.uint64),
                np.array(trace.eligibles, dtype=np.bool_),
            )
            self._np_cols_key = key
        return self._np_cols

    def _fold_array(self, values):
        """Vectorised ``fold_values``: one shift/xor pass over uint64.

        Logical right shifts and ``& mask`` behave identically on
        ``numpy.uint64`` and non-negative Python ints, which is exactly
        the domain (``array('Q')`` results).
        """
        hash_bits = self.pipeline.rsep.config.hash_bits
        folded = values.copy()
        for shift in range(hash_bits, 64, hash_bits):
            folded ^= values >> shift
        folded &= (1 << hash_bits) - 1
        return folded

    # ------------------------------------------------------------------

    def _warm_columnar(self, start: int, count: int,
                       cycle: int) -> tuple[int, int]:
        p = self.pipeline
        trace = p.trace
        end = min(start + count, trace.n)
        if end <= start:
            return start, cycle

        kinds_a, flags_a, lines_a, dests_a, results_a, elig_a = (
            self._columns(trace)
        )
        span = slice(start, end)
        kinds_s = kinds_a[span]
        flags_s = flags_a[span]
        lines_s = lines_a[span]

        # ---- whole-span event masks ----------------------------------
        branch_m = (kinds_s & KIND_BRANCH) != 0
        load_m = ~branch_m & ((kinds_s & KIND_LOAD) != 0)
        store_m = ~branch_m & ~load_m & ((kinds_s & KIND_STORE) != 0)
        taken_m = branch_m & ((flags_s & TAKEN) != 0)
        # last_line recurrence, folded: before instruction i the scalar
        # loop holds last_line == -1 (i == start, or i-1 taken branch)
        # or lines[i-1]; a fetch happens whenever lines[i] differs.
        fetch_m = np.empty(end - start, dtype=np.bool_)
        fetch_m[0] = True
        np.not_equal(lines_s[1:], lines_s[:-1], out=fetch_m[1:])
        fetch_m[1:] |= taken_m[:-1]

        event_m = fetch_m | branch_m | load_m | store_m

        zero_predictor = p.zero_predictor
        vp = p.vp
        if zero_predictor is not None or vp is not None:
            event_m |= elig_a[span]

        rsep = p.rsep
        rsep_sampling = self._rsep_sampling
        commit_width = p.config.commit_width
        move_elim = self._move_elim

        prod_rel: list[int] = []
        boundaries: list[int] = []
        hash_list: list[int] = []
        elig_prod: list[bool] = []
        if rsep is not None:
            prod_m = dests_a[span] != NO_REG
            if rsep_sampling:
                # Producers stay out of the event walk: their group
                # bookkeeping is precomputed here, and only the producer
                # that *fills* each group becomes an event (the in-stream
                # observation point of the scalar loop).
                prod_idx = np.nonzero(prod_m)[0]
                if len(prod_idx):
                    bounds = prod_idx[commit_width - 1::commit_width]
                    event_m[bounds] = True
                    boundaries = bounds.tolist()
                    prod_rel = prod_idx.tolist()
                    hash_list = self._fold_array(
                        results_a[span][prod_idx]
                    ).tolist()
                    elig_v = elig_a[span][prod_idx]
                    if move_elim:
                        elig_v = elig_v & (
                            (flags_s[prod_idx] & MOVE) == 0
                        )
                    elig_prod = elig_v.tolist()
            else:
                # Every producer feeds the ring/group stream: all are
                # events, handled by the faithful per-producer mirror.
                event_m |= prod_m

        events = np.nonzero(event_m)[0]
        fetch_ev = fetch_m[events].tolist()
        event_list = events.tolist()

        # ---- per-event scalar state (hoisted exactly like the pure
        # loop; every value handed over is read from the Python columns)
        pcs = trace.pcs
        kinds = trace.kinds
        flags = trace.flags
        dests = trace.dests
        addrs = trace.addrs
        results = trace.results
        targets = trace.targets
        eligibles = trace.eligibles

        hierarchy = p.hierarchy
        mem_load = hierarchy.load
        mem_store = hierarchy.store
        mem_fetch = hierarchy.fetch
        branch_unit = p.branch_unit
        tage_predict = branch_unit.tage.predict
        tage_update = branch_unit.tage.update
        btb_lookup = branch_unit.btb.lookup
        btb_update = branch_unit.btb.update
        ras = branch_unit.ras
        history_push = p.history.push
        path_push = p.path.push
        if vp is not None:
            vp_predict = vp.predictor.predict
            vp_train = vp.predictor.train
        if rsep is not None:
            rsep_predict = rsep.predictor.predict
            rsep_observe = rsep.observe_commit_group
            rsep_mispredict = rsep.on_mispredict
        observe_hashed = self._observe_sampling_hashed
        ring = self._ring
        group = self._group
        no_reg = NO_REG
        fp_base = FP_BASE
        kind_branch = KIND_BRANCH
        kind_conditional = KIND_CONDITIONAL
        kind_return = KIND_RETURN
        kind_call = KIND_CALL
        kind_load = KIND_LOAD
        kind_store = KIND_STORE
        flag_taken = TAKEN
        flag_move = MOVE
        next_boundary = 0
        n_boundaries = len(boundaries)

        for position, rel in enumerate(event_list):
            index = start + rel
            event_cycle = cycle + rel + 1

            # ---- front end: L1I/ITLB and branch structures ------------
            pc = pcs[index]
            kind = kinds[index]
            if fetch_ev[position]:
                mem_fetch(pc, event_cycle)
            if kind & kind_branch:
                taken = flags[index] & flag_taken != 0
                if kind & kind_conditional:
                    prediction = tage_predict(pc)
                    if prediction.taken == taken and taken:
                        btb_lookup(pc)
                    history_push(1 if taken else 0)
                    tage_update(prediction, taken)
                elif kind & kind_return:
                    ras.pop()
                else:
                    btb_lookup(pc)
                    if kind & kind_call:
                        ras.push(pc + INSTR_BYTES)
                if taken:
                    path_push(pc)
                    target_pc = targets[index]
                    if target_pc >= 0:
                        btb_update(pc, target_pc)
            # ---- data side: L1D/DTLB, prefetchers, DRAM ---------------
            elif kind & kind_load:
                mem_load(pc, addrs[index], event_cycle)
            elif kind & kind_store:
                mem_store(pc, addrs[index], event_cycle)

            # ---- mechanism predictors (rename-side lookups) -----------
            eligible = eligibles[index]
            if eligible:
                if zero_predictor is not None:
                    zero_predictor.train(
                        zero_predictor.predict(pc), results[index] == 0
                    )
                if vp is not None:
                    vp_train(vp_predict(pc), results[index])

            # ---- commit-side producer stream (RSEP pairing) -----------
            if rsep is None:
                continue
            if rsep_sampling:
                # Group observation at the filling producer's stream
                # position; group contents were precomputed above.
                if (
                    next_boundary < n_boundaries
                    and rel == boundaries[next_boundary]
                ):
                    base = next_boundary * commit_width
                    group_eligible = [
                        (offset, pcs[start + prod_rel[base + offset]])
                        for offset in range(commit_width)
                        if elig_prod[base + offset]
                    ]
                    observe_hashed(
                        hash_list[base:base + commit_width], group_eligible
                    )
                    next_boundary += 1
                continue
            dest = dests[index]
            if dest == no_reg:
                continue
            op = _ColumnarWarmOp(dest, results[index])
            if eligible and not (
                move_elim and flags[index] & flag_move != 0
            ):
                prediction = rsep_predict(pc)
                op.dist_pred = prediction
                distance = prediction.distance
                if 0 < distance <= len(ring):
                    producer = ring[-distance]
                    if prediction.use_pred:
                        # Emulate §IV.G commit-time validation: a shared
                        # register whose producer's value differs would
                        # squash and collapse confidence.
                        if (producer.d.dest >= fp_base) == (
                            dest >= fp_base
                        ) and producer.d.result != results[index]:
                            rsep_mispredict(prediction)
                    elif prediction.likely_candidate:
                        op.likely_candidate = True
                        op.producer = producer
            group.append(op)
            ring.append(op)
            if len(group) >= commit_width:
                rsep_observe(group)
                del group[:]
                if len(ring) > _RING_TRIM:
                    del ring[:-_RING_KEEP]

        if rsep is not None:
            if group:
                rsep_observe(group)
                del group[:]
            if rsep_sampling:
                # Flush the partial trailing group, mirroring the scalar
                # loop's end-of-span flush (no cross-span carry).
                tail = n_boundaries * commit_width
                if tail < len(prod_rel):
                    group_eligible = [
                        (offset, pcs[start + prod_rel[tail + offset]])
                        for offset in range(len(prod_rel) - tail)
                        if elig_prod[tail + offset]
                    ]
                    observe_hashed(hash_list[tail:], group_eligible)
        return end, cycle + (end - start)
