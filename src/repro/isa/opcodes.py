"""Opcode definitions and static metadata for the micro-ISA.

Each opcode carries enough metadata for decode, rename and the timing model:
which functional-unit class executes it, its execution latency (Table I),
whether it reads/writes memory, whether it produces a register result, and
whether it is recognised by the front-end as a zero idiom or a register move
(the non-speculative eliminations of §III / §IV.H.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum


class Opcode(IntEnum):
    """All instructions of the micro-ISA."""

    # Integer ALU, register-register.
    ADD = 0
    SUB = 1
    AND = 2
    ORR = 3
    EOR = 4
    LSL = 5
    LSR = 6
    # Integer ALU, register-immediate.
    ADDI = 7
    SUBI = 8
    ANDI = 9
    ORRI = 10
    EORI = 11
    LSLI = 12
    LSRI = 13
    # Constant / move.
    MOVZ = 14  # rd <- imm
    MOV = 15   # rd <- rs1 (64-bit register move, move-elimination candidate)
    # Long-latency integer.
    MUL = 16
    DIV = 17
    # Memory, integer.
    LDR = 18   # rd <- mem64[rs1 + imm]
    LDRB = 19  # rd <- zext(mem8[rs1 + imm])
    STR = 20   # mem64[rs1 + imm] <- rs2
    # Control flow (compare-and-branch, MIPS style: no flags).
    B = 21     # unconditional
    BEQ = 22   # taken iff rs1 == rs2
    BNE = 23
    BLT = 24   # signed <
    BGE = 25   # signed >=
    BL = 26    # call: X30 <- return pc, jump to target
    RET = 27   # jump to rs1 (conventionally X30)
    # Floating point (operands are raw 64-bit patterns of float64 values).
    FADD = 28
    FSUB = 29
    FMUL = 30
    FDIV = 31
    FMOV = 32   # fd <- fs1
    FMOVI = 33  # fd <- bits(imm_float)
    FLDR = 34   # fd <- mem64[rs1 + imm]
    FSTR = 35   # mem64[rs1 + imm] <- fs2
    # Misc.
    NOP = 36
    HALT = 37


class FuClass(IntEnum):
    """Functional-unit class, matching the port mix of Table I."""

    INT_ALU = 0
    INT_MUL = 1
    INT_DIV = 2
    FP_ALU = 3
    FP_MUL = 4
    FP_DIV = 5
    MEM_LOAD = 6
    MEM_STORE = 7
    BRANCH = 8
    NONE = 9  # eliminated at rename / NOP: consumes no issue slot


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one opcode."""

    mnemonic: str
    fu_class: FuClass
    latency: int
    writes_reg: bool
    reads_rs1: bool
    reads_rs2: bool
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False
    is_conditional: bool = False
    is_call: bool = False
    is_return: bool = False
    is_fp: bool = False
    pipelined: bool = True


# Execution latencies follow Table I: ALU 1c, Mul 3c, Div 25c (not
# pipelined), FP 3c, FPDiv 11c (not pipelined).  Load latency is determined
# by the memory hierarchy, so the value here is only the address-generation
# cost folded into the cache access in the timing model.
_ALU = dict(fu_class=FuClass.INT_ALU, latency=1, writes_reg=True)
_FP3 = dict(fu_class=FuClass.FP_ALU, latency=3, writes_reg=True, is_fp=True)

OP_INFO: dict[Opcode, OpInfo] = {
    Opcode.ADD: OpInfo("add", reads_rs1=True, reads_rs2=True, **_ALU),
    Opcode.SUB: OpInfo("sub", reads_rs1=True, reads_rs2=True, **_ALU),
    Opcode.AND: OpInfo("and", reads_rs1=True, reads_rs2=True, **_ALU),
    Opcode.ORR: OpInfo("orr", reads_rs1=True, reads_rs2=True, **_ALU),
    Opcode.EOR: OpInfo("eor", reads_rs1=True, reads_rs2=True, **_ALU),
    Opcode.LSL: OpInfo("lsl", reads_rs1=True, reads_rs2=True, **_ALU),
    Opcode.LSR: OpInfo("lsr", reads_rs1=True, reads_rs2=True, **_ALU),
    Opcode.ADDI: OpInfo("addi", reads_rs1=True, reads_rs2=False, **_ALU),
    Opcode.SUBI: OpInfo("subi", reads_rs1=True, reads_rs2=False, **_ALU),
    Opcode.ANDI: OpInfo("andi", reads_rs1=True, reads_rs2=False, **_ALU),
    Opcode.ORRI: OpInfo("orri", reads_rs1=True, reads_rs2=False, **_ALU),
    Opcode.EORI: OpInfo("eori", reads_rs1=True, reads_rs2=False, **_ALU),
    Opcode.LSLI: OpInfo("lsli", reads_rs1=True, reads_rs2=False, **_ALU),
    Opcode.LSRI: OpInfo("lsri", reads_rs1=True, reads_rs2=False, **_ALU),
    Opcode.MOVZ: OpInfo("movz", reads_rs1=False, reads_rs2=False, **_ALU),
    Opcode.MOV: OpInfo("mov", reads_rs1=True, reads_rs2=False, **_ALU),
    Opcode.MUL: OpInfo(
        "mul", FuClass.INT_MUL, 3, True, reads_rs1=True, reads_rs2=True
    ),
    Opcode.DIV: OpInfo(
        "div", FuClass.INT_DIV, 25, True,
        reads_rs1=True, reads_rs2=True, pipelined=False,
    ),
    Opcode.LDR: OpInfo(
        "ldr", FuClass.MEM_LOAD, 1, True,
        reads_rs1=True, reads_rs2=False, is_load=True,
    ),
    Opcode.LDRB: OpInfo(
        "ldrb", FuClass.MEM_LOAD, 1, True,
        reads_rs1=True, reads_rs2=False, is_load=True,
    ),
    Opcode.STR: OpInfo(
        "str", FuClass.MEM_STORE, 1, False,
        reads_rs1=True, reads_rs2=True, is_store=True,
    ),
    Opcode.B: OpInfo(
        "b", FuClass.BRANCH, 1, False,
        reads_rs1=False, reads_rs2=False, is_branch=True,
    ),
    Opcode.BEQ: OpInfo(
        "beq", FuClass.BRANCH, 1, False,
        reads_rs1=True, reads_rs2=True, is_branch=True, is_conditional=True,
    ),
    Opcode.BNE: OpInfo(
        "bne", FuClass.BRANCH, 1, False,
        reads_rs1=True, reads_rs2=True, is_branch=True, is_conditional=True,
    ),
    Opcode.BLT: OpInfo(
        "blt", FuClass.BRANCH, 1, False,
        reads_rs1=True, reads_rs2=True, is_branch=True, is_conditional=True,
    ),
    Opcode.BGE: OpInfo(
        "bge", FuClass.BRANCH, 1, False,
        reads_rs1=True, reads_rs2=True, is_branch=True, is_conditional=True,
    ),
    Opcode.BL: OpInfo(
        "bl", FuClass.BRANCH, 1, True,
        reads_rs1=False, reads_rs2=False, is_branch=True, is_call=True,
    ),
    Opcode.RET: OpInfo(
        "ret", FuClass.BRANCH, 1, False,
        reads_rs1=True, reads_rs2=False, is_branch=True, is_return=True,
    ),
    Opcode.FADD: OpInfo("fadd", reads_rs1=True, reads_rs2=True, **_FP3),
    Opcode.FSUB: OpInfo("fsub", reads_rs1=True, reads_rs2=True, **_FP3),
    Opcode.FMUL: OpInfo(
        "fmul", FuClass.FP_MUL, 3, True,
        reads_rs1=True, reads_rs2=True, is_fp=True,
    ),
    Opcode.FDIV: OpInfo(
        "fdiv", FuClass.FP_DIV, 11, True,
        reads_rs1=True, reads_rs2=True, is_fp=True, pipelined=False,
    ),
    Opcode.FMOV: OpInfo("fmov", reads_rs1=True, reads_rs2=False, **_FP3),
    Opcode.FMOVI: OpInfo("fmovi", reads_rs1=False, reads_rs2=False, **_FP3),
    Opcode.FLDR: OpInfo(
        "fldr", FuClass.MEM_LOAD, 1, True,
        reads_rs1=True, reads_rs2=False, is_load=True, is_fp=True,
    ),
    Opcode.FSTR: OpInfo(
        "fstr", FuClass.MEM_STORE, 1, False,
        reads_rs1=True, reads_rs2=True, is_store=True, is_fp=True,
    ),
    Opcode.NOP: OpInfo(
        "nop", FuClass.NONE, 0, False, reads_rs1=False, reads_rs2=False
    ),
    Opcode.HALT: OpInfo(
        "halt", FuClass.NONE, 0, False, reads_rs1=False, reads_rs2=False
    ),
}


def op_info(opcode: Opcode) -> OpInfo:
    """Return the static metadata of *opcode*."""
    return OP_INFO[opcode]
