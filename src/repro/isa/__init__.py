"""The Aarch64-flavoured micro-ISA: opcodes, registers, instructions."""

from repro.isa.instruction import DynInst, Instr, NO_ADDR, NO_REG
from repro.isa.opcodes import FuClass, OP_INFO, OpInfo, Opcode, op_info
from repro.isa.program import CODE_BASE, INSTR_BYTES, Program, ProgramError
from repro.isa.registers import (
    FP_BASE,
    LINK_REG,
    NUM_ARCH_REGS,
    NUM_FP_ARCH_REGS,
    NUM_INT_ARCH_REGS,
    RegClass,
    XZR,
    f,
    is_zero_reg,
    reg_class,
    reg_name,
    x,
)

__all__ = [
    "CODE_BASE",
    "DynInst",
    "FP_BASE",
    "FuClass",
    "INSTR_BYTES",
    "Instr",
    "LINK_REG",
    "NO_ADDR",
    "NO_REG",
    "NUM_ARCH_REGS",
    "NUM_FP_ARCH_REGS",
    "NUM_INT_ARCH_REGS",
    "OP_INFO",
    "OpInfo",
    "Opcode",
    "Program",
    "ProgramError",
    "RegClass",
    "XZR",
    "f",
    "is_zero_reg",
    "op_info",
    "reg_class",
    "reg_name",
    "x",
]
