"""Architectural register definitions.

The micro-ISA is Aarch64-flavoured: 31 general-purpose integer registers
``X0..X30`` plus the hardwired zero register ``XZR``, and 32 floating-point
registers ``F0..F31``.  A single unified numbering is used throughout the
simulator so that rename structures can be indexed with one integer:

* integer registers occupy ``0..31`` (with ``31 == XZR``),
* floating-point registers occupy ``32..63``.
"""

from __future__ import annotations

from enum import IntEnum

NUM_INT_ARCH_REGS = 32
NUM_FP_ARCH_REGS = 32
NUM_ARCH_REGS = NUM_INT_ARCH_REGS + NUM_FP_ARCH_REGS

#: Hardwired zero register (Aarch64 XZR): reads as 0, writes are discarded.
XZR = 31

#: Link register used by calls (Aarch64 X30).
LINK_REG = 30

#: Offset of the floating-point register space in the unified numbering.
FP_BASE = NUM_INT_ARCH_REGS


class RegClass(IntEnum):
    """Register class, determining which physical register file is used."""

    INT = 0
    FP = 1


def x(index: int) -> int:
    """Unified number of integer register ``X<index>``."""
    if not 0 <= index < NUM_INT_ARCH_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return index


def f(index: int) -> int:
    """Unified number of floating-point register ``F<index>``."""
    if not 0 <= index < NUM_FP_ARCH_REGS:
        raise ValueError(f"fp register index out of range: {index}")
    return FP_BASE + index


def reg_class(reg: int) -> RegClass:
    """Return the :class:`RegClass` of a unified register number."""
    return RegClass.FP if reg >= FP_BASE else RegClass.INT


def is_zero_reg(reg: int) -> bool:
    """True iff *reg* is the hardwired integer zero register."""
    return reg == XZR


def reg_name(reg: int) -> str:
    """Human-readable register name for disassembly."""
    if reg == XZR:
        return "xzr"
    if reg < FP_BASE:
        return f"x{reg}"
    return f"f{reg - FP_BASE}"
