"""Static and dynamic instruction representations.

:class:`Instr` is a *static* instruction as it appears in a program.
:class:`DynInst` is one *dynamic* execution of a static instruction as
recorded by the functional interpreter — it carries the actual result value,
effective address and branch outcome, which is what allows the timing model
to resolve every speculation against ground truth.
"""

from __future__ import annotations

from repro.common.bitops import LINE_SHIFT
from repro.isa.opcodes import FuClass, OP_INFO, Opcode
from repro.isa.registers import XZR, reg_name

#: Sentinel for "no register" / "no address" fields.
NO_REG = -1
NO_ADDR = -1


class Instr:
    """A static instruction: opcode plus register/immediate/target fields.

    Field conventions:

    * ``rd`` — destination register (unified numbering), or :data:`NO_REG`.
    * ``rs1`` — first source; for memory operations, the address base.
    * ``rs2`` — second source; for stores, the value to store.
    * ``imm`` — immediate operand / address offset.
    * ``target`` — branch target as a *static instruction index*.
    """

    __slots__ = ("opcode", "rd", "rs1", "rs2", "imm", "target")

    def __init__(
        self,
        opcode: Opcode,
        rd: int = NO_REG,
        rs1: int = NO_REG,
        rs2: int = NO_REG,
        imm: int = 0,
        target: int = -1,
    ) -> None:
        self.opcode = opcode
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.target = target

    @property
    def info(self):
        return OP_INFO[self.opcode]

    def is_zero_idiom(self) -> bool:
        """True iff the front-end can *non-speculatively* see a zero result.

        These are the idioms eliminated at rename in the baseline (§III.a):
        ``movz rd, #0``; ``eor/sub rd, rs, rs``; ``and`` with the zero
        register; and ``mov rd, xzr``.
        """
        op = self.opcode
        if op == Opcode.MOVZ and self.imm == 0:
            return True
        if op in (Opcode.EOR, Opcode.SUB) and self.rs1 == self.rs2:
            return True
        if op == Opcode.AND and (self.rs1 == XZR or self.rs2 == XZR):
            return True
        if op == Opcode.ANDI and self.imm == 0:
            return True
        if op == Opcode.MOV and self.rs1 == XZR:
            return True
        return False

    def is_move(self) -> bool:
        """True iff this is a 64-bit integer register-register move.

        Only these are move-eliminated (§IV.H.1 considers 64-bit moves; FP
        moves are left alone).
        """
        return self.opcode == Opcode.MOV and self.rs1 != XZR

    def disassemble(self) -> str:
        """Best-effort textual form for debugging."""
        info = self.info
        parts = [info.mnemonic]
        operands = []
        if info.writes_reg and self.rd != NO_REG:
            operands.append(reg_name(self.rd))
        if info.reads_rs1 and self.rs1 != NO_REG:
            operands.append(reg_name(self.rs1))
        if info.reads_rs2 and self.rs2 != NO_REG:
            operands.append(reg_name(self.rs2))
        if info.is_load or info.is_store or self.opcode in (
            Opcode.MOVZ, Opcode.FMOVI,
        ) or self.opcode.name.endswith("I"):
            operands.append(f"#{self.imm}")
        if info.is_branch and not info.is_return:
            operands.append(f"@{self.target}")
        return " ".join([parts[0], ", ".join(operands)]) if operands else parts[0]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Instr({self.disassemble()})"


class DynInst:
    """One dynamic instance of a static instruction.

    Produced by the functional interpreter; consumed by redundancy analysis
    and by the timing model.  All speculative mechanisms are validated
    against ``result`` (the architecturally correct value).
    """

    __slots__ = (
        "seq",          # dynamic sequence number in the trace (commit order)
        "pc",           # byte PC of the static instruction
        "opcode",       # Opcode
        "fu",           # FuClass the instruction executes on
        "latency",      # FU latency in cycles (loads: overridden by caches)
        "pipelined",    # False for DIV / FDIV (unit is busy for `latency`)
        "dest",         # unified architectural dest reg, NO_REG if none
        "src1",         # unified architectural source regs (NO_REG if unused)
        "src2",
        "result",       # 64-bit result value (0 when dest is NO_REG)
        "addr",         # effective address for loads/stores, else NO_ADDR
        "is_load",
        "is_store",
        "is_branch",
        "is_conditional",
        "is_call",
        "is_return",
        "taken",        # branch outcome
        "target_pc",    # taken-path target PC (branches only)
        "zero_idiom",   # front-end-visible zero idiom (never speculated on)
        "move",         # move-elimination candidate
        "line",         # cache-line index of pc (precomputed for fetch)
        "eligible",     # rsep_eligible(), precomputed at trace build
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        opcode: Opcode,
        dest: int = NO_REG,
        src1: int = NO_REG,
        src2: int = NO_REG,
        result: int = 0,
        addr: int = NO_ADDR,
        taken: bool = False,
        target_pc: int = -1,
        zero_idiom: bool = False,
        move: bool = False,
    ) -> None:
        info = OP_INFO[opcode]
        self.seq = seq
        self.pc = pc
        self.opcode = opcode
        self.fu = info.fu_class
        self.latency = info.latency
        self.pipelined = info.pipelined
        self.dest = dest
        self.src1 = src1
        self.src2 = src2
        self.result = result
        self.addr = addr
        self.is_load = info.is_load
        self.is_store = info.is_store
        self.is_branch = info.is_branch
        self.is_conditional = info.is_conditional
        self.is_call = info.is_call
        self.is_return = info.is_return
        self.taken = taken
        self.target_pc = target_pc
        self.zero_idiom = zero_idiom
        self.move = move
        self.line = pc >> LINE_SHIFT
        self.eligible = (
            dest != NO_REG
            and dest != XZR
            and not info.is_branch
            and not zero_idiom
        )

    def produces_result(self) -> bool:
        """True iff the instruction writes an architectural register.

        Writes to the hardwired zero register are architectural no-ops and
        therefore do not count as producing a result.
        """
        return self.dest != NO_REG and self.dest != XZR

    def rsep_eligible(self) -> bool:
        """True iff equality/value prediction may apply (§VI.B).

        Stores and branches are not eligible; neither are instructions the
        front-end already eliminates non-speculatively (zero idioms, moves —
        the latter are handled by move elimination when RSEP is on).
        """
        return self.eligible

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DynInst(seq={self.seq}, pc={self.pc:#x}, "
            f"{OP_INFO[self.opcode].mnemonic}, result={self.result:#x})"
        )
