"""Programs: validated sequences of static instructions.

A :class:`Program` is what the functional interpreter executes.  Programs
are typically written through :class:`repro.workloads.builder.ProgramBuilder`
which provides labels and loop helpers; this module owns the assembled
artefact, its PC mapping and validation.
"""

from __future__ import annotations

from repro.isa.instruction import Instr, NO_REG
from repro.isa.opcodes import Opcode
from repro.isa.registers import NUM_ARCH_REGS

#: Base address of the code segment; arbitrary but non-zero so PC hashes are
#: non-trivial.
CODE_BASE = 0x1000

#: Byte size of one instruction for PC arithmetic.
INSTR_BYTES = 4


class ProgramError(ValueError):
    """Raised when a program fails validation."""


class Program:
    """An immutable, validated instruction sequence."""

    def __init__(self, name: str, instructions: list[Instr]) -> None:
        self.name = name
        self.instructions = list(instructions)
        self._validate()

    def __len__(self) -> int:
        return len(self.instructions)

    def pc_of(self, index: int) -> int:
        """Byte PC of the instruction at *index*."""
        return CODE_BASE + index * INSTR_BYTES

    def index_of(self, pc: int) -> int:
        """Static index of the instruction at byte PC *pc*."""
        index, remainder = divmod(pc - CODE_BASE, INSTR_BYTES)
        if remainder or not 0 <= index < len(self.instructions):
            raise ProgramError(f"PC {pc:#x} is not a valid instruction address")
        return index

    def _validate(self) -> None:
        if not self.instructions:
            raise ProgramError("program is empty")
        if self.instructions[-1].opcode != Opcode.HALT:
            raise ProgramError("program must end with HALT")
        for index, instr in enumerate(self.instructions):
            info = instr.info
            for role, reg, used in (
                ("rd", instr.rd, info.writes_reg),
                ("rs1", instr.rs1, info.reads_rs1),
                ("rs2", instr.rs2, info.reads_rs2),
            ):
                if used and not 0 <= reg < NUM_ARCH_REGS:
                    raise ProgramError(
                        f"instruction {index} ({instr.disassemble()}): "
                        f"{role} register {reg} out of range"
                    )
            if info.is_branch and not info.is_return:
                if not 0 <= instr.target < len(self.instructions):
                    raise ProgramError(
                        f"instruction {index}: branch target {instr.target} "
                        f"out of range"
                    )

    def disassemble(self) -> str:
        """Full textual listing for debugging."""
        lines = []
        for index, instr in enumerate(self.instructions):
            lines.append(f"{self.pc_of(index):#07x}: {instr.disassemble()}")
        return "\n".join(lines)

    def static_result_producers(self) -> int:
        """Number of static instructions that write a register."""
        return sum(
            1 for i in self.instructions
            if i.info.writes_reg and i.rd != NO_REG
        )
