"""Smoke tests for the console entry points.

PR 5 made ``repro`` (repro.api.cli) the single front door; the PR 3
``repro-sweep`` / ``repro-perf`` scripts survive as deprecated aliases.
These tests invoke the ``main([...])`` functions exactly as the
installed scripts do — with ``--smoke``-class arguments kept small
enough for CI — and pin the ``setup.py`` declarations to real import
targets so a rename can never ship a broken script.  (The ``repro``
subcommands themselves are covered in ``tests/test_api.py``.)
"""

from __future__ import annotations

import importlib
import json
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestConsoleScriptDeclarations:
    def _declared_entry_points(self) -> dict[str, tuple[str, str]]:
        text = (REPO_ROOT / "setup.py").read_text(encoding="utf-8")
        entries = re.findall(r'"([\w-]+)\s*=\s*([\w.]+):(\w+)"', text)
        assert entries, "no console_scripts found in setup.py"
        return {name: (module, func) for name, module, func in entries}

    def test_declared_targets_resolve(self):
        declared = self._declared_entry_points()
        assert set(declared) == {"repro", "repro-sweep", "repro-perf"}
        for name, (module_name, func_name) in declared.items():
            module = importlib.import_module(module_name)
            target = getattr(module, func_name)
            assert callable(target), name

    def test_deprecated_aliases_note_and_delegate(self, capsys):
        from repro.api.cli import perf_alias_main, sweep_alias_main

        assert sweep_alias_main([]) == 2  # harness.sweep help path
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        assert "--smoke" in captured.out

        with pytest.raises(SystemExit):
            perf_alias_main(["--mechanism", "nope"])
        assert "deprecated" in capsys.readouterr().err


class TestPerfCli:
    def test_tiny_cell_writes_json(self, capsys, tmp_path):
        from repro.harness.perf import main

        out = tmp_path / "perf.json"
        code = main([
            "--benchmark", "mcf", "--mechanism", "baseline",
            "--warmup", "256", "--measure", "1024",
            "--repeats", "1", "--json", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["warmup"] == 256 and report["measure"] == 1024
        assert "baseline" in report["aggregate_kips"]
        assert report["aggregate_kips"]["baseline"] > 0
        samples = report["samples"]
        assert [s["benchmark"] for s in samples] == ["mcf"]
        rendered = capsys.readouterr().out
        assert "mcf" in rendered and "baseline" in rendered

    def test_sampled_flag_times_sampled_runs(self, capsys):
        from repro.harness.perf import main

        code = main([
            "--benchmark", "mcf", "--mechanism", "rsep-realistic",
            "--warmup", "512", "--measure", "2000", "--repeats", "1",
            "--sampled", "--interval", "1000", "--detail-ratio", "0.25",
            "--json", "-",
        ])
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["aggregate_kips"]["rsep-realistic"] > 0

    def test_unknown_mechanism_is_rejected(self):
        from repro.harness.perf import main

        with pytest.raises(SystemExit):
            main(["--mechanism", "definitely-not-a-preset"])


class TestSweepCli:
    def test_no_arguments_prints_help(self, capsys):
        from repro.harness.sweep import main

        assert main([]) == 2
        assert "--smoke" in capsys.readouterr().out

    def test_smoke_gate_passes(self, capsys):
        # The actual CI gate: cold == memoised == warm-store over a
        # private temporary store.  (The sampled extension has its own
        # CI invocation; it is too slow for the tier-1 suite.)
        from repro.harness.sweep import main

        assert main(["--smoke"]) == 0
        out = capsys.readouterr().out
        assert "sweep smoke: cold == memoised == warm-store" in out
