"""The telemetry plane (DESIGN.md §13): tracing, metrics, profiler.

The contract under test is double-sided: with ``REPRO_OBS`` unset the
plane must be *invisible* (bit-identical stats, no telemetry section, no
files); with it set, the event stream and metric series must be
complete, crash-recoverable, schema-versioned and digest-neutral.
"""

from __future__ import annotations

import dataclasses
import glob
import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from helpers import stats_dict
from repro.api import env as api_env
from repro.api.cli import main as cli_main
from repro.api.result import KNOWN_SECTIONS, CellResult, RunResult
from repro.api.session import Session
from repro.api.spec import (
    ExperimentSpec,
    StoreSpec,
    WindowSpec,
    default_mechanisms,
)
from repro.obs import (
    NULL_TRACER,
    RECORD_FORMAT,
    MetricsHub,
    ObsSpec,
    Tracer,
    activated,
    current,
    decode_record,
    encode_record,
    format_record,
    obs_tracer,
    read_events,
)
from repro.pipeline.config import MechanismConfig
from repro.pipeline.stats import Stats
from repro.service.faults import FaultPlan
from repro.service.supervisor import (
    ShardReport,
    ShardedSweepResult,
    ShardSupervisor,
)


def tiny_spec(**overrides) -> ExperimentSpec:
    settings_ = dict(
        benchmarks=("mcf",),
        mechanisms=default_mechanisms(),
        seeds=(1,),
        window=WindowSpec(warmup=128, measure=512),
        store=StoreSpec(enabled=False),
    )
    settings_.update(overrides)
    return ExperimentSpec(**settings_)


def obs_env(monkeypatch, tmp_path, every: int = 100) -> str:
    directory = str(tmp_path / "obs")
    monkeypatch.setenv("REPRO_OBS", "1")
    monkeypatch.setenv("REPRO_OBS_DIR", directory)
    monkeypatch.setenv("REPRO_METRICS_EVERY", str(every))
    return directory


def all_event_names(directory: str) -> set[str]:
    names: set[str] = set()
    for path in glob.glob(os.path.join(directory, "events-*.jsonl")):
        records, _ = read_events(path)
        names |= {record["name"] for record in records}
    return names


# ---------------------------------------------------------------------------
# Record codec
# ---------------------------------------------------------------------------

scalar = st.one_of(
    st.text(max_size=12),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.none(),
)


class TestRecordCodec:
    @settings(max_examples=60, deadline=None)
    @given(
        kind=st.sampled_from(["begin", "end", "event"]),
        name=st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1, max_size=24,
        ),
        t=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        pid=st.integers(min_value=1, max_value=1 << 22),
        tags=st.dictionaries(st.text(min_size=1, max_size=8), scalar,
                             max_size=4),
    )
    def test_round_trip(self, kind, name, t, pid, tags):
        record = {"v": RECORD_FORMAT, "t": t, "pid": pid, "kind": kind,
                  "name": name, "id": 7, "parent": None, "tags": tags}
        assert decode_record(encode_record(record)) == json.loads(
            encode_record(record)
        )
        # One flat line, always.
        assert "\n" not in encode_record(record)
        format_record(record)  # must never raise

    def test_rejects_future_format(self):
        line = encode_record({"v": RECORD_FORMAT + 1, "t": 0.0, "pid": 1,
                              "kind": "event", "name": "x"})
        with pytest.raises(ValueError, match="newer"):
            decode_record(line)

    def test_rejects_garbage(self):
        for line in ('{"v": 1', "[]", '{"v": 1, "kind": "noise", '
                     '"name": "x", "t": 0, "pid": 1}'):
            with pytest.raises(ValueError):
                decode_record(line)

    def test_rejects_nested_tags(self):
        line = encode_record({"v": 1, "t": 0.0, "pid": 1, "kind": "event",
                              "name": "x", "tags": {"deep": {"no": 1}}})
        with pytest.raises(ValueError, match="flat"):
            decode_record(line)

    def test_torn_tail_is_dropped_not_raised(self, tmp_path):
        """Crash truncation: every complete record recovered, the torn
        final line counted."""
        path = tmp_path / "events-1.jsonl"
        good = encode_record({"v": 1, "t": 1.0, "pid": 1, "kind": "event",
                              "name": "a"})
        future = encode_record({"v": RECORD_FORMAT + 1, "t": 2.0, "pid": 1,
                                "kind": "event", "name": "b"})
        path.write_text(good + "\n" + future + "\n" + good[: len(good) // 2],
                        encoding="utf-8")
        records, dropped = read_events(path)
        assert [r["name"] for r in records] == ["a"]
        assert dropped == 2  # the future-format record and the torn tail


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_span_nesting_assigns_parents(self, tmp_path):
        path = tmp_path / "events-{pid}.jsonl"
        clock_value = [0.0]

        def clock():
            clock_value[0] += 1.0
            return clock_value[0]

        tracer = Tracer(str(path), clock=clock)
        with tracer.span("outer", layer=1):
            with tracer.span("inner"):
                tracer.event("point", note="here")
        tracer.close()
        records, dropped = read_events(tmp_path / f"events-{os.getpid()}.jsonl")
        assert dropped == 0
        by_name = {(r["name"], r["kind"]): r for r in records}
        outer = by_name[("outer", "begin")]
        inner = by_name[("inner", "begin")]
        assert outer["parent"] is None
        assert inner["parent"] == outer["id"]
        assert by_name[("point", "event")]["parent"] == inner["id"]
        assert by_name[("outer", "begin")]["tags"] == {"layer": 1}
        # begin/end pairs share ids; the monotonic stub orders them.
        assert by_name[("outer", "end")]["id"] == outer["id"]
        assert by_name[("outer", "end")]["t"] > outer["t"]

    def test_span_tags_error_class_on_exception(self, tmp_path):
        tracer = Tracer(str(tmp_path / "events-{pid}.jsonl"))
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        tracer.close()
        records, _ = read_events(tmp_path / f"events-{os.getpid()}.jsonl")
        end = [r for r in records if r["kind"] == "end"][0]
        assert end["tags"]["error"] == "RuntimeError"

    def test_explicit_begin_end_for_interleaved_work(self, tmp_path):
        """The supervisor's slot coroutines interleave: explicit ids must
        not depend on a nesting stack."""
        tracer = Tracer(str(tmp_path / "events-{pid}.jsonl"))
        a = tracer.begin("task", shard=0)
        b = tracer.begin("task", shard=1)
        tracer.end(a, "task", shard=0, status="ok")
        tracer.end(b, "task", shard=1, status="failed")
        tracer.close()
        records, _ = read_events(tmp_path / f"events-{os.getpid()}.jsonl")
        ends = {r["tags"]["shard"]: r for r in records if r["kind"] == "end"}
        begins = {r["tags"]["shard"]: r for r in records
                  if r["kind"] == "begin"}
        assert ends[0]["id"] == begins[0]["id"] != begins[1]["id"]
        assert ends[1]["id"] == begins[1]["id"]

    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.active
        with NULL_TRACER.span("anything", tag=1):
            NULL_TRACER.event("nothing")
        NULL_TRACER.end(NULL_TRACER.begin("x"), "x")
        NULL_TRACER.close()

    def test_no_obs_no_runtime_no_files(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert current() is None
        assert obs_tracer() is NULL_TRACER


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetricsHub:
    def test_cadence_and_growth(self, monkeypatch, tmp_path):
        obs_env(monkeypatch, tmp_path, every=50)
        spec = tiny_spec(window=WindowSpec(warmup=0, measure=3000))
        result = Session.for_spec(spec).run(spec)
        assert result.telemetry is not None
        cells = result.telemetry["cells"]
        assert len(cells) == len(spec.mechanisms)
        for cell in cells:
            series = cell["series"]
            total = series["total_committed"]
            assert cell["samples"] == len(total) > 256 / 50  # grew if needed
            # x-axis strictly increasing; boundary overshoot bounded by
            # the commit width (8-wide core).
            assert all(b > a for a, b in zip(total, total[1:]))
            for value, boundary in zip(total, range(50, 10**9, 50)):
                assert boundary <= value < boundary + 8
            # cumulative counters never decrease
            for name in ("cycles", "committed", "branches"):
                column = series[name]
                assert all(b >= a for a, b in zip(column, column[1:]))

    def test_rejects_nonpositive_cadence(self):
        with pytest.raises(ValueError):
            MetricsHub(0)

    def test_metrics_off_when_cadence_zero(self, monkeypatch, tmp_path):
        obs_env(monkeypatch, tmp_path, every=0)
        spec = tiny_spec()
        result = Session.for_spec(spec).run(spec)
        # Tracing active, metric series empty: cells list has no entries.
        assert result.telemetry is not None
        assert result.telemetry["cells"] == []


# ---------------------------------------------------------------------------
# The golden contract: observed == unobserved, bit for bit
# ---------------------------------------------------------------------------


class TestBitIdentity:
    @pytest.mark.parametrize("genrename,vecwarm",
                             [(1, 1), (1, 0), (0, 1), (0, 0)])
    def test_obs_is_invisible_on_every_compute_plane(
        self, monkeypatch, tmp_path, genrename, vecwarm
    ):
        monkeypatch.setenv("REPRO_GENRENAME", str(genrename))
        monkeypatch.setenv("REPRO_VECWARM", str(vecwarm))
        spec = tiny_spec(benchmarks=("mcf", "dealII"))

        monkeypatch.delenv("REPRO_OBS", raising=False)
        baseline = Session.for_spec(spec).run(spec)
        assert baseline.telemetry is None

        obs_env(monkeypatch, tmp_path, every=64)
        observed = Session.for_spec(spec).run(spec)
        assert observed.telemetry is not None
        assert observed.digest() == baseline.digest()
        for cell_a, cell_b in zip(baseline.cells, observed.cells):
            assert stats_dict(cell_a.stats) == stats_dict(cell_b.stats)

    def test_obs_spec_never_joins_the_fingerprint(self):
        spec = tiny_spec()
        loud = tiny_spec(obs=ObsSpec(enabled=True, dir="/tmp/x",
                                     metrics_every=7))
        assert spec.fingerprint() == loud.fingerprint()

    def test_stats_layout_unchanged(self):
        """The digest covers sorted asdict(Stats): the plane must not
        have grown the dataclass."""
        assert "telemetry" not in {f.name for f in
                                   dataclasses.fields(Stats)}


# ---------------------------------------------------------------------------
# Activation precedence
# ---------------------------------------------------------------------------


class TestActivation:
    def test_explicit_spec_beats_environment(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        spec_dir = tmp_path / "explicit"
        with activated(ObsSpec(enabled=True, dir=str(spec_dir),
                               metrics_every=10)) as runtime:
            assert current() is runtime
            assert str(runtime.dir) == str(spec_dir)
        assert current() is None

    def test_disabled_spec_does_not_suppress_env(self, monkeypatch,
                                                 tmp_path):
        directory = obs_env(monkeypatch, tmp_path)
        with activated(ObsSpec(enabled=False)) as runtime:
            assert runtime is not None
            assert str(runtime.dir) == directory

    def test_session_run_with_spec_obs(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        directory = tmp_path / "spec-obs"
        spec = tiny_spec(obs=ObsSpec(enabled=True, dir=str(directory),
                                     metrics_every=100))
        result = Session.for_spec(spec).run(spec)
        assert result.telemetry is not None
        assert result.telemetry["format"] == 1
        assert result.telemetry["cells"]
        assert "sweep.cell" in all_event_names(str(directory))
        # The installed runtime is scoped to the run.
        assert current() is None

    def test_env_runtime_swaps_on_value_change(self, monkeypatch, tmp_path):
        obs_env(monkeypatch, tmp_path, every=10)
        first = current()
        monkeypatch.setenv("REPRO_METRICS_EVERY", "20")
        second = current()
        assert first is not second
        assert second.metrics_every == 20


# ---------------------------------------------------------------------------
# Artifact: telemetry section + forward compatibility
# ---------------------------------------------------------------------------


class TestArtifact:
    def _result(self, telemetry=None, extra=None) -> RunResult:
        spec = tiny_spec()
        stats = Stats()
        stats.committed, stats.cycles = 512, 700
        return RunResult(
            spec=spec,
            cells=[CellResult("mcf", "baseline", 1, stats)],
            telemetry=telemetry,
            extra_sections=extra or {},
        )

    def test_telemetry_round_trips_and_digest_is_neutral(self, tmp_path):
        bare = self._result()
        loud = self._result(telemetry={"format": 1, "metrics_every": 10,
                                       "events_dir": "x", "cells": []})
        assert bare.digest() == loud.digest()
        path = tmp_path / "artifact.json"
        loud.save(path)
        loaded = RunResult.load(path)
        assert loaded.telemetry == loud.telemetry
        assert loaded.digest() == bare.digest()
        # An untelemetered artifact has no telemetry key at all.
        bare.save(path)
        assert "telemetry" not in json.loads(path.read_text())

    def test_unknown_sections_survive_a_round_trip(self, tmp_path):
        result = self._result()
        path = tmp_path / "artifact.json"
        result.save(path)
        payload = json.loads(path.read_text())
        payload["provenance_v9"] = {"future": True}
        path.write_text(json.dumps(payload))
        loaded = RunResult.load(path)
        assert loaded.extra_sections == {"provenance_v9": {"future": True}}
        assert loaded.digest() == result.digest()
        again = tmp_path / "again.json"
        loaded.save(again)
        assert json.loads(again.read_text())["provenance_v9"] == {
            "future": True
        }
        assert "provenance_v9" not in KNOWN_SECTIONS

    def test_inspect_renders_extra_sections(self, tmp_path, capsys):
        result = self._result(extra={"provenance_v9": {"future": True}})
        path = tmp_path / "artifact.json"
        result.save(path)
        assert cli_main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "provenance_v9" in out
        assert "not understood by this build" in out

    def test_inspect_metrics_renders_series(self, monkeypatch, tmp_path,
                                            capsys):
        obs_env(monkeypatch, tmp_path, every=100)
        spec = tiny_spec()
        result = Session.for_spec(spec).run(spec)
        path = tmp_path / "artifact.json"
        result.save(path)
        assert cli_main(["inspect", str(path), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "telemetry" in out
        assert "total_committed" in out


# ---------------------------------------------------------------------------
# Fault matrix under observation
# ---------------------------------------------------------------------------


class TestFaultedShardedSweep:
    def test_lifecycle_events_match_injected_faults(self, monkeypatch,
                                                    tmp_path):
        directory = obs_env(monkeypatch, tmp_path, every=100)
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        spec = tiny_spec(benchmarks=("mcf", "dealII"))
        supervisor = ShardSupervisor(
            backoff_base=0.01, backoff_cap=0.05, deadline=60.0,
            poll_interval=0.005, faults=FaultPlan.parse("crash:0,corrupt:1"),
        )
        outcome = supervisor.run(spec, shards=2)
        assert outcome.complete
        # Reports mirror the injected plan, kind for kind.
        assert outcome.shard_reports[0].failure_kinds == ("death",)
        assert outcome.shard_reports[1].failure_kinds == ("corrupt",)
        for report in outcome.shard_reports.values():
            assert report.attempts == 2
            assert report.backoff_seconds > 0
            assert not report.quarantined
        # The event stream tells the same story.
        names = all_event_names(directory)
        for needed in ("shard.plan", "shard.dispatch", "shard.attempt",
                       "shard.retry", "shard.merge", "worker.shard"):
            assert needed in names, needed
        failed = []
        for path in glob.glob(os.path.join(directory, "events-*.jsonl")):
            records, _ = read_events(path)
            failed += [r for r in records if r["name"] == "shard.attempt"
                       and r["kind"] == "end"
                       and r["tags"].get("status") == "failed"]
        assert sorted(r["tags"]["kind"] for r in failed) == [
            "corrupt", "death",
        ]
        # Telemetry (with the shard extra) survives save/load + digest.
        telemetry = outcome.result.telemetry
        assert telemetry is not None and "shards" in telemetry
        assert telemetry["shards"]["0"]["failure_kinds"] == ["death"]
        path = tmp_path / "merged.json"
        outcome.result.save(path)
        loaded = RunResult.load(path)
        assert loaded.telemetry == telemetry
        assert loaded.digest() == outcome.result.digest()

    def test_quarantine_event_and_report(self, monkeypatch, tmp_path):
        directory = obs_env(monkeypatch, tmp_path)
        spec = tiny_spec(benchmarks=("mcf", "dealII"))
        supervisor = ShardSupervisor(
            backoff_base=0.01, backoff_cap=0.02, deadline=60.0,
            poll_interval=0.005, max_attempts=2,
            faults=FaultPlan.parse("crash:0:*"),
        )
        outcome = supervisor.run(spec, shards=2)
        assert not outcome.complete
        assert outcome.shard_reports[0].quarantined
        assert outcome.shard_reports[0].failure_kinds == ("death", "death")
        assert "shard.quarantine" in all_event_names(directory)

    def test_shard_report_round_trip(self):
        report = ShardReport(attempts=3, failure_kinds=("death", "hang"),
                             backoff_seconds=0.15, quarantined=True)
        assert ShardReport.from_dict(report.to_dict()) == report

    def test_sharded_result_round_trip_keeps_reports(self):
        stats = Stats()
        stats.committed, stats.cycles = 512, 700
        inner = RunResult(spec=tiny_spec(),
                          cells=[CellResult("mcf", "baseline", 1, stats)])
        outcome = ShardedSweepResult(
            result=inner, attempts={0: 2},
            shard_reports={0: ShardReport(attempts=2,
                                          failure_kinds=("corrupt",),
                                          backoff_seconds=0.01)},
        )
        loaded = ShardedSweepResult.from_dict(outcome.to_dict())
        assert loaded.shard_reports[0].failure_kinds == ("corrupt",)
        # Pre-telemetry payloads load with empty reports.
        legacy = outcome.to_dict()
        del legacy["shard_reports"]
        assert ShardedSweepResult.from_dict(legacy).shard_reports == {}


# ---------------------------------------------------------------------------
# Profiler + overhead gate
# ---------------------------------------------------------------------------


class TestProfiler:
    def test_phase_profile_attributes_stages(self):
        from repro.obs.profile import phase_profile, render_profile

        payload = phase_profile(benchmarks=("mcf",), warmup=200,
                                measure=1000, combos="current")
        assert payload["format"] == 1
        (combo,) = payload["combos"].values()
        stages = combo["stages_seconds"]
        for stage in ("commit", "issue", "rename", "fetch", "idle",
                      "interp", "warm"):
            assert stage in stages
        assert combo["instructions"] > 0
        # The hot stages really accumulate wall.
        assert stages["commit"] > 0 and stages["issue"] > 0
        text = render_profile(payload)
        assert "commit" in text and "KIPS instrumented" in text

    def test_overhead_gate_stats_identical(self, tmp_path):
        from repro.obs.profile import overhead_gate, render_gate

        ok, report = overhead_gate(
            warmup=300, measure=3000, repeats=2, metrics_every=200,
            tolerance=0.9,  # generous: the test pins identity, CI pins 5%
            obs_dir=str(tmp_path / "gate"),
        )
        assert report["stats_identical"], report
        assert ok, report
        assert "bit-identical: True" in render_gate(report)

    def test_profile_cli(self, tmp_path, capsys):
        out_path = tmp_path / "profile.json"
        assert cli_main(["profile", "--benchmark", "mcf", "--warmup", "200",
                         "--measure", "1000", "--combos", "current",
                         "--json", str(out_path)]) == 0
        assert "phase profile" in capsys.readouterr().out
        assert json.loads(out_path.read_text())["format"] == 1


# ---------------------------------------------------------------------------
# CLI: tail and events
# ---------------------------------------------------------------------------


class TestEventCli:
    def _write_events(self, directory) -> None:
        tracer = Tracer(str(directory / "events-{pid}.jsonl"))
        with tracer.span("sweep.cell", benchmark="mcf"):
            tracer.event("sample.point", index=0)
        tracer.close()

    def test_tail_renders_complete_lines_only(self, tmp_path, capsys):
        self._write_events(tmp_path)
        # A torn (in-flight) line must not be consumed.
        path = tmp_path / f"events-{os.getpid()}.jsonl"
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "t": 9')
        assert cli_main(["tail", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "sweep.cell" in out and "sample.point" in out
        assert '"t": 9' not in out

    def test_tail_empty_dir(self, tmp_path, capsys):
        assert cli_main(["tail", "--dir", str(tmp_path)]) == 0
        assert "no events" in capsys.readouterr().out

    def test_inspect_events(self, tmp_path, capsys):
        self._write_events(tmp_path)
        path = tmp_path / f"events-{os.getpid()}.jsonl"
        assert cli_main(["inspect", "--events", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 record(s)" in out or "3 record(s)" in out
        assert "sweep.cell" in out


# ---------------------------------------------------------------------------
# Environment front door
# ---------------------------------------------------------------------------


class TestEnvFrontDoor:
    def test_new_variables_are_known(self, monkeypatch):
        for name in ("REPRO_OBS", "REPRO_OBS_DIR", "REPRO_METRICS_EVERY"):
            assert name in api_env.KNOWN_VARS
            monkeypatch.setenv(name, "1")
        assert api_env.warn_unknown_vars() == []

    def test_typed_readers(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        monkeypatch.delenv("REPRO_OBS_DIR", raising=False)
        monkeypatch.delenv("REPRO_METRICS_EVERY", raising=False)
        assert api_env.obs_enabled() is False
        assert api_env.obs_dir_from_env() is None
        assert api_env.metrics_every_from_env() == 1000
        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setenv("REPRO_OBS_DIR", "/tmp/somewhere")
        monkeypatch.setenv("REPRO_METRICS_EVERY", "250")
        assert api_env.obs_enabled() is True
        assert api_env.obs_dir_from_env() == "/tmp/somewhere"
        assert api_env.metrics_every_from_env() == 250
        spec = ObsSpec.from_env()
        assert spec.enabled and spec.dir == "/tmp/somewhere"
        assert spec.metrics_every == 250
