"""Tests for the RSEP core: hashing/HRF, FIFO history, DDT, producer
window, validation queue and the RSEP unit."""

import pytest

from repro.backend.fu import IssuePorts, PortConfig
from repro.common.history import GlobalHistory, PathHistory
from repro.common.rng import XorShift64
from repro.core.ddt import DistanceDependencyTable
from repro.core.fifo_history import FifoHistory
from repro.core.hashing import HashRegisterFile, hash_collision_rate
from repro.core.rsep import RsepConfig, RsepUnit
from repro.core.sharing import ProducerWindow
from repro.core.validation import ValidationMode, ValidationQueue
from repro.isa.instruction import DynInst
from repro.isa.opcodes import FuClass, Opcode
from repro.isa.registers import x


class TestHashRegisterFile:
    def test_hash_width(self):
        hrf = HashRegisterFile(hash_bits=14)
        assert 0 <= hrf.hash_value(0xDEAD_BEEF_1234_5678) < (1 << 14)

    def test_storage_scales_with_registers(self):
        small = HashRegisterFile(registers=100, hash_bits=14)
        big = HashRegisterFile(registers=471, hash_bits=14)
        assert big.storage_report().total_bits > small.storage_report().total_bits
        assert big.storage_report().total_bits == 471 * 14

    def test_collision_rate_improves_with_width(self):
        rng = XorShift64(9)
        values = [rng.next_u64() for _ in range(120)]
        assert hash_collision_rate(values, 14) <= hash_collision_rate(values, 6)

    def test_collision_rate_empty(self):
        assert hash_collision_rate([], 14) == 0.0


class TestFifoHistory:
    def test_distance_to_most_recent_match(self):
        history = FifoHistory(entries=16)
        history.push(0xAA)
        history.push(0xBB)
        history.push(0xAA)
        # Searching for 0xAA before pushing: most recent is 1 back.
        assert history.find(0xAA, max_distance=255) == 1
        assert history.find(0xBB, max_distance=255) == 2
        assert history.find(0xCC, max_distance=255) is None

    def test_preferred_distance_selected(self):
        history = FifoHistory(entries=32)
        history.push(0x11)            # distance 3 from the search point
        history.push(0x22)
        history.push(0x11)            # distance 1
        found = history.find(0x11, max_distance=255, preferred_distance=3)
        assert found == 3             # §VI.A.2: predicted distance wins
        assert history.preferred_matches == 1

    def test_window_limit(self):
        history = FifoHistory(entries=4)
        history.push(0x77)
        for _ in range(5):
            history.push(0x00)
        assert history.find(0x77, max_distance=255) is None

    def test_max_distance_limit(self):
        history = FifoHistory(entries=64)
        history.push(0x55)
        for _ in range(10):
            history.push(0x01)
        assert history.find(0x55, max_distance=5) is None

    def test_comparator_sufficiency(self):
        history = FifoHistory()
        for size in (2, 2, 4, 8):
            history.record_commit_group(size)
        assert history.comparator_sufficiency(4) == 0.75
        assert history.comparator_sufficiency(8) == 1.0

    def test_storage_paper_numbers(self):
        assert FifoHistory(256, 14, 10).storage_report().total_bytes == 768
        assert FifoHistory(128, 14, 10).storage_report().total_bytes == 384


class TestDdt:
    def test_only_most_recent_producer(self):
        ddt = DistanceDependencyTable(log2_entries=14)
        ddt.push(0x33)
        ddt.push(0x44)
        ddt.push(0x33)
        # Unlike the FIFO, the DDT forgot the older 0x33.
        assert ddt.find(0x33, max_distance=255) == 1
        assert ddt.find(0x33, max_distance=255, preferred_distance=3) == 1

    def test_collision_aliasing(self):
        # Hash-indexed without tags: distinct hashes that alias the same
        # entry displace each other (the DDT's noise, §VI.A.2).
        ddt = DistanceDependencyTable(log2_entries=2)
        ddt.push(0b0001)
        ddt.push(0b0101)  # aliases entry 1 in a 4-entry table
        assert ddt.find(0b0001, max_distance=255) == 1  # per-chance match

    def test_empty(self):
        ddt = DistanceDependencyTable()
        assert ddt.find(0x1, max_distance=255) is None


class TestProducerWindow:
    def test_distance_indexing(self):
        window = ProducerWindow(capacity=8)
        ops = [object() for _ in range(4)]
        for op in ops:
            window.push(op)
        assert window.producer_at(1) is ops[-1]
        assert window.producer_at(4) is ops[0]

    def test_out_of_window(self):
        window = ProducerWindow(capacity=8)
        window.push(object())
        assert window.producer_at(2) is None
        assert window.out_of_window == 1

    def test_commit_and_squash_order_enforced(self):
        window = ProducerWindow(capacity=8)
        a, b = object(), object()
        window.push(a), window.push(b)
        with pytest.raises(ValueError):
            window.retire_head(b)
        with pytest.raises(ValueError):
            window.squash_tail(a)
        window.squash_tail(b)
        window.retire_head(a)
        assert len(window) == 0


class _FakeOp:
    def __init__(self, seq, fu=FuClass.INT_ALU, complete=5):
        self.d = DynInst(seq, 0x1000 + seq * 4, Opcode.ADD, dest=x(1),
                        src1=x(2), src2=x(3))
        self.complete_cycle = complete
        self.validation_done_cycle = None


class TestValidationQueue:
    def test_ideal_is_free(self):
        queue = ValidationQueue(ValidationMode.IDEAL)
        op = _FakeOp(1, complete=7)
        queue.request(op)
        assert op.validation_done_cycle == 7
        assert len(queue) == 0

    def test_reissue_waits_for_completion(self):
        queue = ValidationQueue(ValidationMode.REISSUE_ANY_FU)
        ports = IssuePorts(PortConfig())
        op = _FakeOp(1, complete=10)
        queue.request(op)
        ports.new_cycle(5)
        assert queue.issue_cycle(5, ports) == []
        ports.new_cycle(10)
        assert queue.issue_cycle(10, ports) == [op]
        assert op.validation_done_cycle == 11

    def test_port_exhaustion_delays(self):
        queue = ValidationQueue(ValidationMode.REISSUE_ANY_FU)
        ports = IssuePorts(PortConfig(issue_width=1))
        first, second = _FakeOp(1, complete=0), _FakeOp(2, complete=0)
        queue.request(first), queue.request(second)
        ports.new_cycle(1)
        issued = queue.issue_cycle(1, ports)
        assert issued == [first]      # width 1: only the oldest fits
        ports.new_cycle(2)
        assert queue.issue_cycle(2, ports) == [second]
        assert queue.delayed_cycles > 0

    def test_squash_drops_pending(self):
        queue = ValidationQueue(ValidationMode.REISSUE_LOCK_FU)
        queue.request(_FakeOp(5, complete=3))
        queue.squash(min_seq=4)
        assert len(queue) == 0


class TestRsepUnit:
    def make(self, **overrides):
        config_kwargs = dict(history_entries=128)
        config_kwargs.update(overrides)
        config = RsepConfig(**config_kwargs)
        history, path = GlobalHistory(), PathHistory()
        return RsepUnit(config, history, path, XorShift64(3))

    def test_lookup_counts(self):
        unit = self.make()
        unit.lookup(0x1000)
        assert unit.stats.lookups == 1

    def test_commit_group_trains_to_confidence(self):
        unit = self.make()
        # Three producers per "cycle"; the middle one's value recurs at a
        # stable distance of 3.
        rng = XorShift64(5)
        prediction = None
        for _ in range(700):
            ops = []
            for lane, pc in enumerate((0x100, 0x200, 0x300)):
                op = _FakeOp(0)
                op.d = DynInst(0, pc, Opcode.ADD, dest=x(1), src1=x(2))
                op.d.result = 0x1234 if pc == 0x200 else rng.next_u64()
                op.dist_pred = unit.lookup(pc)
                op.likely_candidate = False
                op.producer = None
                ops.append(op)
            unit.observe_commit_group(ops)
            prediction = unit.lookup(0x200)
        assert prediction.use_pred
        assert prediction.distance == 3

    def test_sampling_mode_trains_likely_candidates(self):
        unit = self.make(sampling=True)
        producer_op = _FakeOp(0)
        producer_op.d.result = 99
        for _ in range(900):
            op = _FakeOp(1)
            op.d.result = 99
            op.dist_pred = unit.lookup(op.d.pc)
            op.likely_candidate = op.dist_pred.likely_candidate
            op.producer = producer_op
            unit.observe_commit_group([op])
        assert unit.lookup(0x1004).use_pred

    def test_gshare_variant(self):
        unit = self.make(predictor_kind="gshare")
        for _ in range(700):
            op = _FakeOp(0)
            op.d.result = 0x42
            op.dist_pred = unit.lookup(op.d.pc)
            op.likely_candidate = False
            op.producer = None
            unit.observe_commit_group([op])
        assert unit.lookup(op.d.pc).use_pred

    def test_ddt_pairing_variant(self):
        unit = self.make(pairing="ddt")
        assert unit.pairing.find(0x1, 255) is None

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            self.make(predictor_kind="nonsense")
        with pytest.raises(ValueError):
            self.make(pairing="nonsense")

    def test_storage_report_realistic(self):
        history, path = GlobalHistory(), PathHistory()
        unit = RsepUnit(
            RsepConfig.realistic(), history, path, XorShift64(1)
        )
        # §VI.B: ~10.8KB total (predictor 10.1KB + FIFO 384B + 224B).
        assert unit.storage_report().total_kib == pytest.approx(10.7, abs=0.2)

    def test_accuracy_accounting(self):
        unit = self.make()
        op = _FakeOp(0)
        unit.on_commit_used(op, True)
        unit.on_commit_used(op, False)
        assert unit.stats.accuracy == 0.5

    def test_presets(self):
        ideal = RsepConfig.ideal()
        realistic = RsepConfig.realistic()
        assert ideal.validation == ValidationMode.IDEAL
        assert not ideal.sampling
        assert realistic.sampling
        assert realistic.validation == ValidationMode.REISSUE_ANY_FU
        assert realistic.history_entries == 128
