"""Sampled-simulation subsystem: bit-identity, fidelity and checkpoints.

The contract under test (DESIGN.md §8):

* the degenerate 100%-duty configuration — both through the public
  ``Simulator`` path and through the ``SampledRun`` controller itself —
  is bit-identical to a plain full-detail run, including on the golden
  cells the scheduler refactors are gated on;
* an active sampled run populates the interval/CI fields, covers the
  requested window, is deterministic, and lands near the full-detail
  IPC;
* µarch checkpoints round-trip: a run that restores a stored checkpoint
  is bit-identical to the run that captured it, and corrupt checkpoints
  fall back to warming;
* ``Stats.reset_window`` zeroes every counter field, present and future
  (dataclass introspection), so new interval/CI fields can never leak
  across the warm-up boundary.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.harness.reporting import format_ipc
from repro.harness.sweep import SweepEngine
from repro.pipeline.config import MechanismConfig
from repro.pipeline.core import Pipeline
from repro.pipeline.simulator import _TRACE_SLACK, Simulator
from repro.pipeline.stats import Stats
from repro.sampling import SampledRun, SamplingConfig
from repro.sampling.checkpoint import (
    CheckpointError,
    capture_checkpoint,
    restore_checkpoint,
)
from repro.sampling.controller import confidence_halfwidth
from repro.workloads.store import TraceStore


from helpers import stats_dict  # noqa: E402  (shared test helper)


#: Degenerate: full duty cycle — must be indistinguishable from detail.
DEGENERATE = SamplingConfig(enabled=True, interval=512, detail_ratio=1.0)

#: A small active configuration for fast tests.
ACTIVE = SamplingConfig(
    enabled=True, interval=1000, detail_ratio=0.25, detail_warmup=128
)


class TestSamplingConfig:
    def test_degenerate_is_inactive_and_folds_fingerprint(self):
        assert not DEGENERATE.active
        assert DEGENERATE.fingerprint() == "off"
        assert SamplingConfig.disabled().fingerprint() == "off"

    def test_active_spans(self):
        assert ACTIVE.active
        assert ACTIVE.detail_span == 250
        assert ACTIVE.ramp_span == 128
        assert ACTIVE.detail_span + ACTIVE.skip_span == ACTIVE.interval

    def test_ramp_never_exceeds_gap(self):
        config = SamplingConfig(
            enabled=True, interval=100, detail_ratio=0.9, detail_warmup=512
        )
        assert config.ramp_span == config.skip_span

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingConfig(interval=0)
        with pytest.raises(ValueError):
            SamplingConfig(detail_ratio=0.0)
        with pytest.raises(ValueError):
            SamplingConfig(detail_warmup=-1)

    def test_from_environment(self, monkeypatch):
        from repro.api.env import sampling_from_env

        assert not sampling_from_env().enabled
        monkeypatch.setenv("REPRO_SAMPLING", "1")
        monkeypatch.setenv("REPRO_INTERVAL", "3000")
        monkeypatch.setenv("REPRO_DETAIL_RATIO", "0.2")
        monkeypatch.setenv("REPRO_DETAIL_WARMUP", "64")
        config = sampling_from_env()
        assert config.enabled and config.active
        assert config.interval == 3000
        assert config.detail_span == 600
        assert config.detail_warmup == 64
        monkeypatch.setenv("REPRO_SAMPLING", "off")
        assert not sampling_from_env().enabled
        # The legacy classmethod survives as a deprecation shim.
        with pytest.deprecated_call():
            assert SamplingConfig.from_environment() == sampling_from_env()


class TestDegenerateBitIdentity:
    """100% duty cycle must reproduce full-detail runs exactly."""

    CASES = [
        ("mcf", MechanismConfig.baseline(), 1000, 4000),
        ("mcf", MechanismConfig.rsep_realistic(), 1000, 4000),
        ("libquantum", MechanismConfig.rsep_plus_vp(), 0, 8000),
    ]

    @pytest.mark.parametrize("bench,mechanism,warmup,measure", CASES)
    def test_simulator_path(self, bench, mechanism, warmup, measure):
        plain = Simulator().run_benchmark(
            bench, mechanism, warmup=warmup, measure=measure, seed=1
        )
        degenerate = Simulator().run_benchmark(
            bench, mechanism, warmup=warmup, measure=measure, seed=1,
            sampling=DEGENERATE,
        )
        assert stats_dict(degenerate.stats) == stats_dict(plain.stats)

    @pytest.mark.parametrize("bench,mechanism,warmup,measure", CASES)
    def test_controller_chunked_loop(
        self, bench, mechanism, warmup, measure
    ):
        """The controller itself, forced through interval chunking."""
        simulator = Simulator()
        plain = simulator.run_benchmark(
            bench, mechanism, warmup=warmup, measure=measure, seed=1
        )
        trace = simulator.trace_for(
            bench, 1, warmup + measure + _TRACE_SLACK
        )
        pipeline = Pipeline(trace, simulator.core_config, mechanism, 1)
        pipeline.run_until(warmup)
        stats = SampledRun(pipeline, DEGENERATE).measure(measure)
        assert stats_dict(stats) == stats_dict(plain.stats)


class TestSampledRun:
    def test_fields_window_and_determinism(self):
        results = [
            Simulator().run_benchmark(
                "mcf", MechanismConfig.rsep_realistic(),
                warmup=512, measure=4000, seed=1, sampling=ACTIVE,
            )
            for _ in range(2)
        ]
        stats = results[0].stats
        assert stats.sampled
        assert stats.intervals >= 2
        assert stats.warmed > 0
        # Covered window: exact up to commit-width overshoot per detailed
        # span (ramp + measured, per interval).
        assert 4000 <= stats.sampled_window <= 4000 + 16 * stats.intervals
        # Ramps are detailed but unmeasured, so measured commits plus
        # warmed instructions undershoot the covered window.
        assert stats.committed + stats.warmed <= stats.sampled_window
        assert stats.committed < 4000
        assert stats.ipc > 0
        assert stats_dict(results[0].stats) == stats_dict(results[1].stats)

    def test_ipc_near_full_detail(self):
        full = Simulator().run_benchmark(
            "hmmer", MechanismConfig.baseline(),
            warmup=1000, measure=8000, seed=1,
        )
        sampled = Simulator().run_benchmark(
            "hmmer", MechanismConfig.baseline(),
            warmup=1000, measure=8000, seed=1,
            sampling=SamplingConfig(
                enabled=True, interval=2000, detail_ratio=0.25,
                detail_warmup=256,
            ),
        )
        assert abs(sampled.ipc - full.ipc) / full.ipc < 0.25

    def test_confidence_halfwidth(self):
        assert confidence_halfwidth([], 0.95) == 0.0
        assert confidence_halfwidth([1.0], 0.95) == 0.0
        assert confidence_halfwidth([1.0, 1.0, 1.0], 0.95) == 0.0
        assert confidence_halfwidth([0.5, 1.5], 0.95) > 0.0
        assert confidence_halfwidth([0.5, 1.5], 0.99) > confidence_halfwidth(
            [0.5, 1.5], 0.90
        )


class TestSweepIntegration:
    def test_sampling_joins_cell_fingerprint(self):
        engine = SweepEngine(simulator=Simulator(trace_store=None))
        kwargs = dict(seed=1, warmup=256, measure=1000)
        engine.run_cell(
            "mcf", MechanismConfig.baseline(),
            sampling=SamplingConfig.disabled(), **kwargs,
        )
        engine.run_cell(
            "mcf", MechanismConfig.baseline(), sampling=ACTIVE, **kwargs
        )
        assert engine.cell_misses == 2  # distinct cells
        engine.run_cell(
            "mcf", MechanismConfig.baseline(), sampling=ACTIVE, **kwargs
        )
        assert engine.cell_hits == 1  # memoised sampled cell
        # Degenerate folds onto the plain cell.
        engine.run_cell(
            "mcf", MechanismConfig.baseline(), sampling=DEGENERATE, **kwargs
        )
        assert engine.cell_hits == 2
        assert engine.cell_misses == 2


class TestCheckpoints:
    KWARGS = dict(warmup=800, measure=2000, seed=1)

    # rsep_ideal covers the non-sampling RSEP commit path, whose warmer
    # state (producer ring) once leaked across the checkpoint boundary.
    @pytest.mark.parametrize("mechanism", [
        MechanismConfig.rsep_realistic(), MechanismConfig.rsep_ideal(),
    ], ids=["rsep-realistic", "rsep-ideal"])
    def test_restore_matches_capture_run(self, tmp_path, mechanism):
        store = TraceStore(tmp_path)
        first_sim = Simulator(trace_store=store)
        first = first_sim.run_benchmark(
            "xalancbmk", mechanism, sampling=ACTIVE, **self.KWARGS,
        )
        assert store.checkpoint_writes == 1
        second_sim = Simulator(trace_store=TraceStore(tmp_path))
        second = second_sim.run_benchmark(
            "xalancbmk", mechanism, sampling=ACTIVE, **self.KWARGS,
        )
        assert second_sim.trace_store.checkpoint_hits == 1
        assert second_sim.trace_store.checkpoint_writes == 0
        assert stats_dict(first.stats) == stats_dict(second.stats)

    def test_corrupt_checkpoint_falls_back_to_warming(self, tmp_path):
        store = TraceStore(tmp_path)
        simulator = Simulator(trace_store=store)
        reference = simulator.run_benchmark(
            "mcf", MechanismConfig.baseline(), sampling=ACTIVE, **self.KWARGS
        )
        artifacts = list(tmp_path.glob("*.ckpt"))
        assert len(artifacts) == 1
        artifacts[0].write_bytes(b"not a pickle")
        again_sim = Simulator(trace_store=TraceStore(tmp_path))
        again = again_sim.run_benchmark(
            "mcf", MechanismConfig.baseline(), sampling=ACTIVE, **self.KWARGS
        )
        assert again_sim.trace_store.checkpoint_misses == 1
        assert again_sim.trace_store.checkpoint_writes == 1  # re-captured
        assert stats_dict(again.stats) == stats_dict(reference.stats)

    def test_mechanism_mismatch_is_rejected(self):
        simulator = Simulator(trace_store=None)
        trace = simulator.trace_for("mcf", 1, 4000)
        warmed = Pipeline(
            trace, simulator.core_config, MechanismConfig.rsep_realistic(), 1
        )
        SampledRun(warmed, ACTIVE).warm_up(2000)
        payload = capture_checkpoint(warmed)
        other = Pipeline(
            trace, simulator.core_config, MechanismConfig.baseline(), 1
        )
        with pytest.raises(CheckpointError):
            restore_checkpoint(other, payload)

    def test_state_roundtrip_in_place(self):
        """Restore writes into the live structures without rebinding."""
        simulator = Simulator(trace_store=None)
        trace = simulator.trace_for("bzip2", 1, 6000)
        warmed = Pipeline(
            trace, simulator.core_config, MechanismConfig.rsep_realistic(), 1
        )
        SampledRun(warmed, ACTIVE).warm_up(4000)
        payload = capture_checkpoint(warmed)
        fresh = Pipeline(
            trace, simulator.core_config, MechanismConfig.rsep_realistic(), 1
        )
        base_table = fresh.rsep.predictor._base_distance
        l1d_sets = fresh.hierarchy.l1d._tags
        restore_checkpoint(fresh, payload)
        # identity preserved (generated fast paths close over these)
        assert fresh.rsep.predictor._base_distance is base_table
        assert fresh.hierarchy.l1d._tags is l1d_sets
        # values restored
        assert fresh.history._bits == warmed.history._bits
        assert (
            fresh.rsep.predictor._base_distance
            == warmed.rsep.predictor._base_distance
        )
        assert fresh.hierarchy.l1d._tags == warmed.hierarchy.l1d._tags
        assert fresh.cycle == warmed.cycle
        assert fresh._cursor == warmed._cursor


class TestResetWindowIntegrity:
    def test_reset_window_zeroes_every_counter_field(self):
        """Dataclass introspection: no field may survive the window reset.

        Guards the new interval/CI fields and any counters future PRs
        add — a field that survives ``reset_window`` would leak warm-up
        state into the measurement window.
        """
        stats = Stats()
        for field in dataclasses.fields(Stats):
            if field.name == "extra":
                continue
            current = getattr(stats, field.name)
            sentinel = 1.5 if isinstance(current, float) else 3
            setattr(stats, field.name, sentinel)
        stats.extra["kept"] = 2.0
        stats.reset_window()
        for field in dataclasses.fields(Stats):
            if field.name == "extra":
                continue
            assert getattr(stats, field.name) == 0, field.name
        assert stats.extra == {"kept": 2.0}  # extras survive by design


class TestReporting:
    def test_format_ipc_plain_and_sampled(self):
        stats = Stats(cycles=1000, committed=1234)
        assert format_ipc(stats) == "1.234"
        stats.warmed = 5000
        stats.ipc_ci = 0.0123
        assert format_ipc(stats) == "1.234 ±0.012"
