"""Tier-1 test isolation.

The persistent trace store (`repro.workloads.store`) is disabled for the
test suite: tests must not read traces written by earlier sessions (or
benches) nor litter the user's cache.  Store behaviour itself is covered
explicitly in ``tests/test_trace_store.py`` with private store roots.
"""

import os

os.environ["REPRO_TRACE_STORE"] = "off"

