"""Determinism and golden-stats guarantees of the timing model.

The event-driven scheduler (DESIGN.md §3) is correctness-gated: for a
pinned configuration it must produce *bit-identical* statistics to the
original poll-everything scheduler.  The golden snapshots below were
captured from the pre-refactor reference implementation (seed commit)
and must never drift — any change to scheduling, wakeup, fast-forward or
predictor indexing that alters a single counter fails here.

Also covered: same-seed reproducibility, functional-trace prefix reuse,
the parallel sweep's equivalence to a sequential sweep, and the
code-generated predictor paths against their generic references.
"""

from __future__ import annotations

import dataclasses

from repro.common.history import GlobalHistory, PathHistory
from repro.common.rng import XorShift64
from repro.harness.runner import ExperimentRunner
from repro.pipeline.config import MechanismConfig
from repro.pipeline.simulator import Simulator
from repro.predictors.distance import DistancePredictor, DistancePredictorConfig


def stats_dict(stats) -> dict:
    """Stats as a plain dict (without the free-form extras)."""
    data = dataclasses.asdict(stats)
    data.pop("extra")
    return data


# Captured from the pre-refactor (seed) scheduler: mcf, seed 1,
# warmup 1000 / measure 4000, CoreConfig defaults.
GOLDEN_MCF_BASELINE = {
    "cycles": 7818, "committed": 4002, "committed_producers": 3950,
    "committed_eligible": 3950, "zero_idiom_elim": 0, "move_elim": 0,
    "zero_pred": 0, "zero_pred_load": 0, "dist_pred": 0,
    "dist_pred_load": 0, "value_pred": 0, "value_pred_load": 0,
    "rsep_mispredicts": 0, "vp_mispredicts": 0, "zero_mispredicts": 0,
    "squashes_rsep": 0, "squashes_vp": 0, "squashes_zero": 0,
    "squashes_memory_order": 0, "squashed_ops": 0, "branches": 52,
    "branch_mispredicts": 0, "loads": 2201, "stores": 0,
    "load_forwards": 0, "stall_rob": 0, "stall_iq": 0, "stall_regs": 0,
    "stall_lsq": 7305,
}

GOLDEN_MCF_RSEP_REALISTIC = {
    "cycles": 7818, "committed": 4002, "committed_producers": 3951,
    "committed_eligible": 3951, "zero_idiom_elim": 0, "move_elim": 0,
    "zero_pred": 0, "zero_pred_load": 0, "dist_pred": 10,
    "dist_pred_load": 10, "value_pred": 0, "value_pred_load": 0,
    "rsep_mispredicts": 0, "vp_mispredicts": 0, "zero_mispredicts": 0,
    "squashes_rsep": 0, "squashes_vp": 0, "squashes_zero": 0,
    "squashes_memory_order": 0, "squashed_ops": 0, "branches": 51,
    "branch_mispredicts": 0, "loads": 2202, "stores": 0,
    "load_forwards": 0, "stall_rob": 0, "stall_iq": 0, "stall_regs": 0,
    "stall_lsq": 7305,
}

# Squash-exercising golden: libquantum, rsep+vpred, seed 1,
# warmup 0 / measure 8000 (covers distance/value coverage counters,
# an RSEP misprediction squash and zero-idiom elimination).
GOLDEN_LIBQUANTUM_RSEP_VP = {
    "cycles": 2933, "committed": 8000, "committed_producers": 7879,
    "committed_eligible": 7871, "zero_idiom_elim": 8, "move_elim": 0,
    "zero_pred": 0, "zero_pred_load": 0, "dist_pred": 559,
    "dist_pred_load": 161, "value_pred": 714, "value_pred_load": 131,
    "rsep_mispredicts": 1, "vp_mispredicts": 0, "zero_mispredicts": 0,
    "squashes_rsep": 1, "squashes_vp": 0, "squashes_zero": 0,
    "squashes_memory_order": 0, "squashed_ops": 168, "branches": 121,
    "branch_mispredicts": 0, "loads": 847, "stores": 0,
    "load_forwards": 0, "stall_rob": 231, "stall_iq": 1683,
    "stall_regs": 0, "stall_lsq": 0,
}


class TestGoldenStats:
    def test_mcf_baseline_matches_pre_refactor_reference(self):
        result = Simulator().run_benchmark(
            "mcf", MechanismConfig.baseline(),
            warmup=1000, measure=4000, seed=1,
        )
        assert stats_dict(result.stats) == GOLDEN_MCF_BASELINE

    def test_mcf_rsep_realistic_matches_pre_refactor_reference(self):
        result = Simulator().run_benchmark(
            "mcf", MechanismConfig.rsep_realistic(),
            warmup=1000, measure=4000, seed=1,
        )
        assert stats_dict(result.stats) == GOLDEN_MCF_RSEP_REALISTIC

    def test_libquantum_rsep_vp_squash_path_matches_reference(self):
        result = Simulator().run_benchmark(
            "libquantum", MechanismConfig.rsep_plus_vp(),
            warmup=0, measure=8000, seed=1,
        )
        assert stats_dict(result.stats) == GOLDEN_LIBQUANTUM_RSEP_VP


class TestSameSeedDeterminism:
    def test_two_fresh_simulators_agree_exactly(self):
        results = [
            Simulator().run_benchmark(
                "xalancbmk", MechanismConfig.rsep_realistic(),
                warmup=500, measure=2000, seed=3,
            )
            for _ in range(2)
        ]
        assert stats_dict(results[0].stats) == stats_dict(results[1].stats)
        assert results[0].ipc == results[1].ipc

    def test_different_seeds_differ(self):
        stats = [
            stats_dict(
                Simulator().run_benchmark(
                    "gcc", MechanismConfig.baseline(),
                    warmup=500, measure=2000, seed=seed,
                ).stats
            )
            for seed in (1, 2)
        ]
        assert stats[0] != stats[1]


class TestTracePrefixReuse:
    def test_shorter_request_reuses_cached_trace(self):
        simulator = Simulator()
        long_trace = simulator.trace_for("mcf", 1, 4000)
        short_trace = simulator.trace_for("mcf", 1, 1500)
        assert short_trace is long_trace  # no re-execution

    def test_longer_request_rebuilds_and_covers(self):
        simulator = Simulator()
        short_trace = simulator.trace_for("mcf", 1, 1500)
        long_trace = simulator.trace_for("mcf", 1, 4000)
        assert long_trace is not short_trace
        assert len(long_trace) == 4000
        # The deterministic interpreter makes the short trace a prefix.
        for index in range(len(short_trace)):
            assert long_trace[index].result == short_trace[index].result
            assert long_trace[index].pc == short_trace[index].pc
        # And the longer trace now serves shorter requests.
        assert simulator.trace_for("mcf", 1, 2000) is long_trace

    def test_halted_trace_covers_any_request(self):
        simulator = Simulator()
        first = simulator.trace_for("mcf", 1, 500)
        if len(first) < 500:  # benchmark halted: complete execution
            assert simulator.trace_for("mcf", 1, 10_000) is first

    def test_prefix_reuse_preserves_pipeline_results(self):
        fresh = Simulator()
        reused = Simulator()
        reused.trace_for("mcf", 1, 30_000)  # longer than the run needs
        kwargs = dict(warmup=500, measure=2000, seed=1)
        a = fresh.run_benchmark("mcf", MechanismConfig.baseline(), **kwargs)
        b = reused.run_benchmark("mcf", MechanismConfig.baseline(), **kwargs)
        assert stats_dict(a.stats) == stats_dict(b.stats)


class TestParallelSweep:
    def test_parallel_matches_sequential(self):
        mechanisms = [
            MechanismConfig.baseline(), MechanismConfig.rsep_realistic()
        ]
        kwargs = dict(
            benchmarks=["mcf", "dealII"], seeds=[1, 2],
            warmup=256, measure=1000,
        )
        sequential = ExperimentRunner(**kwargs)
        sequential.run(mechanisms)
        parallel = ExperimentRunner(**kwargs)
        parallel.run(mechanisms, workers=2)
        for benchmark in kwargs["benchmarks"]:
            for mechanism in mechanisms:
                left = sequential.outcome(benchmark, mechanism.name)
                right = parallel.outcome(benchmark, mechanism.name)
                assert left.ipc == right.ipc
                for a, b in zip(left.results, right.results):
                    assert (a.benchmark, a.mechanism, a.seed) == (
                        b.benchmark, b.mechanism, b.seed
                    )
                    assert stats_dict(a.stats) == stats_dict(b.stats)


class TestGeneratedPredictorPaths:
    """The code-generated fast paths must equal the generic references."""

    def test_fast_predict_matches_reference(self):
        def build(seed):
            history = GlobalHistory()
            path = PathHistory()
            predictor = DistancePredictor(
                DistancePredictorConfig.realistic(), history, path,
                XorShift64(seed),
            )
            return history, path, predictor

        h1, p1, fast = build(7)
        h2, p2, slow = build(7)
        rng = XorShift64(99)
        for step in range(400):
            pc = (rng.next_u64() & 0x3FFF) << 2
            a = fast.predict(pc)
            b = slow.predict_reference(pc)
            assert (a.distance, a.use_pred, a.likely_candidate,
                    a.provider, a.base_index) == (
                b.distance, b.use_pred, b.likely_candidate,
                b.provider, b.base_index)
            assert a.lookup.indices == b.lookup.indices
            assert a.lookup.tags == b.lookup.tags
            if step % 3 == 0:
                bit = rng.next_u64() & 1
                h1.push(bit)
                h2.push(bit)
            if step % 5 == 0:
                branch_pc = rng.next_u64() & 0xFFFF
                p1.push(branch_pc)
                p2.push(branch_pc)

    @staticmethod
    def _seed_formula_lookup(indexer, pc):
        """The pre-refactor indexing formula, verbatim and memo-free.

        Computed from the public history/path state only, so it shares
        no code (or path-fold memo) with the generated fast path.
        """
        from repro.common.bitops import fold_bits

        word = pc >> 2
        path_bits = indexer._path_bits
        path_raw = indexer.path.raw(path_bits)
        indices, tags = [], []
        for number, geometry in enumerate(indexer.geometries, start=1):
            index_bits = geometry.log2_entries
            folded_index = indexer.history.folded(
                geometry.history_bits, index_bits
            )
            path_mix = fold_bits(path_raw, path_bits, index_bits)
            index = (
                word
                ^ (word >> (index_bits - number % index_bits or 1))
                ^ folded_index
                ^ path_mix
            ) & ((1 << index_bits) - 1)
            folded_tag = indexer.history.folded(
                geometry.history_bits, geometry.tag_bits
            )
            folded_tag2 = indexer.history.folded(
                geometry.history_bits, geometry.tag_bits - 1
            ) if geometry.tag_bits > 1 else 0
            tag = (word ^ folded_tag ^ (folded_tag2 << 1)) & (
                (1 << geometry.tag_bits) - 1
            )
            indices.append(index)
            tags.append(tag)
        return indices, tags

    def test_fast_indexer_lookup_matches_seed_formula(self):
        # predict_reference shares the generated fast_lookup (and the
        # generic lookup_reference shares its path memos), so the
        # indexer is checked against an independent re-derivation of
        # the original formula.
        history = GlobalHistory()
        path = PathHistory()
        predictor = DistancePredictor(
            DistancePredictorConfig.realistic(), history, path,
            XorShift64(11),
        )
        indexer = predictor._indexer
        rng = XorShift64(42)
        for step in range(300):
            pc = (rng.next_u64() & 0xFFFF) << 2
            fast = indexer.lookup(pc)            # code-generated
            generic = indexer.lookup_reference(pc)
            indices, tags = self._seed_formula_lookup(indexer, pc)
            assert fast.indices == generic.indices == indices
            assert fast.tags == generic.tags == tags
            if step % 2 == 0:
                history.push(rng.next_u64() & 1)
            if step % 7 == 0:
                path.push(rng.next_u64() & 0xFFFF)

    def test_commit_group_hashing_matches_fold_hash(self):
        """The inlined XOR-fold in observe_commit_group must keep producing
        exactly repro.common.bitops.fold_hash — checked through the pairing
        FIFO's public search interface."""
        from repro.common.bitops import fold_hash
        from repro.core.rsep import RsepConfig, RsepUnit

        history = GlobalHistory()
        path = PathHistory()
        unit = RsepUnit(RsepConfig.ideal(), history, path, XorShift64(3))

        class _FakeDyn:
            def __init__(self, result):
                self.result = result

        class _FakeOp:
            def __init__(self, result):
                self.d = _FakeDyn(result)
                self.dist_pred = None
                self.likely_candidate = False
                self.producer = None

        values = [0, 1, (1 << 64) - 1, 0x1234_5678_9ABC_DEF0,
                  0x7FF8_0000_0000_0000]
        unit.observe_commit_group([_FakeOp(value) for value in values])
        for position, value in enumerate(values):
            expected_hash = fold_hash(value, unit.config.hash_bits)
            distance = unit.pairing.find(expected_hash, unit.max_distance)
            # Each value was pushed at `position`; its most recent match
            # must sit exactly len(values) - position producers back.
            assert distance == len(values) - position

    def test_fast_history_push_matches_register_semantics(self):
        from repro.common.history import FoldedRegister

        history = GlobalHistory(capacity=64)
        history.register_fold(13, 7)
        history.register_fold(21, 9)
        mirror = {
            (13, 7): FoldedRegister(13, 7),
            (21, 9): FoldedRegister(21, 9),
        }
        raw = 0
        rng = XorShift64(5)
        for _ in range(300):
            bit = rng.next_u64() & 1
            for (history_bits, _), fold in mirror.items():
                outgoing = (raw >> (history_bits - 1)) & 1
                fold.push(bit, outgoing)
            raw = ((raw << 1) | bit) & ((1 << 64) - 1)
            history.push(bit)
        for key, fold in mirror.items():
            assert history.folded(*key) == fold.value
